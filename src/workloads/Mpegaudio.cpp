//===- workloads/Mpegaudio.cpp - Audio decoder stand-in -------------------===//
///
/// Emulates mpegaudio: per-frame subband filtering and windowing. The
/// 32-iteration inner loops have back edges at 96.9% bias (strong only at
/// the 95% threshold) and the quantization branch sits at ~98.4% (strong
/// at 97/98, weak at 99/100), so the average trace grows as the threshold
/// is lowered while coverage stays high -- the hot loops dominate
/// execution almost completely.
///
//===----------------------------------------------------------------------===//

#include "workloads/Common.h"
#include "workloads/Workloads.h"

using namespace jtc;

Module jtc::buildMpegaudio(uint32_t Scale) {
  Assembler Asm;
  uint32_t Lcg = addLcgMethod(Asm);

  // subband(c, w): one straight-line filter tap.
  uint32_t Subband = Asm.declareMethod("subband", 2, 2, true);
  {
    MethodBuilder B = Asm.beginMethod(Subband);
    B.iload(0);
    B.iload(1);
    B.emit(Opcode::Imul);
    B.iconst(0x3ffff);
    B.emit(Opcode::Iand);
    B.iload(0);
    B.emit(Opcode::Iadd);
    B.iret();
    B.finish();
  }

  // window(v): one straight-line windowing step.
  uint32_t Window = Asm.declareMethod("window", 1, 1, true);
  {
    MethodBuilder B = Asm.beginMethod(Window);
    B.iload(0);
    B.iconst(7);
    B.emit(Opcode::Imul);
    B.iload(0);
    B.iconst(5);
    B.emit(Opcode::Ishr);
    B.emit(Opcode::Ixor);
    B.iconst(0xfffff);
    B.emit(Opcode::Iand);
    B.iret();
    B.finish();
  }

  // Bit-allocation routines: a modest near-delay population evaluated a
  // few times per frame, holding coverage near the paper's ~90-92%.
  unsigned AllocWidth = 64 * ((Scale + 1499) / 1500);
  std::vector<uint32_t> BitAlloc =
      addColdTail(Asm, "bitalloc", AllocWidth, 24, 0xb17a);

  // Locals: 0 seed, 1 frame, 2 i, 3 coef[], 4 win[], 5 acc, 6 v, 7 idx.
  uint32_t Main = Asm.declareMethod("main", 0, 8, false);
  {
    MethodBuilder B = Asm.beginMethod(Main);
    B.iconst(555);
    B.istore(0);
    B.iconst(16);
    B.emit(Opcode::NewArray);
    B.istore(3);
    B.iconst(32);
    B.emit(Opcode::NewArray);
    B.istore(4);
    emitLcgFill(B, Lcg, 3, 0, 7, 16, 0x3ff);
    emitLcgFill(B, Lcg, 4, 0, 7, 32, 0x3ff);

    Label Frame = B.newLabel(), FrameEnd = B.newLabel();
    Label Filter = B.newLabel(), FilterEnd = B.newLabel();
    Label Quant = B.newLabel();
    Label Wind = B.newLabel(), WindEnd = B.newLabel();

    B.iconst(0);
    B.istore(1);
    B.iconst(0);
    B.istore(5);

    B.bind(Frame);
    B.iload(1);
    B.iconst(static_cast<int32_t>(Scale));
    B.branch(Opcode::IfIcmpGe, FrameEnd);

    // Subband filter: 32 taps.
    B.iconst(0);
    B.istore(2);
    B.bind(Filter);
    B.iload(2);
    B.iconst(32);
    B.branch(Opcode::IfIcmpGe, FilterEnd);
    // v = subband(coef[i & 15], win[(i * 7) & 31])
    B.iload(3);
    B.iload(2);
    B.iconst(15);
    B.emit(Opcode::Iand);
    B.emit(Opcode::Iaload);
    B.iload(4);
    B.iload(2);
    B.iconst(7);
    B.emit(Opcode::Imul);
    B.iconst(31);
    B.emit(Opcode::Iand);
    B.emit(Opcode::Iaload);
    B.invokestatic(Subband);
    B.istore(6);
    B.iload(5);
    B.iload(6);
    B.emit(Opcode::Iadd);
    B.istore(5);
    // Quantization overflow (~1.6%): rescale.
    B.iload(6);
    B.iload(5);
    B.emit(Opcode::Iadd);
    B.iconst(63);
    B.emit(Opcode::Iand);
    B.branch(Opcode::IfNe, Quant);
    B.iload(5);
    B.iconst(2);
    B.emit(Opcode::Ishr);
    B.istore(5);
    B.bind(Quant);
    B.iinc(2, 1);
    B.branch(Opcode::Goto, Filter);
    B.bind(FilterEnd);

    // Windowing: 32 steps through the single-block helper.
    B.iconst(0);
    B.istore(2);
    B.bind(Wind);
    B.iload(2);
    B.iconst(32);
    B.branch(Opcode::IfIcmpGe, WindEnd);
    B.iload(5);
    B.iload(2);
    B.emit(Opcode::Iadd);
    B.invokestatic(Window);
    B.istore(5);
    B.iinc(2, 1);
    B.branch(Opcode::Goto, Wind);
    B.bind(WindEnd);

    // Bit allocation: 3 dispatches into the routine population per frame.
    {
      Label Alloc = B.newLabel(), AllocEnd = B.newLabel();
      B.iconst(0);
      B.istore(2);
      B.bind(Alloc);
      B.iload(2);
      B.iconst(3);
      B.branch(Opcode::IfIcmpGe, AllocEnd);
      B.iload(0);
      B.invokestatic(Lcg);
      B.istore(0);
      B.iload(5); // arg
      B.iload(0);
      B.iconst(static_cast<int32_t>(AllocWidth));
      B.emit(Opcode::Irem); // selector
      emitTailDispatch(B, BitAlloc);
      B.iload(5);
      B.emit(Opcode::Iadd);
      B.iconst(0xffffff);
      B.emit(Opcode::Iand);
      B.istore(5);
      B.iinc(2, 1);
      B.branch(Opcode::Goto, Alloc);
      B.bind(AllocEnd);
    }

    B.iinc(1, 1);
    B.branch(Opcode::Goto, Frame);

    B.bind(FrameEnd);
    B.iload(5);
    B.emit(Opcode::Iprint);
    B.halt();
    B.finish();
  }
  Asm.setEntry(Main);
  return Asm.build();
}
