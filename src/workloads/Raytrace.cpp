//===- workloads/Raytrace.cpp - Ray tracer stand-in -----------------------===//
///
/// Emulates SPECjvm raytrace (mtrt's single-threaded core): per ray, a
/// loop over scene objects runs a straight-line intersection and
/// occlusion call chain (unique-successor blocks giving medium traces),
/// glued by a data-dependent minimum update; rays occasionally recurse
/// for reflection. Each ray also evaluates a handful of "material shader"
/// routines drawn from a population of 256 -- with only tens of
/// executions per routine they sit below the start-state delay, bounding
/// coverage near the paper's ~80%.
///
//===----------------------------------------------------------------------===//

#include "workloads/Common.h"
#include "workloads/Workloads.h"

using namespace jtc;

Module jtc::buildRaytrace(uint32_t Scale) {
  Assembler Asm;
  uint32_t Lcg = addLcgMethod(Asm);

  // intersect(x, c): distance-like value; one 99.6%-biased bounding-slab
  // fast path.
  uint32_t Intersect = Asm.declareMethod("intersect", 2, 3, true);
  {
    MethodBuilder B = Asm.beginMethod(Intersect);
    Label Slab = B.newLabel();
    B.iload(0);
    B.iload(1);
    B.emit(Opcode::Isub);
    B.istore(2);
    B.iload(2);
    B.iload(2);
    B.emit(Opcode::Imul);
    B.iconst(0xfffff);
    B.emit(Opcode::Iand);
    B.istore(2);
    B.iload(0);
    B.iload(1);
    B.emit(Opcode::Iadd);
    B.iconst(255);
    B.emit(Opcode::Iand);
    B.branch(Opcode::IfEq, Slab);
    B.iload(2);
    B.iconst(3);
    B.emit(Opcode::Ishr);
    B.iload(2);
    B.emit(Opcode::Iadd);
    B.istore(2);
    B.bind(Slab);
    B.iload(2);
    B.iret();
    B.finish();
  }

  // occlude(x, d): straight-line shadow attenuation.
  uint32_t Occlude = Asm.declareMethod("occlude", 2, 2, true);
  {
    MethodBuilder B = Asm.beginMethod(Occlude);
    B.iload(0);
    B.iload(1);
    B.emit(Opcode::Ixor);
    B.iconst(5);
    B.emit(Opcode::Imul);
    B.iload(1);
    B.iconst(4);
    B.emit(Opcode::Ishr);
    B.emit(Opcode::Iadd);
    B.iconst(0xffff);
    B.emit(Opcode::Iand);
    B.iret();
    B.finish();
  }

  // normal(x, d): straight-line surface-normal step.
  uint32_t Normal = Asm.declareMethod("normal", 2, 2, true);
  {
    MethodBuilder B = Asm.beginMethod(Normal);
    B.iload(0);
    B.iconst(11);
    B.emit(Opcode::Imul);
    B.iload(1);
    B.iconst(2);
    B.emit(Opcode::Ishl);
    B.emit(Opcode::Iadd);
    B.iconst(0xfffff);
    B.emit(Opcode::Iand);
    B.iret();
    B.finish();
  }

  // shade(d): straight-line shading step.
  uint32_t Shade = Asm.declareMethod("shade", 1, 1, true);
  {
    MethodBuilder B = Asm.beginMethod(Shade);
    B.iload(0);
    B.iconst(13);
    B.emit(Opcode::Imul);
    B.iload(0);
    B.iconst(7);
    B.emit(Opcode::Ishr);
    B.emit(Opcode::Iadd);
    B.iconst(0xffff);
    B.emit(Opcode::Iand);
    B.iret();
    B.finish();
  }

  // Material shaders: a wide population each ray samples a few of.
  unsigned MaterialWidth = 256 * ((Scale + 3999) / 4000);
  std::vector<uint32_t> Materials =
      addColdTail(Asm, "material", MaterialWidth, 44, 0x3a7e);

  // traceRay(depth, x): loop over 12 objects; recurse on shiny hits.
  // Locals: 0 depth, 1 x, 2 o, 3 best, 4 d, 5 c.
  uint32_t TraceRay = Asm.declareMethod("traceRay", 2, 6, true);
  {
    MethodBuilder B = Asm.beginMethod(TraceRay);
    Label Obj = B.newLabel(), ObjEnd = B.newLabel();
    Label NoMin = B.newLabel(), NoRec = B.newLabel();

    B.iconst(1 << 20);
    B.istore(3); // best
    B.iconst(0);
    B.istore(2); // o

    B.bind(Obj);
    B.iload(2);
    B.iconst(12);
    B.branch(Opcode::IfIcmpGe, ObjEnd);
    // c = (o * 83 + x) & 1023
    B.iload(2);
    B.iconst(83);
    B.emit(Opcode::Imul);
    B.iload(1);
    B.emit(Opcode::Iadd);
    B.iconst(1023);
    B.emit(Opcode::Iand);
    B.istore(5);
    // d = intersect(x, c) + occlude(x, d)
    B.iload(1);
    B.iload(5);
    B.invokestatic(Intersect);
    B.istore(4);
    B.iload(1);
    B.iload(4);
    B.invokestatic(Occlude);
    B.iload(4);
    B.emit(Opcode::Iadd);
    B.istore(4);
    B.iload(1);
    B.iload(4);
    B.invokestatic(Normal);
    B.iload(4);
    B.emit(Opcode::Ixor);
    B.iconst(0xfffff);
    B.emit(Opcode::Iand);
    B.istore(4);
    // Min update: data-dependent, weakly biased.
    B.iload(4);
    B.iload(3);
    B.branch(Opcode::IfIcmpGe, NoMin);
    B.iload(4);
    B.istore(3);
    B.bind(NoMin);
    B.iinc(2, 1);
    B.branch(Opcode::Goto, Obj);
    B.bind(ObjEnd);

    B.iload(3);
    B.invokestatic(Shade);
    B.istore(3);

    // Material shading: three samples from the shader population.
    for (int S = 0; S < 3; ++S) {
      B.iload(3); // arg
      B.iload(1);
      B.iload(3);
      B.emit(Opcode::Ixor);
      B.iconst(S * 5 + 3);
      B.emit(Opcode::Ishr);
      B.iconst(0x3fff);
      B.emit(Opcode::Iand);
      B.iconst(static_cast<int32_t>(MaterialWidth));
      B.emit(Opcode::Irem);
      emitTailDispatch(B, Materials);
      B.iload(3);
      B.emit(Opcode::Iadd);
      B.iconst(0xfffff);
      B.emit(Opcode::Iand);
      B.istore(3);
    }

    // Reflective bounce: depth > 0 and (best & 7) == 0 (~12.5%).
    B.iload(0);
    B.branch(Opcode::IfLe, NoRec);
    B.iload(3);
    B.iconst(7);
    B.emit(Opcode::Iand);
    B.branch(Opcode::IfNe, NoRec);
    B.iload(0);
    B.iconst(1);
    B.emit(Opcode::Isub);
    B.iload(1);
    B.iload(3);
    B.emit(Opcode::Ixor);
    B.iconst(1023);
    B.emit(Opcode::Iand);
    B.invokestatic(TraceRay);
    B.iload(3);
    B.emit(Opcode::Iadd);
    B.istore(3);
    B.bind(NoRec);
    B.iload(3);
    B.iret();
    B.finish();
  }

  // Locals: 0 seed, 1 i, 2 acc.
  uint32_t Main = Asm.declareMethod("main", 0, 3, false);
  {
    MethodBuilder B = Asm.beginMethod(Main);
    Label Loop = B.newLabel(), Done = B.newLabel();
    B.iconst(424242);
    B.istore(0);
    B.iconst(0);
    B.istore(1);
    B.iconst(0);
    B.istore(2);

    B.bind(Loop);
    B.iload(1);
    B.iconst(static_cast<int32_t>(Scale));
    B.branch(Opcode::IfIcmpGe, Done);
    B.iload(0);
    B.invokestatic(Lcg);
    B.istore(0);
    B.iconst(3); // depth
    B.iload(0);
    B.iconst(1023);
    B.emit(Opcode::Iand);
    B.invokestatic(TraceRay);
    B.iload(2);
    B.emit(Opcode::Iadd);
    B.iconst(0xffffff);
    B.emit(Opcode::Iand);
    B.istore(2);
    B.iinc(1, 1);
    B.branch(Opcode::Goto, Loop);

    B.bind(Done);
    B.iload(2);
    B.emit(Opcode::Iprint);
    B.halt();
    B.finish();
  }
  Asm.setEntry(Main);
  return Asm.build();
}
