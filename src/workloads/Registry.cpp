//===- workloads/Registry.cpp ---------------------------------------------===//

#include "workloads/Workloads.h"

using namespace jtc;

const std::vector<WorkloadInfo> &jtc::allWorkloads() {
  // Default scales target runs of roughly 25-35 million instructions --
  // long enough that one-time warm-up signals (hot promotions of the
  // cold-tail code) amortize the way the paper's long SPEC runs do.
  static const std::vector<WorkloadInfo> Infos = {
      {"compress", &buildCompress, 140},
      {"javac", &buildJavac, 280},
      {"raytrace", &buildRaytrace, 24000},
      {"mpegaudio", &buildMpegaudio, 12000},
      {"soot", &buildSoot, 3800},
      {"scimark", &buildScimark, 14000},
  };
  return Infos;
}

const WorkloadInfo *jtc::findWorkload(std::string_view Name) {
  for (const WorkloadInfo &W : allWorkloads())
    if (Name == W.Name)
      return &W;
  return nullptr;
}
