//===- tests/validate_test.cpp - Translation validator --------------------===//
///
/// The validator's contract has two sides. Soundness of the check itself:
/// every segment the stock optimizer produces must be proved a refinement
/// (no false rejections), including segments that exercise guard
/// elimination, liveness at exits and entry-constant seeding. Power of
/// the check: every deliberate miscompilation the UnsoundPass hook can
/// inject must be rejected with its typed reason, both on hand-built
/// segments and on traces the VM builds for real programs. A pinned
/// corpus under tests/corpus/validate/ replays accepted and rejected
/// module/mutation pairs against their expected reason codes.
///
/// JTC_VALIDATE_CORPUS_DIR is injected by the build (tests/CMakeLists.txt).
///
//===----------------------------------------------------------------------===//

#include "validate/Validator.h"

#include "TestPrograms.h"
#include "analysis/Analysis.h"
#include "opt/TraceOptimizer.h"
#include "text/AsmParser.h"
#include "vm/TraceVM.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

using namespace jtc;
using validate::Reason;
using validate::reasonName;
using validate::Result;
using validate::validateSegment;
using validate::validateTrace;

namespace {

/// Builds a segment from raw ops (no guards); mirrors opt_test.
LinearSegment segment(std::vector<Instruction> Code, uint32_t Locals = 4) {
  LinearSegment S;
  S.NumLocals = Locals;
  S.ScratchBase = Locals;
  for (const Instruction &I : Code)
    S.Ops.push_back(LinearOp::instr(I));
  return S;
}

LinearOp guard(Opcode Op, bool Taken, uint32_t ExitPc = 0) {
  LinearOp G = LinearOp::guard(Op, Taken);
  G.ExitPc = ExitPc;
  return G;
}

/// Runs the stock optimizer over \p In and validates the result.
Result optimizeAndValidate(const LinearSegment &In,
                           OptConfig Cfg = OptConfig()) {
  OptStats St;
  LinearSegment Out = optimizeSegment(In, St, Cfg);
  return validateSegment(In, Out);
}

/// The six deliberate miscompilations.
const UnsoundPass AllMutations[] = {
    UnsoundPass::DropGuard,          UnsoundPass::ReorderStorePastExit,
    UnsoundPass::WrongConstant,      UnsoundPass::KillLiveOnExit,
    UnsoundPass::ResurrectDeadStore, UnsoundPass::AliasConfusedLoad,
};

OptConfig mutated(UnsoundPass P) {
  OptConfig Cfg;
  Cfg.Mutate = P;
  return Cfg;
}

} // namespace

//===----------------------------------------------------------------------===//
// Acceptance: stock optimizations prove through
//===----------------------------------------------------------------------===//

TEST(ValidatorTest, AcceptsTheStockOptimizerOnRepresentativeSegments) {
  std::vector<LinearSegment> Cases;
  // Constant folding feeding an effect.
  Cases.push_back(segment({
      Instruction(Opcode::Iconst, 6),
      Instruction(Opcode::Iconst, 7),
      Instruction(Opcode::Imul),
      Instruction(Opcode::Iprint),
  }));
  // Load forwarding through a deferred store.
  Cases.push_back(segment({
      Instruction(Opcode::Iconst, 5),
      Instruction(Opcode::Istore, 0),
      Instruction(Opcode::Iload, 0),
      Instruction(Opcode::Iload, 0),
      Instruction(Opcode::Iadd),
      Instruction(Opcode::Iprint),
  }));
  // Dead-store elimination.
  Cases.push_back(segment({
      Instruction(Opcode::Iconst, 1),
      Instruction(Opcode::Istore, 2),
      Instruction(Opcode::Iconst, 2),
      Instruction(Opcode::Istore, 2),
  }));
  // Load/store cancellation and push/pop cancellation.
  Cases.push_back(segment({
      Instruction(Opcode::Iload, 1),
      Instruction(Opcode::Istore, 1),
      Instruction(Opcode::Iconst, 9),
      Instruction(Opcode::Pop),
  }));
  // Iinc chains.
  Cases.push_back(segment({
      Instruction(Opcode::Iconst, 10),
      Instruction(Opcode::Istore, 0),
      Instruction(Opcode::Iinc, 0, 5),
      Instruction(Opcode::Iinc, 0, -2),
      Instruction(Opcode::Iload, 0),
      Instruction(Opcode::Iprint),
  }));
  // Copy propagation pinned before the source changes.
  Cases.push_back(segment({
      Instruction(Opcode::Iload, 1),
      Instruction(Opcode::Istore, 0),
      Instruction(Opcode::Iconst, 7),
      Instruction(Opcode::Istore, 1),
      Instruction(Opcode::Iload, 0),
      Instruction(Opcode::Iprint),
  }));
  // Incoming stack operands.
  Cases.push_back(segment({
      Instruction(Opcode::Iadd),
      Instruction(Opcode::Istore, 0),
  }));
  // Unfoldable trapping division survives in place.
  Cases.push_back(segment({
      Instruction(Opcode::Iconst, 5),
      Instruction(Opcode::Iconst, 0),
      Instruction(Opcode::Idiv),
      Instruction(Opcode::Pop),
  }));

  for (size_t I = 0; I < Cases.size(); ++I) {
    Result R = optimizeAndValidate(Cases[I]);
    EXPECT_TRUE(R.Ok) << "case " << I << ": " << reasonName(R.Why) << ": "
                      << R.Detail;
  }
}

TEST(ValidatorTest, AcceptsEveryPassToggleCombination) {
  // A segment that every pass can bite on: a foldable expression, a
  // forwardable store, a dead store, and a data-dependent guard owing a
  // dirty-local flush.
  LinearSegment In = segment({
      Instruction(Opcode::Iconst, 6),
      Instruction(Opcode::Iconst, 7),
      Instruction(Opcode::Imul),
      Instruction(Opcode::Istore, 0),
      Instruction(Opcode::Iload, 0),
      Instruction(Opcode::Iprint),
      Instruction(Opcode::Iconst, 1),
      Instruction(Opcode::Istore, 2),
      Instruction(Opcode::Iload, 1),
  });
  In.Ops.push_back(guard(Opcode::IfNe, /*Taken=*/true));
  In.Ops.push_back(LinearOp::instr(Instruction(Opcode::Iconst, 3)));
  In.Ops.push_back(LinearOp::instr(Instruction(Opcode::Istore, 2)));

  for (unsigned Mask = 0; Mask < 32; ++Mask) {
    OptConfig Cfg;
    Cfg.FoldConstants = Mask & 1;
    Cfg.ForwardLoads = Mask & 2;
    Cfg.DeferStores = Mask & 4;
    Cfg.EliminateGuards = Mask & 8;
    Cfg.LivenessAtExits = Mask & 16;
    Result R = optimizeAndValidate(In, Cfg);
    EXPECT_TRUE(R.Ok) << "mask " << Mask << ": " << reasonName(R.Why) << ": "
                      << R.Detail;
  }
}

TEST(ValidatorTest, AcceptsStaticallyJustifiedGuardElimination) {
  // The guard's operand is an in-segment constant agreeing with the
  // recorded direction: eliminating it needs no optimized counterpart.
  LinearSegment Src = segment({Instruction(Opcode::Iconst, 0)});
  Src.Ops.push_back(guard(Opcode::IfEq, /*Taken=*/true));
  LinearSegment Opt = segment({});
  EXPECT_TRUE(validateSegment(Src, Opt).Ok);
}

TEST(ValidatorTest, AcceptsEntryFactJustifiedGuardElimination) {
  // The operand is a local proved constant at segment entry (analysis
  // facts): both sides carry the same EntryConsts assumption, so the
  // validator may use it to discharge the guard.
  LinearSegment Src = segment({Instruction(Opcode::Iload, 0)});
  Src.EntryConsts = {{0, 5}};
  Src.Ops.push_back(guard(Opcode::IfGt, /*Taken=*/true));
  LinearSegment Opt = segment({});
  Opt.EntryConsts = {{0, 5}};
  EXPECT_TRUE(validateSegment(Src, Opt).Ok);

  // The same elimination is unjustified when the assumed direction
  // contradicts the constant.
  LinearSegment Bad = Src;
  Bad.Ops.back() = guard(Opcode::IfLt, /*Taken=*/true);
  Result R = validateSegment(Bad, Opt);
  ASSERT_FALSE(R.Ok);
  EXPECT_EQ(R.Why, Reason::GuardDropped);
}

TEST(ValidatorTest, AcceptsDominatedGuardElimination) {
  // The same check over the same value already passed: the repeat cannot
  // fire and may be dropped.
  LinearSegment Src = segment({Instruction(Opcode::Iload, 1)});
  Src.Ops.push_back(guard(Opcode::IfNe, /*Taken=*/true));
  Src.Ops.push_back(LinearOp::instr(Instruction(Opcode::Iload, 1)));
  Src.Ops.push_back(guard(Opcode::IfNe, /*Taken=*/true));

  LinearSegment Opt = segment({Instruction(Opcode::Iload, 1)});
  Opt.Ops.push_back(guard(Opcode::IfNe, /*Taken=*/true));
  EXPECT_TRUE(validateSegment(Src, Opt).Ok);

  // Dropping both occurrences is not dominated: the first check never
  // passed anywhere.
  Result R = validateSegment(Src, segment({}));
  ASSERT_FALSE(R.Ok);
  EXPECT_EQ(R.Why, Reason::GuardDropped);
}

//===----------------------------------------------------------------------===//
// Typed rejections on hand-mangled segments
//===----------------------------------------------------------------------===//

TEST(ValidatorTest, RejectsFrameShapeChanges) {
  LinearSegment Src = segment({Instruction(Opcode::Nop)});
  LinearSegment Opt = segment({Instruction(Opcode::Nop)}, /*Locals=*/5);
  Opt.ScratchBase = 5;
  Result R = validateSegment(Src, Opt);
  ASSERT_FALSE(R.Ok);
  EXPECT_EQ(R.Why, Reason::ShapeMismatch);
}

TEST(ValidatorTest, ReportsUnsupportedOpcodesWithTheirMnemonic) {
  // Control-flow opcodes never appear inside a linear segment; a caller
  // handing the validator one gets a typed refusal, not a crash.
  LinearSegment Src = segment({Instruction(Opcode::Halt)});
  Result R = validateSegment(Src, Src);
  ASSERT_FALSE(R.Ok);
  EXPECT_EQ(R.Why, Reason::Unsupported);
  EXPECT_NE(R.Detail.find("halt"), std::string::npos) << R.Detail;
}

TEST(ValidatorTest, RejectsDroppedGuards) {
  LinearSegment Src = segment({Instruction(Opcode::Iload, 1)});
  Src.Ops.push_back(guard(Opcode::IfNe, /*Taken=*/true));
  // The optimized side silently discards the side exit (and balances the
  // stack so nothing else differs).
  LinearSegment Opt = segment({});
  Result R = validateSegment(Src, Opt);
  ASSERT_FALSE(R.Ok);
  EXPECT_EQ(R.Why, Reason::GuardDropped);
}

TEST(ValidatorTest, RejectsInventedGuards) {
  LinearSegment Src = segment({});
  LinearSegment Opt = segment({Instruction(Opcode::Iload, 1)});
  Opt.Ops.push_back(guard(Opcode::IfNe, /*Taken=*/true));
  Result R = validateSegment(Src, Opt);
  ASSERT_FALSE(R.Ok);
  EXPECT_EQ(R.Why, Reason::GuardExtra);
}

TEST(ValidatorTest, RejectsGuardsOverDifferentValues) {
  LinearSegment Src = segment({Instruction(Opcode::Iload, 1)});
  Src.Ops.push_back(guard(Opcode::IfNe, /*Taken=*/true));
  LinearSegment Opt = segment({Instruction(Opcode::Iload, 2)});
  Opt.Ops.push_back(guard(Opcode::IfNe, /*Taken=*/true));
  Result R = validateSegment(Src, Opt);
  ASSERT_FALSE(R.Ok);
  EXPECT_EQ(R.Why, Reason::GuardOperandMismatch);
}

TEST(ValidatorTest, RejectsRetargetedExits) {
  LinearSegment Src = segment({Instruction(Opcode::Iload, 1)});
  Src.Ops.push_back(guard(Opcode::IfNe, /*Taken=*/true, /*ExitPc=*/3));
  LinearSegment Opt = segment({Instruction(Opcode::Iload, 1)});
  Opt.Ops.push_back(guard(Opcode::IfNe, /*Taken=*/true, /*ExitPc=*/7));
  Result R = validateSegment(Src, Opt);
  ASSERT_FALSE(R.Ok);
  EXPECT_EQ(R.Why, Reason::GuardExitMismatch);
}

TEST(ValidatorTest, RejectsStoresMovedPastASideExit) {
  LinearSegment Src = segment({
      Instruction(Opcode::Iconst, 1),
      Instruction(Opcode::Istore, 0),
      Instruction(Opcode::Iload, 1),
  });
  Src.Ops.push_back(guard(Opcode::IfNe, /*Taken=*/true));
  // The store lands after the guard: correct at segment end, stale at
  // the side exit.
  LinearSegment Opt = segment({Instruction(Opcode::Iload, 1)});
  Opt.Ops.push_back(guard(Opcode::IfNe, /*Taken=*/true));
  Opt.Ops.push_back(LinearOp::instr(Instruction(Opcode::Iconst, 1)));
  Opt.Ops.push_back(LinearOp::instr(Instruction(Opcode::Istore, 0)));
  Result R = validateSegment(Src, Opt);
  ASSERT_FALSE(R.Ok);
  EXPECT_EQ(R.Why, Reason::SideExitLocalMismatch);
}

TEST(ValidatorTest, RejectsWrongStackAtASideExit) {
  LinearSegment Src = segment({
      Instruction(Opcode::Iconst, 5),
      Instruction(Opcode::Iload, 1),
  });
  Src.Ops.push_back(guard(Opcode::IfNe, /*Taken=*/true));
  LinearSegment Opt = segment({
      Instruction(Opcode::Iconst, 6),
      Instruction(Opcode::Iload, 1),
  });
  Opt.Ops.push_back(guard(Opcode::IfNe, /*Taken=*/true));
  Result R = validateSegment(Src, Opt);
  ASSERT_FALSE(R.Ok);
  EXPECT_EQ(R.Why, Reason::SideExitStackMismatch);
}

TEST(ValidatorTest, RejectsEffectsMovedAcrossASideExit) {
  LinearSegment Src = segment({
      Instruction(Opcode::Iload, 0),
      Instruction(Opcode::Iprint),
      Instruction(Opcode::Iload, 1),
  });
  Src.Ops.push_back(guard(Opcode::IfNe, /*Taken=*/true));
  // Same print, same operand -- but sunk below the exit, so a firing
  // guard would lose it.
  LinearSegment Opt = segment({Instruction(Opcode::Iload, 1)});
  Opt.Ops.push_back(guard(Opcode::IfNe, /*Taken=*/true));
  Opt.Ops.push_back(LinearOp::instr(Instruction(Opcode::Iload, 0)));
  Opt.Ops.push_back(LinearOp::instr(Instruction(Opcode::Iprint)));
  Result R = validateSegment(Src, Opt);
  ASSERT_FALSE(R.Ok);
  EXPECT_EQ(R.Why, Reason::SideExitEffectMismatch);
}

TEST(ValidatorTest, RejectsReorderedOrReoperandedEffects) {
  LinearSegment Src = segment({
      Instruction(Opcode::Iload, 0),
      Instruction(Opcode::Iprint),
  });
  LinearSegment Opt = segment({
      Instruction(Opcode::Iload, 1),
      Instruction(Opcode::Iprint),
  });
  Result R = validateSegment(Src, Opt);
  ASSERT_FALSE(R.Ok);
  EXPECT_EQ(R.Why, Reason::EffectMismatch);
}

TEST(ValidatorTest, RejectsWrongFinalLocals) {
  LinearSegment Src = segment({
      Instruction(Opcode::Iconst, 1),
      Instruction(Opcode::Istore, 0),
  });
  LinearSegment Opt = segment({
      Instruction(Opcode::Iconst, 2),
      Instruction(Opcode::Istore, 0),
  });
  Result R = validateSegment(Src, Opt);
  ASSERT_FALSE(R.Ok);
  EXPECT_EQ(R.Why, Reason::FinalLocalMismatch);
}

TEST(ValidatorTest, RejectsWrongFinalStack) {
  LinearSegment Src = segment({Instruction(Opcode::Iconst, 1)});
  LinearSegment Opt = segment({Instruction(Opcode::Iconst, 2)});
  Result R = validateSegment(Src, Opt);
  ASSERT_FALSE(R.Ok);
  EXPECT_EQ(R.Why, Reason::FinalStackMismatch);
}

TEST(ValidatorTest, ScratchLocalsMayDiverge) {
  // Locals at or above ScratchBase are synthetic inlined-frame slots,
  // dead outside the segment: dropping their stores must validate.
  LinearSegment Src = segment({
      Instruction(Opcode::Iconst, 3),
      Instruction(Opcode::Istore, 5),
  },
                              /*Locals=*/8);
  Src.ScratchBase = 4;
  LinearSegment Opt = segment({}, /*Locals=*/8);
  Opt.ScratchBase = 4;
  EXPECT_TRUE(validateSegment(Src, Opt).Ok);
}

//===----------------------------------------------------------------------===//
// The UnsoundPass mutations: each class rejected with its typed reason
//===----------------------------------------------------------------------===//

namespace {

/// A segment with a data-dependent guard owing a dirty-local flush, a
/// foldable constant, stores live at both the exit and the end, an
/// overwritten heap store and an unestablished heap load -- every
/// mutation class has something to corrupt.
LinearSegment richGuardedSegment() {
  LinearSegment S = segment({
      Instruction(Opcode::Iconst, 6),
      Instruction(Opcode::Iconst, 7),
      Instruction(Opcode::Imul),
      Instruction(Opcode::Istore, 0),
      Instruction(Opcode::Iload, 1),
  });
  S.Ops.push_back(guard(Opcode::IfNe, /*Taken=*/true));
  S.Ops.push_back(LinearOp::instr(Instruction(Opcode::Iload, 0)));
  S.Ops.push_back(LinearOp::instr(Instruction(Opcode::Iprint)));
  // obj.f0 = 1 then obj.f0 = 2: dead-store elimination's (and so
  // ResurrectDeadStore's) site.
  S.Ops.push_back(LinearOp::instr(Instruction(Opcode::Iload, 2)));
  S.Ops.push_back(LinearOp::instr(Instruction(Opcode::Iconst, 1)));
  S.Ops.push_back(LinearOp::instr(Instruction(Opcode::PutField, 0)));
  S.Ops.push_back(LinearOp::instr(Instruction(Opcode::Iload, 2)));
  S.Ops.push_back(LinearOp::instr(Instruction(Opcode::Iconst, 2)));
  S.Ops.push_back(LinearOp::instr(Instruction(Opcode::PutField, 0)));
  // other.f1 was never established: AliasConfusedLoad's site.
  S.Ops.push_back(LinearOp::instr(Instruction(Opcode::Iload, 3)));
  S.Ops.push_back(LinearOp::instr(Instruction(Opcode::GetField, 1)));
  S.Ops.push_back(LinearOp::instr(Instruction(Opcode::Iprint)));
  return S;
}

} // namespace

TEST(ValidatorMutationTest, EveryMutationClassIsRejectedAndStockIsAccepted) {
  LinearSegment In = richGuardedSegment();
  EXPECT_TRUE(optimizeAndValidate(In).Ok);
  for (UnsoundPass P : AllMutations) {
    Result R = optimizeAndValidate(In, mutated(P));
    EXPECT_FALSE(R.Ok) << unsoundPassName(P) << " must not prove through";
    EXPECT_NE(R.Why, Reason::None) << unsoundPassName(P);
  }
}

TEST(ValidatorMutationTest, DropGuardIsTypedGuardDropped) {
  LinearSegment In = segment({Instruction(Opcode::Iload, 1)});
  In.Ops.push_back(guard(Opcode::IfNe, /*Taken=*/true));
  Result R = optimizeAndValidate(In, mutated(UnsoundPass::DropGuard));
  ASSERT_FALSE(R.Ok);
  EXPECT_EQ(R.Why, Reason::GuardDropped);
  EXPECT_TRUE(optimizeAndValidate(In).Ok);
}

TEST(ValidatorMutationTest, ReorderStorePastExitIsTypedSideExitLocal) {
  LinearSegment In = segment({
      Instruction(Opcode::Iconst, 3),
      Instruction(Opcode::Istore, 0),
      Instruction(Opcode::Iload, 1),
  });
  In.Ops.push_back(guard(Opcode::IfNe, /*Taken=*/true));
  In.Ops.push_back(LinearOp::instr(Instruction(Opcode::Iload, 0)));
  In.Ops.push_back(LinearOp::instr(Instruction(Opcode::Iprint)));
  Result R =
      optimizeAndValidate(In, mutated(UnsoundPass::ReorderStorePastExit));
  ASSERT_FALSE(R.Ok);
  EXPECT_EQ(R.Why, Reason::SideExitLocalMismatch);
  EXPECT_TRUE(optimizeAndValidate(In).Ok);
}

TEST(ValidatorMutationTest, WrongConstantIsTypedEffectOrStateMismatch) {
  // Printed: the wrong fold surfaces as a diverging effect operand.
  LinearSegment Printed = segment({
      Instruction(Opcode::Iconst, 6),
      Instruction(Opcode::Iconst, 7),
      Instruction(Opcode::Imul),
      Instruction(Opcode::Iprint),
  });
  Result R = optimizeAndValidate(Printed, mutated(UnsoundPass::WrongConstant));
  ASSERT_FALSE(R.Ok);
  EXPECT_EQ(R.Why, Reason::EffectMismatch);
  EXPECT_TRUE(optimizeAndValidate(Printed).Ok);

  // Stored: it surfaces as a wrong final local.
  LinearSegment Stored = segment({
      Instruction(Opcode::Iconst, 6),
      Instruction(Opcode::Iconst, 7),
      Instruction(Opcode::Imul),
      Instruction(Opcode::Istore, 0),
  });
  R = optimizeAndValidate(Stored, mutated(UnsoundPass::WrongConstant));
  ASSERT_FALSE(R.Ok);
  EXPECT_EQ(R.Why, Reason::FinalLocalMismatch);
  EXPECT_TRUE(optimizeAndValidate(Stored).Ok);
}

TEST(ValidatorMutationTest, KillLiveOnExitIsTypedLocalMismatch) {
  // Killed at the segment-end flush: the final local is simply wrong.
  LinearSegment AtEnd = segment({
      Instruction(Opcode::Iconst, 5),
      Instruction(Opcode::Istore, 0),
  });
  Result R = optimizeAndValidate(AtEnd, mutated(UnsoundPass::KillLiveOnExit));
  ASSERT_FALSE(R.Ok);
  EXPECT_EQ(R.Why, Reason::FinalLocalMismatch);
  EXPECT_TRUE(optimizeAndValidate(AtEnd).Ok);

  // Killed at a guard flush: wrong already at the side exit.
  LinearSegment AtGuard = segment({
      Instruction(Opcode::Iconst, 3),
      Instruction(Opcode::Istore, 0),
      Instruction(Opcode::Iload, 1),
  });
  AtGuard.Ops.push_back(guard(Opcode::IfNe, /*Taken=*/true));
  R = optimizeAndValidate(AtGuard, mutated(UnsoundPass::KillLiveOnExit));
  ASSERT_FALSE(R.Ok);
  EXPECT_EQ(R.Why, Reason::SideExitLocalMismatch);
  EXPECT_TRUE(optimizeAndValidate(AtGuard).Ok);
}

TEST(ValidatorMutationTest, ResurrectDeadStoreIsTypedMemStoreUnjustified) {
  // obj.f0 = 1 is dead (overwritten by obj.f0 = 2); the mutation re-emits
  // it *after* the overwrite, making the stale 1 the cell's final
  // content. The symbolic final heaps diverge.
  LinearSegment In = segment({
      Instruction(Opcode::Iload, 0),
      Instruction(Opcode::Iconst, 1),
      Instruction(Opcode::PutField, 0),
      Instruction(Opcode::Iload, 0),
      Instruction(Opcode::Iconst, 2),
      Instruction(Opcode::PutField, 0),
  });
  Result R = optimizeAndValidate(In, mutated(UnsoundPass::ResurrectDeadStore));
  ASSERT_FALSE(R.Ok);
  EXPECT_EQ(R.Why, Reason::MemStoreUnjustified);
  EXPECT_TRUE(optimizeAndValidate(In).Ok);
}

TEST(ValidatorMutationTest, AliasConfusedLoadIsTypedMemLoadUnjustified) {
  // obj.f0 was never established inside the segment, so eliminating the
  // load (with a fabricated value) has no dominating-access proof.
  LinearSegment In = segment({
      Instruction(Opcode::Iload, 0),
      Instruction(Opcode::GetField, 0),
      Instruction(Opcode::Iprint),
  });
  Result R = optimizeAndValidate(In, mutated(UnsoundPass::AliasConfusedLoad));
  ASSERT_FALSE(R.Ok);
  EXPECT_EQ(R.Why, Reason::MemLoadUnjustified);
  EXPECT_TRUE(optimizeAndValidate(In).Ok);
}

//===----------------------------------------------------------------------===//
// Whole traces from real programs
//===----------------------------------------------------------------------===//

namespace {

/// Runs \p M hot under stock options and hands back its VM (traces
/// built, validation hook exercised).
TraceVM runHot(const PreparedModule &PM, VmOptions Options = VmOptions()) {
  TraceVM VM(PM, Options);
  VM.run();
  return VM;
}

/// Validates every live trace of \p VM under \p Cfg, returning the
/// rejection reasons observed (empty: everything proved through).
std::vector<Reason> reasonsUnder(const PreparedModule &PM, const TraceVM &VM,
                                 const OptConfig &Cfg,
                                 const analysis::ModuleAnalysis *Facts) {
  std::vector<Reason> Out;
  for (const Trace &T : VM.traceCache().traces()) {
    if (!T.Alive)
      continue;
    Result R = validateTrace(PM, T, Cfg, Facts);
    if (!R.Ok)
      Out.push_back(R.Why);
  }
  return Out;
}

} // namespace

namespace {

/// Hot loop that stores a constant into t (local 1) and then takes a
/// data-dependent branch whose exit path READS t: the deferred store is
/// owed at that guard, giving the flush-corrupting mutations a site to
/// fire on. Locals: 0=i, 1=t, 2=acc.
Module storeBeforeExitLoop() {
  Assembler Asm;
  uint32_t Main = Asm.declareMethod("main", 0, 3, false);
  {
    MethodBuilder B = Asm.beginMethod(Main);
    Label Loop = B.newLabel(), Done = B.newLabel(), Bail = B.newLabel();
    B.iconst(0);
    B.istore(0);
    B.iconst(0);
    B.istore(2);
    B.bind(Loop);
    B.iload(0);
    B.iconst(60000);
    B.branch(Opcode::IfIcmpGe, Done);
    B.iconst(7);
    B.istore(1); // t = 7: deferred inside the segment
    B.iload(2);
    B.branch(Opcode::IfLt, Bail); // side exit that reads t
    B.iload(2);
    B.iload(1);
    B.emit(Opcode::Iadd);
    B.istore(2);
    B.iinc(0, 1);
    B.branch(Opcode::Goto, Loop);
    B.bind(Bail);
    B.iload(1);
    B.emit(Opcode::Iprint);
    B.halt();
    B.bind(Done);
    B.iload(2);
    B.emit(Opcode::Iprint);
    B.halt();
    B.finish();
  }
  Asm.setEntry(Main);
  return Asm.build();
}

/// Hot loop with array traffic the memory passes transform: a dead store
/// (a[0]=1 overwritten by a[0]=i) and a load of a never-written cell
/// (a[1]) -- the sites of the two alias mutations. The loaded cell
/// feeds a print so the alias mutations corrupt an observable effect
/// rather than a live local. Locals: 0=a, 1=i.
Module arrayCellLoop() {
  Assembler Asm;
  uint32_t Main = Asm.declareMethod("main", 0, 2, false);
  {
    MethodBuilder B = Asm.beginMethod(Main);
    Label Loop = B.newLabel(), Done = B.newLabel();
    B.iconst(8);
    B.emit(Opcode::NewArray);
    B.istore(0);
    B.iconst(0);
    B.istore(1);
    B.bind(Loop);
    B.iload(1);
    B.iconst(60000);
    B.branch(Opcode::IfIcmpGe, Done);
    B.iload(0);
    B.iconst(0);
    B.iconst(1);
    B.emit(Opcode::Iastore); // a[0] = 1: dead
    B.iload(0);
    B.iconst(0);
    B.iload(1);
    B.emit(Opcode::Iastore); // a[0] = i: the overwrite
    B.iload(0);
    B.iconst(1);
    B.emit(Opcode::Iaload); // a[1]: never established
    B.emit(Opcode::Iprint);
    B.iinc(1, 1);
    B.branch(Opcode::Goto, Loop);
    B.bind(Done);
    B.iload(0);
    B.iconst(0);
    B.emit(Opcode::Iaload);
    B.emit(Opcode::Iprint);
    B.halt();
    B.finish();
  }
  Asm.setEntry(Main);
  return Asm.build();
}

/// Hot loop printing a foldable constant expression each iteration: the
/// wrong-constant mutation's site.
Module foldedPrintLoop() {
  Assembler Asm;
  uint32_t Main = Asm.declareMethod("main", 0, 1, false);
  {
    MethodBuilder B = Asm.beginMethod(Main);
    Label Loop = B.newLabel(), Done = B.newLabel();
    B.iconst(0);
    B.istore(0);
    B.bind(Loop);
    B.iload(0);
    B.iconst(20000);
    B.branch(Opcode::IfIcmpGe, Done);
    B.iconst(6);
    B.iconst(7);
    B.emit(Opcode::Imul);
    B.emit(Opcode::Iprint);
    B.iinc(0, 1);
    B.branch(Opcode::Goto, Loop);
    B.bind(Done);
    B.halt();
    B.finish();
  }
  Asm.setEntry(Main);
  return Asm.build();
}

} // namespace

TEST(ValidatorTraceTest, EveryMutationClassIsCaughtOnRealTraces) {
  // Expected reason sets per mutation class. The exact reason depends on
  // where the first exit after the corruption sits, but each class has a
  // small closed set of ways it can surface. A dropped guard in a trace
  // spanning two loop iterations surfaces as guard-operand-mismatch: the
  // cursor lands on the *next* iteration's identical check over different
  // values.
  auto Expected = [](UnsoundPass P, Reason R) {
    switch (P) {
    case UnsoundPass::DropGuard:
      return R == Reason::GuardDropped || R == Reason::GuardOperandMismatch;
    case UnsoundPass::ReorderStorePastExit:
      return R == Reason::SideExitLocalMismatch;
    case UnsoundPass::KillLiveOnExit:
      return R == Reason::SideExitLocalMismatch ||
             R == Reason::FinalLocalMismatch;
    case UnsoundPass::WrongConstant:
      return R == Reason::EffectMismatch || R == Reason::FinalLocalMismatch ||
             R == Reason::SideExitLocalMismatch ||
             R == Reason::SideExitStackMismatch ||
             R == Reason::FinalStackMismatch;
    case UnsoundPass::ResurrectDeadStore:
      return R == Reason::MemStoreUnjustified;
    case UnsoundPass::AliasConfusedLoad:
      // The fabricated value usually surfaces as the missing load itself;
      // when it feeds a store or effect first, the divergence can be
      // typed at that consumer instead.
      return R == Reason::MemLoadUnjustified ||
             R == Reason::MemStoreUnjustified || R == Reason::EffectMismatch ||
             R == Reason::FinalLocalMismatch ||
             R == Reason::SideExitLocalMismatch;
    case UnsoundPass::None:
      break;
    }
    return false;
  };

  // Programs chosen so every mutation has a site to fire on: the plain
  // hot loops only exercise guard drops (their stores hold computed
  // values, which the optimizer never defers); the store-before-exit and
  // folded-print loops feed the flush and fold corruptions.
  std::vector<Module> Programs;
  Programs.push_back(testprog::hotLoop(100000));
  Programs.push_back(testprog::countingLoop(100000));
  Programs.push_back(storeBeforeExitLoop());
  Programs.push_back(foldedPrintLoop());
  Programs.push_back(arrayCellLoop());

  for (UnsoundPass P : AllMutations) {
    unsigned Rejected = 0;
    for (const Module &M : Programs) {
      PreparedModule PM(M);
      analysis::ModuleAnalysis Facts = analysis::ModuleAnalysis::compute(M);
      TraceVM VM = runHot(PM);
      for (Reason R : reasonsUnder(PM, VM, mutated(P), &Facts)) {
        EXPECT_TRUE(Expected(P, R))
            << unsoundPassName(P) << " surfaced as " << reasonName(R);
        ++Rejected;
      }
    }
    EXPECT_GT(Rejected, 0u)
        << unsoundPassName(P) << " must reject at least one real trace";
  }
}

TEST(ValidatorTraceTest, StockOptimizerValidatesCleanOnAllWorkloads) {
  for (const WorkloadInfo &W : allWorkloads()) {
    Module M = W.Build(std::max(1u, W.DefaultScale / 100));
    PreparedModule PM(M);
    analysis::ModuleAnalysis Facts = analysis::ModuleAnalysis::compute(M);
    TraceVM VM = runHot(PM);
    unsigned Checked = 0;
    for (const Trace &T : VM.traceCache().traces()) {
      if (!T.Alive)
        continue;
      Result R = validateTrace(PM, T, OptConfig(), &Facts);
      EXPECT_TRUE(R.Ok) << W.Name << ": trace " << T.Id << " segment "
                        << R.SegmentIndex << ": " << reasonName(R.Why) << ": "
                        << R.Detail;
      ++Checked;
    }
    EXPECT_GT(Checked, 0u) << W.Name;
  }
}

//===----------------------------------------------------------------------===//
// The construction-time hook: stats, telemetry, fallback, strict mode
//===----------------------------------------------------------------------===//

TEST(ValidatorHookTest, StockRunValidatesAndAcceptsEveryTrace) {
  Module M = testprog::hotLoop(100000);
  PreparedModule PM(M);
  TraceVM VM = runHot(PM); // validation defaults to On
  const TraceCache::CacheStats &CS = VM.traceCache().stats();
  EXPECT_GT(CS.TracesValidated, 0u);
  EXPECT_EQ(CS.ValidationRejects, 0u);
  EXPECT_TRUE(CS.RejectsByReason.empty());
  for (const Trace &T : VM.traceCache().traces())
    EXPECT_EQ(T.Validation, TraceValidation::Accepted) << "trace " << T.Id;
  VmStats S = VM.stats();
  EXPECT_EQ(S.TracesValidated, CS.TracesValidated);
  EXPECT_EQ(S.TraceValidationRejects, 0u);
}

TEST(ValidatorHookTest, ValidateOffLeavesTracesUnchecked) {
  Module M = testprog::hotLoop(100000);
  PreparedModule PM(M);
  TraceVM VM = runHot(PM, VmOptions().validate(ValidateMode::Off));
  EXPECT_EQ(VM.traceCache().stats().TracesValidated, 0u);
  for (const Trace &T : VM.traceCache().traces())
    EXPECT_EQ(T.Validation, TraceValidation::Unchecked);
}

TEST(ValidatorHookTest, RejectedTracesFallBackWithoutChangingBehaviour) {
  Module M = testprog::hotLoop(100000);
  PreparedModule PM(M);
  TraceVM Stock = runHot(PM);
  TraceVM Mutant =
      runHot(PM, VmOptions().optConfig(mutated(UnsoundPass::DropGuard)));

  const TraceCache::CacheStats &CS = Mutant.traceCache().stats();
  EXPECT_GT(CS.ValidationRejects, 0u);
  uint64_t ByReason = 0;
  for (const auto &[Code, Count] : CS.RejectsByReason) {
    EXPECT_EQ(static_cast<Reason>(Code), Reason::GuardDropped);
    ByReason += Count;
  }
  EXPECT_EQ(ByReason, CS.ValidationRejects);
  bool SawRejected = false;
  for (const Trace &T : Mutant.traceCache().traces())
    SawRejected |= T.Validation == TraceValidation::Rejected;
  EXPECT_TRUE(SawRejected);

  // Dispatch always executes the unoptimized block sequence, so even a
  // run whose every trace was rejected behaves identically.
  EXPECT_EQ(Mutant.machine().output(), Stock.machine().output());
  VmStats S = Mutant.stats();
  EXPECT_EQ(S.TraceValidationRejects, CS.ValidationRejects);
}

// The mirroring test reads the event ring, so it needs the
// instrumentation compiled in; the counters it cross-checks against are
// unconditional and covered above.
#ifdef JTC_TELEMETRY
TEST(ValidatorHookTest, VerdictsAreMirroredAsTelemetryEvents) {
  // Keep the run small enough that the ring retains every event:
  // validation events fire at construction time, early in the run, and
  // would be the first overwritten.
  Module M = testprog::hotLoop(20000);
  PreparedModule PM(M);
  TraceVM VM = runHot(PM, VmOptions()
                              .telemetry(true)
                              .telemetryCapacity(1u << 18)
                              .optConfig(mutated(UnsoundPass::DropGuard)));
  ASSERT_EQ(VM.events().dropped(), 0u)
      << "ring wrapped; the counts below would be meaningless";
  const TraceCache::CacheStats &CS = VM.traceCache().stats();
  ASSERT_GT(CS.ValidationRejects, 0u);
  uint64_t Accepted = 0, Rejected = 0;
  for (const Event &E : VM.events().snapshot()) {
    if (E.Kind == EventKind::TraceValidated)
      ++Accepted;
    else if (E.Kind == EventKind::TraceValidationRejected)
      ++Rejected;
  }
  EXPECT_EQ(Accepted, CS.TracesValidated - CS.ValidationRejects);
  EXPECT_EQ(Rejected, CS.ValidationRejects);
}
#endif // JTC_TELEMETRY

#if GTEST_HAS_DEATH_TEST
TEST(ValidatorHookTest, StrictModeAbortsOnRejection) {
  Module M = testprog::hotLoop(100000);
  PreparedModule PM(M);
  EXPECT_DEATH(
      {
        TraceVM VM(PM, VmOptions()
                           .validate(ValidateMode::Strict)
                           .optConfig(mutated(UnsoundPass::DropGuard)));
        VM.run();
      },
      "rejected by translation validation");
}
#endif

//===----------------------------------------------------------------------===//
// Pinned corpus: accepted and rejected pairs with expected reason codes
//===----------------------------------------------------------------------===//

namespace {

struct CorpusCase {
  std::string File;
  UnsoundPass Mutation = UnsoundPass::None;
  std::string ExpectedReason; ///< "none": every trace must validate.
};

bool parseUnsound(const std::string &Name, UnsoundPass &Out) {
  for (UnsoundPass P :
       {UnsoundPass::None, UnsoundPass::DropGuard,
        UnsoundPass::ReorderStorePastExit, UnsoundPass::WrongConstant,
        UnsoundPass::KillLiveOnExit, UnsoundPass::ResurrectDeadStore,
        UnsoundPass::AliasConfusedLoad}) {
    if (Name == unsoundPassName(P)) {
      Out = P;
      return true;
    }
  }
  return false;
}

/// Reads manifest.txt: one "file mutation expected-reason" triple per
/// line, '#' comments.
std::vector<CorpusCase> readManifest() {
  std::vector<CorpusCase> Cases;
  std::ifstream In(std::string(JTC_VALIDATE_CORPUS_DIR) + "/manifest.txt");
  EXPECT_TRUE(In.good()) << "missing corpus manifest";
  std::string Line;
  while (std::getline(In, Line)) {
    if (Line.empty() || Line[0] == '#')
      continue;
    std::istringstream LS(Line);
    CorpusCase C;
    std::string Mutation;
    LS >> C.File >> Mutation >> C.ExpectedReason;
    EXPECT_FALSE(C.ExpectedReason.empty()) << "bad manifest line: " << Line;
    EXPECT_TRUE(parseUnsound(Mutation, C.Mutation))
        << "unknown mutation in manifest: " << Mutation;
    Cases.push_back(std::move(C));
  }
  return Cases;
}

} // namespace

TEST(ValidatorCorpusTest, ManifestCoversAcceptanceAndEveryMutationClass) {
  std::vector<CorpusCase> Cases = readManifest();
  ASSERT_GE(Cases.size(), 8u);
  bool SawAccept = false;
  std::set<UnsoundPass> Mutations;
  for (const CorpusCase &C : Cases) {
    SawAccept |= C.Mutation == UnsoundPass::None;
    Mutations.insert(C.Mutation);
  }
  EXPECT_TRUE(SawAccept) << "corpus must pin accepted pairs too";
  EXPECT_EQ(Mutations.size(), 7u)
      << "corpus must pin every mutation class plus acceptance";
}

TEST(ValidatorCorpusTest, EveryPinnedPairReplaysToItsReasonCode) {
  for (const CorpusCase &C : readManifest()) {
    std::string Path = std::string(JTC_VALIDATE_CORPUS_DIR) + "/" + C.File;
    std::string Error;
    std::optional<Module> M = parseModuleFile(Path, Error);
    ASSERT_TRUE(M.has_value()) << Path << ": " << Error;

    PreparedModule PM(*M);
    analysis::ModuleAnalysis Facts = analysis::ModuleAnalysis::compute(*M);
    TraceVM VM = runHot(PM);
    ASSERT_GT(VM.traceCache().stats().TracesValidated, 0u)
        << Path << ": fixture builds no traces";
    EXPECT_EQ(VM.traceCache().stats().ValidationRejects, 0u)
        << Path << ": fixtures must be clean under the stock optimizer";

    std::vector<Reason> Reasons =
        reasonsUnder(PM, VM, mutated(C.Mutation), &Facts);
    if (C.Mutation == UnsoundPass::None) {
      EXPECT_TRUE(Reasons.empty()) << Path;
      continue;
    }
    EXPECT_FALSE(Reasons.empty())
        << Path << ": " << unsoundPassName(C.Mutation) << " must reject";
    for (Reason R : Reasons)
      EXPECT_EQ(reasonName(R), C.ExpectedReason)
          << Path << " under " << unsoundPassName(C.Mutation);
  }
}
