//===- tests/property_test.cpp - Parameterized property tests -------------===//
///
/// Property-style sweeps over random seeds and parameter grids, using
/// TEST_P / INSTANTIATE_TEST_SUITE_P:
///
///  - semantic transparency: for random programs, instruction dispatch,
///    direct-threaded dispatch, trace dispatch and the NET baseline all
///    produce identical observable behaviour under every (threshold,
///    delay) combination;
///  - metric sanity: coverage/completion stay within [0, 1], counters
///    stay consistent;
///  - BCG probability laws: per-node successor probabilities sum to 1.
///
//===----------------------------------------------------------------------===//

#include "vm/TraceVM.h"

#include "TestPrograms.h"
#include "baseline/NetTraceVm.h"
#include "bytecode/Verifier.h"
#include "fuzz/Invariants.h"
#include "fuzz/Oracle.h"
#include "interp/InstructionInterpreter.h"
#include "interp/ThreadedInterpreter.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

using namespace jtc;

//===----------------------------------------------------------------------===//
// Random-program transparency sweep
//===----------------------------------------------------------------------===//

class RandomProgramProperty
    : public ::testing::TestWithParam<std::tuple<uint64_t, double, uint32_t>> {
};

TEST_P(RandomProgramProperty, TraceDispatchIsSemanticallyTransparent) {
  auto [Seed, Threshold, Delay] = GetParam();
  testprog::RandomProgramBuilder Gen(Seed);
  Module M = Gen.build();
  ASSERT_TRUE(isValid(M)) << formatErrors(verifyModule(M));

  Machine Plain(M);
  RunResult R1 = runInstructions(Plain, 5000000);

  PreparedModule PM(M);
  TraceVM VM(PM, VmOptions()
                     .completionThreshold(Threshold)
                     .startStateDelay(Delay)
                     .decayInterval(32) // small interval: evaluate aggressively
                     .maxInstructions(5000000));
  RunResult R2 = VM.run();

  EXPECT_EQ(R1.Status, R2.Status);
  EXPECT_EQ(R1.Instructions, R2.Instructions);
  EXPECT_EQ(Plain.output(), VM.machine().output());
  EXPECT_EQ(fuzz::heapDigest(Plain.heap()),
            fuzz::heapDigest(VM.machine().heap()));

  const VmStats &S = VM.stats();
  EXPECT_EQ(S.BlocksExecuted, S.BlockDispatches + S.BlocksInTraces);
  EXPECT_LE(S.completedCoverage(), 1.0 + 1e-12);
  EXPECT_LE(S.completionRate(), 1.0 + 1e-12);
  EXPECT_TRUE(fuzz::checkTraceVm(VM, R2.Status).empty())
      << fuzz::formatViolations(fuzz::checkTraceVm(VM, R2.Status));

  // The direct-threaded engine agrees with the reference as well.
  ThreadedProgram TP(PM);
  ThreadedResult TR = TP.run(5000000);
  EXPECT_EQ(R1.Status, TR.Status);
  EXPECT_EQ(R1.Instructions, TR.Instructions);
  EXPECT_EQ(Plain.output(), TR.Output);

  // And so does the Dynamo-NET baseline.
  NetConfig NC;
  NC.MaxInstructions = 5000000;
  NetTraceVm Net(PM, NC);
  RunResult R3 = Net.run();
  EXPECT_EQ(R1.Status, R3.Status);
  EXPECT_EQ(R1.Instructions, R3.Instructions);
  EXPECT_EQ(Plain.output(), Net.machine().output());
  EXPECT_EQ(fuzz::heapDigest(Plain.heap()),
            fuzz::heapDigest(Net.machine().heap()));
  EXPECT_TRUE(fuzz::checkNetVm(Net).empty())
      << fuzz::formatViolations(fuzz::checkNetVm(Net));
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, RandomProgramProperty,
    ::testing::Combine(::testing::Values(11ull, 22ull, 33ull, 44ull, 55ull,
                                         66ull, 77ull, 88ull),
                       ::testing::Values(1.0, 0.97, 0.9),
                       ::testing::Values(1u, 64u)));

//===----------------------------------------------------------------------===//
// Threshold monotonicity on a controlled program
//===----------------------------------------------------------------------===//

class ThresholdProperty : public ::testing::TestWithParam<double> {};

TEST_P(ThresholdProperty, InstalledTracesHonourTheThreshold) {
  double T = GetParam();
  Module M = testprog::hotLoop(200000);
  PreparedModule PM(M);
  TraceVM VM(PM, VmOptions().completionThreshold(T));
  VM.run();
  for (const Trace &Tr : VM.traceCache().traces())
    EXPECT_GE(Tr.ExpectedCompletion, T - 1e-9)
        << "trace " << Tr.Id << " violates the completion threshold";
}

TEST_P(ThresholdProperty, ActualCompletionTracksExpectation) {
  double T = GetParam();
  Module M = testprog::hotLoop(200000);
  PreparedModule PM(M);
  TraceVM VM(PM, VmOptions().completionThreshold(T));
  VM.run();
  const VmStats &S = VM.stats();
  if (S.TraceDispatches > 1000) {
    EXPECT_GE(S.completionRate(), T - 0.1)
        << "dynamic completion should stay near the design threshold";
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, ThresholdProperty,
                         ::testing::Values(1.0, 0.99, 0.98, 0.97, 0.95));

//===----------------------------------------------------------------------===//
// Delay sweep property
//===----------------------------------------------------------------------===//

class DelayProperty : public ::testing::TestWithParam<uint32_t> {};

TEST_P(DelayProperty, DelayNeverBreaksSemantics) {
  uint32_t Delay = GetParam();
  Module M = testprog::hotLoop(100000);
  Machine Plain(M);
  runInstructions(Plain);
  PreparedModule PM(M);
  TraceVM VM(PM, VmOptions().startStateDelay(Delay));
  VM.run();
  EXPECT_EQ(Plain.output(), VM.machine().output());
}

TEST_P(DelayProperty, ColdCodeNeverEntersTraces) {
  // With a delay above the run's iteration count, nothing can be traced.
  uint32_t Delay = GetParam();
  Module M = testprog::hotLoop(200);
  PreparedModule PM(M);
  TraceVM VM(PM, VmOptions().startStateDelay(Delay));
  VM.run();
  if (Delay >= 4096) {
    EXPECT_EQ(VM.stats().TraceDispatches, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, DelayProperty,
                         ::testing::Values(1u, 64u, 4096u));

//===----------------------------------------------------------------------===//
// BCG probability laws over random streams
//===----------------------------------------------------------------------===//

class BcgLawProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BcgLawProperty, SuccessorProbabilitiesFormADistribution) {
  Prng Rng(GetParam());
  ProfilerConfig PC;
  PC.StartStateDelay = 1;
  PC.DecayInterval = 64;
  BranchCorrelationGraph G(PC);
  // A random walk over a small block alphabet.
  BlockId Cur = 0;
  for (unsigned I = 0; I < 20000; ++I) {
    Cur = (Cur + 1 + static_cast<BlockId>(Rng.nextBelow(4))) % 9;
    G.onBlockDispatch(Cur);
  }
  for (NodeId N = 0; N < G.numNodes(); ++N) {
    const BranchNode &Node = G.node(N);
    if (Node.totalWeight() == 0)
      continue;
    double Sum = 0;
    uint32_t CountSum = 0;
    for (const Correlation &C : Node.correlations()) {
      double P = Node.probabilityOf(C.Succ);
      EXPECT_GE(P, 0.0);
      EXPECT_LE(P, 1.0 + 1e-12);
      Sum += P;
      CountSum += C.Count.value();
    }
    EXPECT_NEAR(Sum, 1.0, 1e-9) << "node " << N;
    EXPECT_EQ(CountSum, Node.totalWeight())
        << "maintained total must equal the sum of counts";
    // The instantaneous maximum over successors is at least the uniform
    // floor. (Node::maxProbability() reflects the *cached* maximum from
    // the last evaluation, which may lag between decay passes, so the
    // true maximum is recomputed here.)
    double TrueMax = 0;
    for (const Correlation &C : Node.correlations())
      TrueMax = std::max(TrueMax, Node.probabilityOf(C.Succ));
    EXPECT_GE(TrueMax + 1e-12,
              1.0 / static_cast<double>(Node.correlations().size()))
        << "the maximum cannot be below the uniform floor";
    EXPECT_LE(Node.maxProbability(), 1.0 + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BcgLawProperty,
                         ::testing::Values(3ull, 14ull, 159ull, 2653ull,
                                           58979ull));
