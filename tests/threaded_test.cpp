//===- tests/threaded_test.cpp - Direct-threaded engine -------------------===//

#include "interp/ThreadedInterpreter.h"

#include "TestPrograms.h"
#include "interp/BlockStepper.h"
#include "interp/InstructionInterpreter.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace jtc;

namespace {

/// Runs \p M under the reference instruction interpreter and the threaded
/// engine and checks full agreement: status, trap, outputs, instruction
/// count, and block-dispatch count (vs. the block stepper).
void expectAgreement(const Module &M, uint64_t Budget = ~0ull) {
  Machine Ref(M);
  RunResult R1 = runInstructions(Ref, Budget);

  PreparedModule PM(M);
  ThreadedProgram TP(PM);
  ThreadedResult R2 = TP.run(Budget);

  EXPECT_EQ(static_cast<int>(R1.Status), static_cast<int>(R2.Status));
  EXPECT_EQ(R1.Trap, R2.Trap);
  EXPECT_EQ(Ref.output(), R2.Output);
  if (R1.Status == RunStatus::Finished)
    EXPECT_EQ(R1.Instructions, R2.Instructions);

  // Block dispatches match the Fig. 2 block stepper exactly.
  if (R1.Status == RunStatus::Finished) {
    Machine M2(M);
    BlockStepper Stepper(PM, M2);
    RunResult R3 = runBlocks(Stepper, Budget);
    EXPECT_EQ(R3.Dispatches, R2.BlockDispatches);
  }
}

} // namespace

TEST(ThreadedTest, HandBuiltPrograms) {
  expectAgreement(testprog::countingLoop(1000));
  expectAgreement(testprog::recursiveFactorial(10));
  expectAgreement(testprog::virtualDispatch());
  expectAgreement(testprog::switchProgram());
  expectAgreement(testprog::arraySquares(32));
  expectAgreement(testprog::hotLoop(5000));
}

TEST(ThreadedTest, TrapsAgree) {
  expectAgreement(testprog::divideByZero());
  // Runaway recursion traps as stack overflow.
  Module M = testprog::recursiveFactorial(5);
  M.Methods[1].Code[0] = Instruction(Opcode::Iconst, 1 << 28);
  PreparedModule PM(M);
  ThreadedProgram TP(PM);
  ThreadedResult R = TP.run();
  EXPECT_EQ(R.Status, RunStatus::Trapped);
  EXPECT_EQ(R.Trap, TrapKind::StackOverflow);
}

TEST(ThreadedTest, BudgetStops) {
  Module M = testprog::countingLoop(100000000);
  PreparedModule PM(M);
  ThreadedProgram TP(PM);
  ThreadedResult R = TP.run(/*MaxInstructions=*/10000);
  EXPECT_EQ(R.Status, RunStatus::BudgetExhausted);
  EXPECT_GE(R.Instructions, 10000u);
  // The budget is checked at block boundaries; overshoot is bounded by
  // one block.
  EXPECT_LT(R.Instructions, 10200u);
}

TEST(ThreadedTest, RandomProgramsAgree) {
  for (uint64_t Seed = 2000; Seed < 2050; ++Seed) {
    testprog::RandomProgramBuilder Gen(Seed);
    Module M = Gen.build();
    SCOPED_TRACE("seed " + std::to_string(Seed));
    expectAgreement(M);
  }
}

TEST(ThreadedTest, WorkloadsAgree) {
  for (const WorkloadInfo &W : allWorkloads()) {
    SCOPED_TRACE(W.Name);
    expectAgreement(W.Build(std::max(1u, W.DefaultScale / 100)));
  }
}

TEST(ThreadedTest, ProfiledRunBuildsTheSameGraphAsTheStepper) {
  Module M = testprog::hotLoop(30000);
  PreparedModule PM(M);

  // Reference: block stepper feeding the graph through the same hook.
  ProfilerConfig PC;
  BranchCorrelationGraph RefGraph(PC);
  Machine Mach(M);
  BlockStepper Stepper(PM, Mach);
  runBlocksWithHook(Stepper,
                    [&RefGraph](BlockId B) { RefGraph.onBlockDispatch(B); });

  BranchCorrelationGraph Graph(PC);
  ThreadedProgram TP(PM);
  ThreadedResult R = TP.runProfiled(Graph);
  EXPECT_EQ(R.Status, RunStatus::Finished);

  ASSERT_EQ(Graph.numNodes(), RefGraph.numNodes());
  EXPECT_EQ(Graph.stats().Hooks, RefGraph.stats().Hooks);
  EXPECT_EQ(Graph.stats().DecayPasses, RefGraph.stats().DecayPasses);
  for (NodeId N = 0; N < Graph.numNodes(); ++N) {
    EXPECT_EQ(Graph.node(N).from(), RefGraph.node(N).from());
    EXPECT_EQ(Graph.node(N).to(), RefGraph.node(N).to());
    EXPECT_EQ(Graph.node(N).executions(), RefGraph.node(N).executions());
    EXPECT_EQ(Graph.node(N).state(), RefGraph.node(N).state());
  }
}

TEST(ThreadedTest, CodeSizeIncludesSyntheticDispatches) {
  // The hot loop has at least one fallthrough block boundary (the join
  // after the if/else), so the flat code exceeds the instruction count.
  Module M = testprog::hotLoop(10);
  size_t RawInstructions = 0;
  for (const Method &Mth : M.Methods)
    RawInstructions += Mth.Code.size();
  PreparedModule PM(M);
  ThreadedProgram TP(PM);
  EXPECT_GT(TP.codeSize(), RawInstructions);
}
