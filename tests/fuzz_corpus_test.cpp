//===- tests/fuzz_corpus_test.cpp - Regression corpus replay --------------===//
///
/// Replays every checked-in .jasm program under tests/corpus/ through the
/// full cross-engine oracle. The corpus holds programs that once
/// exercised interesting behaviour (fuzz-found shapes, trap paths, deep
/// dispatch); each must parse, verify and run with full agreement across
/// all engines and no invariant violations.
///
/// JTC_CORPUS_DIR is injected by the build (tests/CMakeLists.txt).
///
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzzer.h"
#include "fuzz/Oracle.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

using namespace jtc;
using namespace jtc::fuzz;

namespace {

std::vector<std::string> corpusFiles() {
  std::vector<std::string> Files;
  for (const auto &Entry :
       std::filesystem::directory_iterator(JTC_CORPUS_DIR)) {
    if (Entry.path().extension() == ".jasm")
      Files.push_back(Entry.path().string());
  }
  std::sort(Files.begin(), Files.end());
  return Files;
}

} // namespace

TEST(FuzzCorpusTest, CorpusIsNotEmpty) {
  EXPECT_GE(corpusFiles().size(), 5u)
      << "the regression corpus under " << JTC_CORPUS_DIR
      << " should hold the checked-in fuzz programs";
}

TEST(FuzzCorpusTest, EveryCorpusProgramReplaysClean) {
  OracleConfig Config;
  for (const std::string &Path : corpusFiles()) {
    OracleResult R = replayFile(Path, Config);
    EXPECT_TRUE(R.Ok) << Path << ":\n" << formatFindings(R.Findings);
    EXPECT_FALSE(R.Skipped) << Path << ": corpus programs must fit the budget";
  }
}

TEST(FuzzCorpusTest, CorpusSurvivesTheConfigGrid) {
  // Replay under a deliberately hostile grid point on top of the default
  // grid: immediate tracing, fast decay.
  OracleConfig Config;
  Config.Grid = {{1.0, 1, 32}, {0.9, 1, 32}, {0.97, 1, 64}};
  for (const std::string &Path : corpusFiles()) {
    OracleResult R = replayFile(Path, Config);
    EXPECT_TRUE(R.Ok) << Path << ":\n" << formatFindings(R.Findings);
  }
}
