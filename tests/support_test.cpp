//===- tests/support_test.cpp - Unit tests for the support library --------===//

#include "support/ArgParse.h"
#include "support/Ids.h"
#include "support/Prng.h"
#include "support/SaturatingCounter.h"
#include "support/Stats.h"
#include "support/TablePrinter.h"
#include "support/Timer.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <sstream>

using namespace jtc;

//===----------------------------------------------------------------------===//
// Prng
//===----------------------------------------------------------------------===//

TEST(PrngTest, DeterministicForEqualSeeds) {
  Prng A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(PrngTest, DifferentSeedsDiverge) {
  Prng A(1), B(2);
  int Different = 0;
  for (int I = 0; I < 32; ++I)
    if (A.next() != B.next())
      ++Different;
  EXPECT_GT(Different, 30);
}

TEST(PrngTest, ReseedRestartsSequence) {
  Prng A(7);
  uint64_t First = A.next();
  A.next();
  A.reseed(7);
  EXPECT_EQ(A.next(), First);
}

TEST(PrngTest, NextBelowStaysInBounds) {
  Prng P(3);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(P.nextBelow(17), 17u);
}

TEST(PrngTest, NextBelowOneIsAlwaysZero) {
  Prng P(9);
  for (int I = 0; I < 20; ++I)
    EXPECT_EQ(P.nextBelow(1), 0u);
}

TEST(PrngTest, NextInRangeInclusive) {
  Prng P(5);
  std::set<int64_t> Seen;
  for (int I = 0; I < 2000; ++I) {
    int64_t V = P.nextInRange(-3, 3);
    EXPECT_GE(V, -3);
    EXPECT_LE(V, 3);
    Seen.insert(V);
  }
  EXPECT_EQ(Seen.size(), 7u) << "all 7 values should appear in 2000 draws";
}

// Fuzz-found edge cases: the full-width range used to compute its span as
// Hi - Lo + 1 in signed arithmetic (undefined overflow), and nextBelow's
// multiply-shift reduction is only defined for a nonzero bound.

TEST(PrngTest, NextInRangeFullWidth) {
  Prng P(21);
  // [INT64_MIN, INT64_MAX]: the span (2^64) is unrepresentable; the draw
  // must degenerate to a raw 64-bit value, and every value is in range by
  // definition. Exercise enough draws to cross the sign boundary.
  bool SawNegative = false, SawPositive = false;
  for (int I = 0; I < 200; ++I) {
    int64_t V = P.nextInRange(INT64_MIN, INT64_MAX);
    SawNegative |= V < 0;
    SawPositive |= V > 0;
  }
  EXPECT_TRUE(SawNegative);
  EXPECT_TRUE(SawPositive);
}

TEST(PrngTest, NextInRangeSignedBoundaries) {
  Prng P(23);
  for (int I = 0; I < 500; ++I) {
    // A span that crosses zero and touches INT64_MIN exactly.
    int64_t V = P.nextInRange(INT64_MIN, INT64_MIN + 1);
    EXPECT_TRUE(V == INT64_MIN || V == INT64_MIN + 1);
    // Degenerate one-value ranges at both extremes.
    EXPECT_EQ(P.nextInRange(INT64_MAX, INT64_MAX), INT64_MAX);
    EXPECT_EQ(P.nextInRange(INT64_MIN, INT64_MIN), INT64_MIN);
  }
}

TEST(PrngTest, NextBelowBoundOneConsumesNoState) {
  // Bound == 1 has a single possible outcome; skipping the draw keeps
  // generator streams aligned across code paths that differ only in
  // degenerate choices.
  Prng A(27), B(27);
  EXPECT_EQ(A.nextBelow(1), 0u);
  EXPECT_EQ(A.next(), B.next());
}

TEST(PrngTest, NextBelowLargeBoundCoversHighValues) {
  Prng P(29);
  // A bound just below 2^63: the multiply-shift reduction must reach the
  // top half of the range (a naive modulo of a 32-bit draw would not).
  uint64_t Bound = (1ull << 63) - 3;
  bool SawHigh = false;
  for (int I = 0; I < 200; ++I) {
    uint64_t V = P.nextBelow(Bound);
    EXPECT_LT(V, Bound);
    SawHigh |= V > Bound / 2;
  }
  EXPECT_TRUE(SawHigh);
}

TEST(PrngTest, ChancePercentExtremes) {
  Prng P(11);
  for (int I = 0; I < 100; ++I) {
    EXPECT_FALSE(P.chancePercent(0));
    EXPECT_TRUE(P.chancePercent(100));
  }
}

TEST(PrngTest, ChancePercentRoughlyCalibrated) {
  Prng P(13);
  int Hits = 0;
  const int N = 20000;
  for (int I = 0; I < N; ++I)
    Hits += P.chancePercent(25);
  EXPECT_NEAR(static_cast<double>(Hits) / N, 0.25, 0.02);
}

TEST(PrngTest, NextUnitInHalfOpenInterval) {
  Prng P(17);
  for (int I = 0; I < 1000; ++I) {
    double U = P.nextUnit();
    EXPECT_GE(U, 0.0);
    EXPECT_LT(U, 1.0);
  }
}

//===----------------------------------------------------------------------===//
// SaturatingCounter
//===----------------------------------------------------------------------===//

TEST(SaturatingCounterTest, StartsAtZero) {
  SaturatingCounter C;
  EXPECT_EQ(C.value(), 0);
}

TEST(SaturatingCounterTest, IncrementCounts) {
  SaturatingCounter C;
  for (int I = 0; I < 5; ++I)
    C.increment();
  EXPECT_EQ(C.value(), 5);
}

TEST(SaturatingCounterTest, SaturatesAtMax) {
  SaturatingCounter C(SaturatingCounter::Max);
  C.increment();
  EXPECT_EQ(C.value(), SaturatingCounter::Max);
}

TEST(SaturatingCounterTest, DecayHalves) {
  SaturatingCounter C(100);
  C.decay();
  EXPECT_EQ(C.value(), 50);
  C.decay();
  EXPECT_EQ(C.value(), 25);
}

TEST(SaturatingCounterTest, DecayOfOddValueRoundsDown) {
  SaturatingCounter C(7);
  C.decay();
  EXPECT_EQ(C.value(), 3);
}

TEST(SaturatingCounterTest, DecayReachesZero) {
  // The paper's footnote: a full history clears in log2(max) shifts.
  SaturatingCounter C(SaturatingCounter::Max);
  for (int I = 0; I < 16; ++I)
    C.decay();
  EXPECT_EQ(C.value(), 0);
}

TEST(SaturatingCounterTest, ResetSetsValue) {
  SaturatingCounter C(9);
  C.reset(2);
  EXPECT_EQ(C.value(), 2);
}

//===----------------------------------------------------------------------===//
// Stats
//===----------------------------------------------------------------------===//

TEST(StatsTest, MeanOfEmptyIsZero) { EXPECT_EQ(mean({}), 0.0); }

TEST(StatsTest, MeanBasic) { EXPECT_DOUBLE_EQ(mean({1, 2, 3, 4}), 2.5); }

TEST(StatsTest, GeomeanBasic) { EXPECT_DOUBLE_EQ(geomean({2, 8}), 4.0); }

TEST(StatsTest, GeomeanOfEmptyIsZero) { EXPECT_EQ(geomean({}), 0.0); }

TEST(StatsTest, StddevOfConstantIsZero) {
  EXPECT_DOUBLE_EQ(stddev({5, 5, 5}), 0.0);
}

TEST(StatsTest, StddevBasic) {
  EXPECT_NEAR(stddev({2, 4, 4, 4, 5, 5, 7, 9}), 2.0, 1e-12);
}

TEST(StatsTest, SafeDivByZero) { EXPECT_EQ(safeDiv(10, 0), 0.0); }

TEST(StatsTest, SafeDivNormal) { EXPECT_DOUBLE_EQ(safeDiv(10, 4), 2.5); }

TEST(StatsTest, RunningStatTracksMinMaxMean) {
  RunningStat R;
  R.add(3);
  R.add(1);
  R.add(8);
  EXPECT_EQ(R.count(), 3u);
  EXPECT_DOUBLE_EQ(R.min(), 1);
  EXPECT_DOUBLE_EQ(R.max(), 8);
  EXPECT_DOUBLE_EQ(R.mean(), 4);
}

TEST(StatsTest, RunningStatEmpty) {
  RunningStat R;
  EXPECT_EQ(R.count(), 0u);
  EXPECT_EQ(R.mean(), 0.0);
}

//===----------------------------------------------------------------------===//
// TablePrinter
//===----------------------------------------------------------------------===//

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter T({"a", "long-header"});
  T.addRow({"wide-cell", "x"});
  std::ostringstream OS;
  T.print(OS);
  std::string Out = OS.str();
  // Header, separator, one row.
  EXPECT_EQ(std::count(Out.begin(), Out.end(), '\n'), 3);
  EXPECT_NE(Out.find("wide-cell"), std::string::npos);
  EXPECT_NE(Out.find("long-header"), std::string::npos);
}

TEST(TablePrinterTest, FmtDecimals) {
  EXPECT_EQ(TablePrinter::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::fmt(5.0, 0), "5");
}

TEST(TablePrinterTest, FmtPercent) {
  EXPECT_EQ(TablePrinter::fmtPercent(0.971, 1), "97.1%");
  EXPECT_EQ(TablePrinter::fmtPercent(1.0, 0), "100%");
}

//===----------------------------------------------------------------------===//
// Ids
//===----------------------------------------------------------------------===//

TEST(IdsTest, PairKeyIsInjective) {
  EXPECT_NE(pairKey(1, 2), pairKey(2, 1));
  EXPECT_EQ(pairKey(7, 9), pairKey(7, 9));
  EXPECT_NE(pairKey(0, 1), pairKey(1, 0));
}

TEST(IdsTest, PairKeyPacksHighLow) {
  EXPECT_EQ(pairKey(1, 0), 1ull << 32);
  EXPECT_EQ(pairKey(0, 1), 1ull);
}

//===----------------------------------------------------------------------===//
// Timer
//===----------------------------------------------------------------------===//

TEST(TimerTest, NonNegativeAndMonotone) {
  Timer T;
  double A = T.seconds();
  double B = T.seconds();
  EXPECT_GE(A, 0.0);
  EXPECT_GE(B, A);
}

//===----------------------------------------------------------------------===//
// ArgParse
//===----------------------------------------------------------------------===//

namespace {

/// Runs \p P over \p Args as if they were argv[1..]; argv[0] is a dummy
/// program name.
bool parseArgs(ArgParser &P, std::vector<std::string> Args) {
  std::vector<std::string> Storage = std::move(Args);
  std::vector<char *> Argv = {const_cast<char *>("test")};
  for (std::string &A : Storage)
    Argv.push_back(A.data());
  return P.parse(static_cast<int>(Argv.size()), Argv.data());
}

} // namespace

TEST(ArgParseTest, TypedOptionsAndFlags) {
  bool Flag = false;
  uint32_t U32 = 0;
  uint64_t U64 = 0;
  double Real = 0;
  std::string Str;
  ArgParser P;
  P.flag("verbose", &Flag)
      .u32Opt("delay", &U32)
      .uintOpt("max-instr", &U64)
      .realOpt("threshold", &Real)
      .strOpt("out", &Str);
  EXPECT_TRUE(parseArgs(P, {"--verbose", "--delay=64", "--max-instr=123456789",
                            "--threshold=0.97", "--out=file.json"}));
  EXPECT_TRUE(Flag);
  EXPECT_EQ(U32, 64u);
  EXPECT_EQ(U64, 123456789ull);
  EXPECT_DOUBLE_EQ(Real, 0.97);
  EXPECT_EQ(Str, "file.json");
}

TEST(ArgParseTest, UnknownOptionRejected) {
  bool Flag = false;
  ArgParser P;
  P.flag("verbose", &Flag);
  EXPECT_FALSE(parseArgs(P, {"--nope"}));
}

TEST(ArgParseTest, FlagRejectsValue) {
  bool Flag = false;
  ArgParser P;
  P.flag("verbose", &Flag);
  EXPECT_FALSE(parseArgs(P, {"--verbose=1"}));
}

TEST(ArgParseTest, ValueOptionRejectsBareName) {
  uint32_t U32 = 0;
  ArgParser P;
  P.u32Opt("delay", &U32);
  EXPECT_FALSE(parseArgs(P, {"--delay"}));
}

TEST(ArgParseTest, MalformedNumbersRejected) {
  uint32_t U32 = 0;
  double Real = 0;
  ArgParser P;
  P.u32Opt("delay", &U32).realOpt("threshold", &Real);
  EXPECT_FALSE(parseArgs(P, {"--delay=abc"}));
  EXPECT_FALSE(parseArgs(P, {"--threshold=x"}));
}

TEST(ArgParseTest, CustomHandlerSeesEmptyAndExplicitValue) {
  std::vector<std::string> Seen;
  ArgParser P;
  P.custom("json", [&Seen](const std::string &V) {
    Seen.push_back(V);
    return true;
  });
  EXPECT_TRUE(parseArgs(P, {"--json"}));
  EXPECT_TRUE(parseArgs(P, {"--json=out.json"}));
  ASSERT_EQ(Seen.size(), 2u);
  EXPECT_EQ(Seen[0], "");
  EXPECT_EQ(Seen[1], "out.json");
}

TEST(ArgParseTest, PositionalsCollectedOnlyWhenRequested) {
  ArgParser Strict;
  bool Flag = false;
  Strict.flag("verbose", &Flag);
  EXPECT_FALSE(parseArgs(Strict, {"input.jasm"}));

  std::vector<std::string> Pos;
  ArgParser Loose;
  Loose.flag("verbose", &Flag).positionals(&Pos);
  EXPECT_TRUE(parseArgs(Loose, {"a.jasm", "--verbose", "b.jasm"}));
  ASSERT_EQ(Pos.size(), 2u);
  EXPECT_EQ(Pos[0], "a.jasm");
  EXPECT_EQ(Pos[1], "b.jasm");
}

TEST(ArgParseTest, DurationSuffixes) {
  double S = -1;
  ArgParser P;
  P.durationOpt("interval", &S);
  // Bare numbers stay seconds, so pre-suffix spellings keep working.
  EXPECT_TRUE(parseArgs(P, {"--interval=30"}));
  EXPECT_DOUBLE_EQ(S, 30.0);
  EXPECT_TRUE(parseArgs(P, {"--interval=250ms"}));
  EXPECT_DOUBLE_EQ(S, 0.25);
  EXPECT_TRUE(parseArgs(P, {"--interval=30s"}));
  EXPECT_DOUBLE_EQ(S, 30.0);
  EXPECT_TRUE(parseArgs(P, {"--interval=5m"}));
  EXPECT_DOUBLE_EQ(S, 300.0);
  EXPECT_TRUE(parseArgs(P, {"--interval=1.5h"}));
  EXPECT_DOUBLE_EQ(S, 5400.0);
  EXPECT_TRUE(parseArgs(P, {"--interval=0"}));
  EXPECT_DOUBLE_EQ(S, 0.0);
}

TEST(ArgParseTest, DurationRejectsGarbage) {
  double S = 0;
  ArgParser P;
  P.durationOpt("interval", &S);
  EXPECT_FALSE(parseArgs(P, {"--interval=-5s"})); // Negative durations.
  EXPECT_FALSE(parseArgs(P, {"--interval=5x"}));  // Unknown suffix.
  EXPECT_FALSE(parseArgs(P, {"--interval=ms"}));  // No number.
  EXPECT_FALSE(parseArgs(P, {"--interval="}));    // Empty value.
  EXPECT_FALSE(parseArgs(P, {"--interval=5 s"})); // Inner whitespace.
}

TEST(ArgParseTest, SizeSuffixes) {
  uint64_t N = 0;
  ArgParser P;
  P.sizeOpt("depth", &N);
  EXPECT_TRUE(parseArgs(P, {"--depth=512"}));
  EXPECT_EQ(N, 512u);
  EXPECT_TRUE(parseArgs(P, {"--depth=64k"}));
  EXPECT_EQ(N, 64u * 1024);
  EXPECT_TRUE(parseArgs(P, {"--depth=64K"})); // Case-insensitive.
  EXPECT_EQ(N, 64u * 1024);
  EXPECT_TRUE(parseArgs(P, {"--depth=1M"}));
  EXPECT_EQ(N, 1u << 20);
  EXPECT_TRUE(parseArgs(P, {"--depth=2G"}));
  EXPECT_EQ(N, 2ull << 30);
}

TEST(ArgParseTest, SizeRejectsGarbageAndOverflow) {
  uint64_t N = 0;
  ArgParser P;
  P.sizeOpt("depth", &N);
  EXPECT_FALSE(parseArgs(P, {"--depth=abc"}));
  EXPECT_FALSE(parseArgs(P, {"--depth=1.5M"})); // Sizes are integral.
  EXPECT_FALSE(parseArgs(P, {"--depth=-1k"}));
  EXPECT_FALSE(parseArgs(P, {"--depth=k"}));
  EXPECT_FALSE(parseArgs(P, {"--depth="}));
  // 2^64 / 2^30 < 2^35: this scale overflows and must be rejected, not
  // silently wrapped.
  EXPECT_FALSE(parseArgs(P, {"--depth=99999999999999999999G"}));
  EXPECT_FALSE(parseArgs(P, {"--depth=18446744073709551615G"}));
}
