//===- tests/tracebuilder_test.cpp - Trace construction pipeline ----------===//

#include "trace/TraceBuilder.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace jtc;

namespace {

/// Test harness: a graph fed with synthetic block streams, warm enough
/// that every node of interest has been decayed (and thus evaluated) at
/// least once.
class TraceBuilderTest : public ::testing::Test {
protected:
  TraceBuilderTest() : Graph(makeConfig()) {}

  static ProfilerConfig makeConfig() {
    ProfilerConfig C;
    C.StartStateDelay = 1;
    C.DecayInterval = 64;
    C.CompletionThreshold = 0.97;
    return C;
  }

  void feed(const std::vector<BlockId> &Pattern, unsigned Times) {
    for (unsigned I = 0; I < Times; ++I)
      for (BlockId B : Pattern)
        Graph.onBlockDispatch(B);
  }

  TraceConfig traceConfig(double Threshold = 0.97) {
    TraceConfig C;
    C.CompletionThreshold = Threshold;
    return C;
  }

  NodeId node(BlockId X, BlockId Y) {
    NodeId N = Graph.findNode(X, Y);
    EXPECT_NE(N, InvalidNodeId) << "(" << X << "," << Y << ")";
    return N;
  }

  BranchCorrelationGraph Graph;
};

} // namespace

//===----------------------------------------------------------------------===//
// Entry points
//===----------------------------------------------------------------------===//

TEST_F(TraceBuilderTest, EntryPointBacktracksStrongChain) {
  // Straight chain 1->2->3->4->5 repeated; entered from 0 occasionally so
  // the chain's head has a cold predecessor.
  feed({0, 1, 2, 3, 4, 5}, 200);
  TraceBuilder B(Graph, traceConfig());
  // A change at (3,4) should backtrack to the chain's start.
  std::vector<NodeId> Entries = B.findEntryPoints(node(3, 4));
  ASSERT_EQ(Entries.size(), 1u);
  // Everything is one cycle here (the pattern repeats), so backtracking
  // walks the whole loop; the entry is *some* node of the cycle.
  EXPECT_NE(std::find(Entries.begin(), Entries.end(), Entries[0]),
            Entries.end());
}

TEST_F(TraceBuilderTest, EntryPointStopsAtWeakPredecessor) {
  // (1,2) is weak (successor alternates 3/4); both (2,3) and (2,4) then
  // funnel into 5 -> 6.
  for (unsigned I = 0; I < 400; ++I) {
    Graph.onBlockDispatch(1);
    Graph.onBlockDispatch(2);
    Graph.onBlockDispatch(I % 2 ? 3 : 4);
    Graph.onBlockDispatch(5);
    Graph.onBlockDispatch(6);
  }
  TraceBuilder B(Graph, traceConfig());
  // Backtracking from (5,6): preds are (3,5) and (4,5), whose preds
  // (2,3)/(2,4) are unique (always -> 5), whose pred (1,2) is weak. So
  // the entries are the two post-branch nodes.
  std::vector<NodeId> Entries = B.findEntryPoints(node(5, 6));
  EXPECT_EQ(Entries.size(), 2u);
  for (NodeId E : Entries)
    EXPECT_EQ(Graph.node(E).from(), 2u)
        << "entries start right after the weak branch";
}

TEST_F(TraceBuilderTest, PureCycleFallsBackToChangedNode) {
  feed({1, 2, 3}, 300); // pure 3-cycle, all unique
  TraceBuilder B(Graph, traceConfig());
  NodeId Changed = node(2, 3);
  std::vector<NodeId> Entries = B.findEntryPoints(Changed);
  ASSERT_EQ(Entries.size(), 1u);
  EXPECT_EQ(Entries[0], Changed);
}

//===----------------------------------------------------------------------===//
// Path walking
//===----------------------------------------------------------------------===//

TEST_F(TraceBuilderTest, WalkStopsAtWeakNode) {
  // Chain 1..5 then a coin flip at (4,5).
  for (unsigned I = 0; I < 400; ++I) {
    Graph.onBlockDispatch(1);
    Graph.onBlockDispatch(2);
    Graph.onBlockDispatch(3);
    Graph.onBlockDispatch(4);
    Graph.onBlockDispatch(5);
    Graph.onBlockDispatch(I % 2 ? 6 : 7);
  }
  TraceBuilder B(Graph, traceConfig());
  TraceBuilder::Path P = B.walkPath(node(1, 2));
  ASSERT_FALSE(P.Nodes.empty());
  EXPECT_FALSE(P.EndsInLoop);
  // Path: (1,2) (2,3) (3,4) (4,5) -- the weak node included, then stop.
  EXPECT_EQ(P.Nodes.back(), node(4, 5));
  EXPECT_EQ(P.Nodes.size(), 4u);
}

TEST_F(TraceBuilderTest, WalkDetectsLoop) {
  feed({1, 2, 3, 4}, 300); // pure cycle
  TraceBuilder B(Graph, traceConfig());
  TraceBuilder::Path P = B.walkPath(node(1, 2));
  EXPECT_TRUE(P.EndsInLoop);
  EXPECT_EQ(P.LoopStart, 0u) << "the walk returned to its starting node";
  EXPECT_EQ(P.Nodes.size(), 4u);
}

TEST_F(TraceBuilderTest, WalkBoundedByMaxPathNodes) {
  feed({1, 2, 3, 4}, 300);
  TraceConfig C = traceConfig();
  C.MaxPathNodes = 2;
  TraceBuilder B(Graph, C);
  TraceBuilder::Path P = B.walkPath(node(1, 2));
  EXPECT_LE(P.Nodes.size(), 2u);
}

//===----------------------------------------------------------------------===//
// Cutting
//===----------------------------------------------------------------------===//

TEST_F(TraceBuilderTest, CutKeepsHighProbabilityChainWhole) {
  feed({1, 2, 3, 4, 5, 6}, 300);
  TraceBuilder B(Graph, traceConfig());
  TraceBuilder::Path P = B.walkPath(node(1, 2));
  std::vector<TraceCandidate> Cands = B.cut(P.Nodes);
  ASSERT_EQ(Cands.size(), 1u);
  EXPECT_GE(Cands[0].Blocks.size(), 2u);
  EXPECT_GE(Cands[0].Completion, 0.97);
  EXPECT_EQ(Cands[0].EntryFrom, 1u);
  EXPECT_EQ(Cands[0].Blocks.front(), 2u);
}

TEST_F(TraceBuilderTest, CutSplitsAtLowProbabilityEdge) {
  // Build two strong runs joined by an 80% edge: 1..3 then mostly 4..6.
  for (unsigned I = 0; I < 500; ++I) {
    Graph.onBlockDispatch(1);
    Graph.onBlockDispatch(2);
    Graph.onBlockDispatch(3);
    if (I % 5 != 0) {
      Graph.onBlockDispatch(4);
      Graph.onBlockDispatch(5);
      Graph.onBlockDispatch(6);
    } else {
      Graph.onBlockDispatch(7);
    }
  }
  TraceBuilder B(Graph, traceConfig(0.97));
  // Hand the cutter the full chain across the 80% edge.
  std::vector<NodeId> Nodes = {node(1, 2), node(2, 3), node(3, 4), node(4, 5),
                               node(5, 6)};
  std::vector<TraceCandidate> Cands = B.cut(Nodes);
  ASSERT_EQ(Cands.size(), 2u) << "the 80% edge must split the trace";
  EXPECT_EQ(Cands[0].Blocks.back(), 3u);
  EXPECT_EQ(Cands[1].Blocks.front(), 4u);
  for (const TraceCandidate &C : Cands)
    EXPECT_GE(C.Completion, 0.97 - 1e-9);
}

TEST_F(TraceBuilderTest, CutRespectsMaxTraceBlocks) {
  feed({1, 2, 3, 4, 5, 6, 7, 8}, 300);
  TraceConfig C = traceConfig();
  C.MaxTraceBlocks = 3;
  TraceBuilder B(Graph, C);
  TraceBuilder::Path P = B.walkPath(node(1, 2));
  for (const TraceCandidate &Cand : B.cut(P.Nodes))
    EXPECT_LE(Cand.Blocks.size(), 3u);
}

TEST_F(TraceBuilderTest, CutDropsSingleBlockRemnants) {
  // A single weak node cannot anchor a >= 2 block trace.
  for (unsigned I = 0; I < 400; ++I) {
    Graph.onBlockDispatch(1);
    Graph.onBlockDispatch(2);
    Graph.onBlockDispatch(I % 2 ? 3 : 4);
  }
  TraceBuilder B(Graph, traceConfig());
  std::vector<TraceCandidate> Cands = B.cut({node(1, 2)});
  EXPECT_TRUE(Cands.empty());
}

TEST_F(TraceBuilderTest, CutOfEmptyPathIsEmpty) {
  TraceBuilder B(Graph, traceConfig());
  EXPECT_TRUE(B.cut({}).empty());
}

//===----------------------------------------------------------------------===//
// Full pipeline (build)
//===----------------------------------------------------------------------===//

TEST_F(TraceBuilderTest, BuildUnrollsLoopOnce) {
  feed({1, 2, 3, 4}, 500); // 4-cycle, all unique edges
  TraceBuilder B(Graph, traceConfig());
  TraceBuilder::BuildResult R = B.build(node(1, 2));
  ASSERT_FALSE(R.Candidates.empty());
  // The loop body has 4 blocks; unrolled once it yields 8.
  size_t Longest = 0;
  for (const TraceCandidate &C : R.Candidates)
    Longest = std::max(Longest, C.Blocks.size());
  EXPECT_EQ(Longest, 8u) << "loop body must be unrolled exactly once";
}

TEST_F(TraceBuilderTest, BuildVisitsEveryPathNode) {
  feed({1, 2, 3, 4, 5, 6}, 300);
  TraceBuilder B(Graph, traceConfig());
  TraceBuilder::BuildResult R = B.build(node(3, 4));
  EXPECT_FALSE(R.Visited.empty());
  // All visited nodes exist in the graph.
  for (NodeId N : R.Visited)
    EXPECT_LT(N, Graph.numNodes());
}

TEST_F(TraceBuilderTest, BuildFromColdNodeYieldsNothing) {
  // A pair observed once: hot (delay 1) but never evaluated (no decay),
  // so it cannot be extended and no >= 2 block trace exists.
  Graph.onBlockDispatch(1);
  Graph.onBlockDispatch(2);
  Graph.onBlockDispatch(3);
  TraceBuilder B(Graph, traceConfig());
  TraceBuilder::BuildResult R = B.build(node(1, 2));
  EXPECT_TRUE(R.Candidates.empty());
}

TEST_F(TraceBuilderTest, CandidatesNeverDipBelowThreshold) {
  // Parameter sweep: whatever the threshold, an installed candidate's
  // expected completion honours it.
  for (double T : {1.0, 0.99, 0.98, 0.97, 0.95}) {
    BranchCorrelationGraph G(makeConfig());
    for (unsigned I = 0; I < 2000; ++I) {
      G.onBlockDispatch(1);
      G.onBlockDispatch(2);
      G.onBlockDispatch(I % 50 == 0 ? 9 : 3);
      G.onBlockDispatch(1);
    }
    TraceBuilder B(G, traceConfig(T));
    NodeId N = G.findNode(1, 2);
    ASSERT_NE(N, InvalidNodeId);
    for (const TraceCandidate &C : B.build(N).Candidates)
      EXPECT_GE(C.Completion, T - 1e-9) << "threshold " << T;
  }
}
