//===- tests/tracecache_test.cpp - Trace cache installation/replacement ---===//

#include "trace/TraceCache.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace jtc;

namespace {

class TraceCacheTest : public ::testing::Test {
protected:
  TraceCacheTest()
      : Graph(profConfig()),
        Cache(Graph, traceConfig(), [](BlockId) { return 4; }) {
    Graph.setSink(&Cache);
  }

  static ProfilerConfig profConfig() {
    ProfilerConfig C;
    C.StartStateDelay = 1;
    C.DecayInterval = 64;
    C.CompletionThreshold = 0.97;
    return C;
  }

  static TraceConfig traceConfig() {
    TraceConfig C;
    C.CompletionThreshold = 0.97;
    return C;
  }

  void feed(const std::vector<BlockId> &Pattern, unsigned Times) {
    for (unsigned I = 0; I < Times; ++I)
      for (BlockId B : Pattern)
        Graph.onBlockDispatch(B);
  }

  BranchCorrelationGraph Graph;
  TraceCache Cache;
};

} // namespace

TEST_F(TraceCacheTest, HotLoopProducesALiveTrace) {
  feed({1, 2, 3, 4}, 200);
  EXPECT_GT(Cache.numLiveTraces(), 0u);
  EXPECT_GT(Cache.stats().SignalsHandled, 0u);
  EXPECT_GT(Cache.stats().TracesConstructed, 0u);
}

TEST_F(TraceCacheTest, FindTraceMatchesEntryPair) {
  feed({1, 2, 3, 4}, 200);
  // Some rotation of the cycle is installed; find it via its entry pair.
  const Trace *Found = nullptr;
  const BlockId Cycle[] = {1, 2, 3, 4};
  for (unsigned I = 0; I < 4 && !Found; ++I)
    Found = Cache.findTrace(Cycle[I], Cycle[(I + 1) % 4]);
  ASSERT_NE(Found, nullptr);
  EXPECT_TRUE(Found->Alive);
  EXPECT_GE(Found->Blocks.size(), 2u);
  EXPECT_EQ(Found->Blocks.size() * 4, Found->InstrCount)
      << "instruction count uses the supplied block-size callback";
}

TEST_F(TraceCacheTest, FindTraceMissReturnsNull) {
  feed({1, 2, 3, 4}, 200);
  EXPECT_EQ(Cache.findTrace(77, 78), nullptr);
}

TEST_F(TraceCacheTest, IdenticalRebuildsAreReused) {
  feed({1, 2, 3, 4}, 200);
  NodeId N = Graph.findNode(1, 2);
  ASSERT_NE(N, InvalidNodeId);
  // Two identical rebuilds from the same changed node: the first may
  // construct its rotation, the second must hash-cons everything.
  Cache.onStateChange(N);
  uint64_t BuiltBefore = Cache.stats().TracesConstructed;
  Cache.onStateChange(N);
  EXPECT_EQ(Cache.stats().TracesConstructed, BuiltBefore)
      << "identical candidates must hash-cons, not duplicate";
  EXPECT_GT(Cache.stats().TracesReused, 0u);
}

TEST_F(TraceCacheTest, BehaviourChangeReplacesTraces) {
  // Phase 1: cycle through 3. Phase 2: same entry pair now goes to 5.
  feed({1, 2, 3}, 400);
  size_t LiveBefore = Cache.numLiveTraces();
  ASSERT_GT(LiveBefore, 0u);
  feed({1, 2, 5}, 800);
  EXPECT_GT(Cache.stats().TracesReplaced + Cache.stats().TracesInvalidated,
            0u);
  // A trace for the new behaviour exists and contains block 5.
  bool FoundNew = false;
  for (const Trace &T : Cache.traces()) {
    if (!T.Alive)
      continue;
    for (BlockId B : T.Blocks)
      FoundNew |= B == 5;
  }
  EXPECT_TRUE(FoundNew);
}

TEST_F(TraceCacheTest, CyclicFreshTraceRetiresInteriorFragment) {
  // Warm a partial structure first, then settle into a pure cycle, and
  // finally force one rebuild per cycle node -- the state right after a
  // region's rebuild must contain no trace keyed inside the fresh cyclic
  // trace (paper step 3 reconstructs all affected entries).
  feed({1, 2, 3, 9}, 100); // phase 1: the cycle detours through 9
  feed({1, 2, 3}, 1500);   // phase 2: a pure cycle
  Cache.onStateChange(Graph.findNode(1, 2));
  Cache.onStateChange(Graph.findNode(2, 3));
  Cache.onStateChange(Graph.findNode(3, 1));
  // Count live traces whose entry pair is interior to another live trace.
  const auto &All = Cache.traces();
  unsigned Shadowed = 0;
  for (const Trace &A : All) {
    if (!A.Alive)
      continue;
    for (const Trace &B : All) {
      if (!B.Alive || A.Id == B.Id || B.EntryFrom != B.Blocks.back())
        continue;
      for (size_t I = 0; I + 1 < B.Blocks.size(); ++I)
        if (B.Blocks[I] == A.EntryFrom && B.Blocks[I + 1] == A.Blocks[0])
          ++Shadowed;
    }
  }
  EXPECT_EQ(Shadowed, 0u)
      << "no live trace may be keyed inside a live cyclic trace";
}

TEST_F(TraceCacheTest, StatsCountCandidates) {
  feed({1, 2, 3, 4, 5}, 300);
  const TraceCache::CacheStats &S = Cache.stats();
  EXPECT_GE(S.CandidatesSeen, S.TracesConstructed + S.TracesReused);
}

TEST_F(TraceCacheTest, DumpShowsLiveTraces) {
  feed({1, 2, 3, 4}, 200);
  std::ostringstream OS;
  Cache.dump(OS);
  std::string Out = OS.str();
  EXPECT_NE(Out.find("trace cache:"), std::string::npos);
  EXPECT_NE(Out.find("completion="), std::string::npos);
}

TEST_F(TraceCacheTest, NoSignalsNoTraces) {
  // Below the decay interval nothing is ever evaluated.
  feed({1, 2, 3, 4}, 10);
  EXPECT_EQ(Cache.numLiveTraces(), 0u);
  EXPECT_EQ(Cache.stats().SignalsHandled, 0u);
}
