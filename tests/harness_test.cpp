//===- tests/harness_test.cpp - Experiment harness and VmStats ------------===//

#include "harness/Experiment.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace jtc;

//===----------------------------------------------------------------------===//
// VmStats derived values
//===----------------------------------------------------------------------===//

TEST(VmStatsTest, DerivedValuesMatchDefinitions) {
  VmStats S;
  S.Instructions = 1000;
  S.BlocksExecuted = 200;
  S.BlockDispatches = 80;
  S.TraceDispatches = 30;
  S.TracesCompleted = 24;
  S.BlocksInCompletedTraces = 120;
  S.InstructionsInCompletedTraces = 600;
  S.InstructionsInTraces = 700;
  S.Signals = 4;
  S.TracesConstructed = 6;

  EXPECT_EQ(S.totalDispatches(), 110u);
  EXPECT_DOUBLE_EQ(S.avgCompletedTraceLength(), 5.0);
  EXPECT_DOUBLE_EQ(S.completedCoverage(), 0.6);
  EXPECT_DOUBLE_EQ(S.traceCoverage(), 0.7);
  EXPECT_DOUBLE_EQ(S.completionRate(), 0.8);
  EXPECT_DOUBLE_EQ(S.dispatchesPerSignal(), 50.0);
  EXPECT_DOUBLE_EQ(S.dispatchesPerTraceEvent(), 20.0);
}

TEST(VmStatsTest, ZeroDenominatorsAreSafe) {
  VmStats S;
  EXPECT_EQ(S.avgCompletedTraceLength(), 0.0);
  EXPECT_EQ(S.completedCoverage(), 0.0);
  EXPECT_EQ(S.traceCoverage(), 0.0);
  EXPECT_EQ(S.completionRate(), 0.0);
  EXPECT_EQ(S.dispatchesPerSignal(), 0.0);
  EXPECT_EQ(S.dispatchesPerTraceEvent(), 0.0);
}

TEST(VmStatsTest, PrintMentionsEveryDependentValue) {
  VmStats S;
  S.Instructions = 42;
  std::ostringstream OS;
  S.print(OS);
  std::string Out = OS.str();
  for (const char *Key :
       {"instructions", "trace dispatches", "avg completed trace length",
        "completion rate", "state change signals", "dispatches per signal",
        "dispatches per trace event"})
    EXPECT_NE(Out.find(Key), std::string::npos) << Key;
}

//===----------------------------------------------------------------------===//
// Harness
//===----------------------------------------------------------------------===//

TEST(HarnessTest, StandardSweepsMatchThePaper) {
  EXPECT_EQ(standardThresholds(),
            (std::vector<double>{1.00, 0.99, 0.98, 0.97, 0.95}));
  EXPECT_EQ(standardDelays(), (std::vector<uint32_t>{1, 64, 4096}));
}

TEST(HarnessTest, RunWorkloadProducesConsistentStats) {
  const WorkloadInfo &W = *findWorkload("scimark");
  VmStats S = runWorkload(W, VmOptions(), std::max(1u, W.DefaultScale / 50));
  EXPECT_GT(S.Instructions, 0u);
  EXPECT_GT(S.BlocksExecuted, 0u);
  EXPECT_EQ(S.BlocksExecuted, S.BlockDispatches + S.BlocksInTraces);
  EXPECT_GT(S.GraphNodes, 0u);
}

TEST(HarnessTest, ScaleOverrideChangesRunLength) {
  const WorkloadInfo &W = *findWorkload("compress");
  VmStats Small = runWorkload(W, VmOptions(), 1);
  VmStats Large = runWorkload(W, VmOptions(), 3);
  EXPECT_GT(Large.Instructions, Small.Instructions);
}

TEST(HarnessTest, OverheadSampleArithmetic) {
  OverheadSample S;
  S.PlainSeconds = 1.0;
  S.ProfiledSeconds = 1.5;
  S.Dispatches = 2000000;
  EXPECT_DOUBLE_EQ(S.overheadPerMillionDispatches(), 0.25);
  OverheadSample Zero;
  EXPECT_EQ(Zero.overheadPerMillionDispatches(), 0.0);
}
