//===- tests/runtime_test.cpp - Heap, traps, Machine semantics ------------===//

#include "runtime/Machine.h"

#include "TestPrograms.h"
#include "interp/InstructionInterpreter.h"

#include <gtest/gtest.h>

#include <limits>

using namespace jtc;

//===----------------------------------------------------------------------===//
// Heap
//===----------------------------------------------------------------------===//

TEST(HeapTest, NullIsNotLive) {
  Heap H;
  EXPECT_FALSE(H.isLive(Heap::Null));
  EXPECT_FALSE(H.isLive(-1));
  EXPECT_FALSE(H.isLive(1)); // nothing allocated yet
}

TEST(HeapTest, ObjectAllocationAndFields) {
  Heap H;
  int64_t R = H.allocObject(7, 3);
  ASSERT_TRUE(H.isLive(R));
  EXPECT_EQ(H.classOf(R), 7u);
  EXPECT_EQ(H.slotCount(R), 3u);
  EXPECT_EQ(H.load(R, 0), 0);
  H.store(R, 2, 42);
  EXPECT_EQ(H.load(R, 2), 42);
}

TEST(HeapTest, ArrayAllocation) {
  Heap H;
  int64_t R = H.allocArray(5);
  ASSERT_TRUE(H.isLive(R));
  EXPECT_EQ(H.classOf(R), Heap::ArrayClass);
  EXPECT_EQ(H.slotCount(R), 5u);
}

TEST(HeapTest, ZeroLengthArrayIsLive) {
  Heap H;
  int64_t R = H.allocArray(0);
  ASSERT_TRUE(H.isLive(R));
  EXPECT_EQ(H.slotCount(R), 0u);
}

TEST(HeapTest, DistinctReferences) {
  Heap H;
  int64_t A = H.allocObject(0, 1);
  int64_t B = H.allocObject(0, 1);
  EXPECT_NE(A, B);
  H.store(A, 0, 1);
  H.store(B, 0, 2);
  EXPECT_EQ(H.load(A, 0), 1);
  EXPECT_EQ(H.load(B, 0), 2);
}

TEST(HeapTest, CellBudgetExhaustionReturnsNull) {
  Heap H(/*MaxCells=*/2);
  EXPECT_NE(H.allocArray(1), Heap::Null);
  EXPECT_NE(H.allocObject(0, 1), Heap::Null);
  EXPECT_EQ(H.allocArray(1), Heap::Null);
  EXPECT_EQ(H.allocObject(0, 1), Heap::Null);
}

TEST(HeapTest, ClearDropsEverything) {
  Heap H;
  int64_t R = H.allocArray(3);
  H.clear();
  EXPECT_FALSE(H.isLive(R));
  EXPECT_EQ(H.size(), 0u);
}

//===----------------------------------------------------------------------===//
// Trap names
//===----------------------------------------------------------------------===//

TEST(TrapTest, AllKindsHaveNames) {
  for (uint8_t K = 0; K <= static_cast<uint8_t>(TrapKind::BadVirtualDispatch);
       ++K) {
    std::string Name = trapName(static_cast<TrapKind>(K));
    EXPECT_FALSE(Name.empty());
    EXPECT_NE(Name, "unknown trap");
  }
}

//===----------------------------------------------------------------------===//
// Machine: opcode-level semantics via execOne
//===----------------------------------------------------------------------===//

namespace {

/// Fixture providing a machine with a single trivial frame so that
/// execOne can be driven directly.
class MachineSemantics : public ::testing::Test {
protected:
  MachineSemantics() : M(makeModule()), Mach(M) { Mach.start(0); }

  static Module makeModule() {
    Module M;
    Method Main;
    Main.Name = "main";
    Main.NumLocals = 4;
    Main.Code = {Instruction(Opcode::Halt)};
    M.Methods.push_back(std::move(Main));
    Class C;
    C.Name = "C";
    C.NumFields = 2;
    M.Classes.push_back(std::move(C));
    return M;
  }

  /// Runs one binary opcode over (A, B) and returns the result.
  int64_t binop(Opcode Op, int64_t A, int64_t B) {
    Mach.push(A);
    Mach.push(B);
    Effect E = Mach.execOne(Instruction(Op));
    EXPECT_EQ(E.Kind, EffectKind::Next);
    return Mach.pop();
  }

  Module M;
  Machine Mach;
};

} // namespace

TEST_F(MachineSemantics, IntegerArithmetic) {
  EXPECT_EQ(binop(Opcode::Iadd, 2, 3), 5);
  EXPECT_EQ(binop(Opcode::Isub, 2, 3), -1);
  EXPECT_EQ(binop(Opcode::Imul, -4, 6), -24);
  EXPECT_EQ(binop(Opcode::Idiv, 7, 2), 3);
  EXPECT_EQ(binop(Opcode::Idiv, -7, 2), -3);
  EXPECT_EQ(binop(Opcode::Irem, 7, 3), 1);
  EXPECT_EQ(binop(Opcode::Irem, -7, 3), -1);
  EXPECT_EQ(binop(Opcode::Iand, 0b1100, 0b1010), 0b1000);
  EXPECT_EQ(binop(Opcode::Ior, 0b1100, 0b1010), 0b1110);
  EXPECT_EQ(binop(Opcode::Ixor, 0b1100, 0b1010), 0b0110);
}

TEST_F(MachineSemantics, OverflowWrapsInstead0fUB) {
  int64_t Max = std::numeric_limits<int64_t>::max();
  EXPECT_EQ(binop(Opcode::Iadd, Max, 1), std::numeric_limits<int64_t>::min());
  EXPECT_EQ(binop(Opcode::Imul, Max, 2), -2);
  int64_t Min = std::numeric_limits<int64_t>::min();
  EXPECT_EQ(binop(Opcode::Isub, Min, 1), Max);
}

TEST_F(MachineSemantics, DivMinByMinusOneIsDefined) {
  int64_t Min = std::numeric_limits<int64_t>::min();
  EXPECT_EQ(binop(Opcode::Idiv, Min, -1), Min);
  EXPECT_EQ(binop(Opcode::Irem, Min, -1), 0);
}

TEST_F(MachineSemantics, ShiftCountsAreMasked) {
  EXPECT_EQ(binop(Opcode::Ishl, 1, 64), 1);   // 64 & 63 == 0
  EXPECT_EQ(binop(Opcode::Ishl, 1, 65), 2);   // 65 & 63 == 1
  EXPECT_EQ(binop(Opcode::Ishr, -8, 1), -4);  // arithmetic
  EXPECT_EQ(binop(Opcode::Iushr, -1, 60), 15); // logical
}

TEST_F(MachineSemantics, Negation) {
  Mach.push(5);
  Mach.execOne(Instruction(Opcode::Ineg));
  EXPECT_EQ(Mach.pop(), -5);
  Mach.push(std::numeric_limits<int64_t>::min());
  Mach.execOne(Instruction(Opcode::Ineg));
  EXPECT_EQ(Mach.pop(), std::numeric_limits<int64_t>::min());
}

TEST_F(MachineSemantics, StackManipulation) {
  Mach.push(1);
  Mach.push(2);
  Mach.execOne(Instruction(Opcode::Swap));
  EXPECT_EQ(Mach.pop(), 1);
  EXPECT_EQ(Mach.pop(), 2);

  Mach.push(9);
  Mach.execOne(Instruction(Opcode::Dup));
  EXPECT_EQ(Mach.pop(), 9);
  EXPECT_EQ(Mach.pop(), 9);

  Mach.push(7);
  Mach.execOne(Instruction(Opcode::Pop));
  EXPECT_EQ(Mach.operandDepth(), 0u);
}

TEST_F(MachineSemantics, LocalsViaOpcodes) {
  Mach.execOne(Instruction(Opcode::Iconst, 13));
  Mach.execOne(Instruction(Opcode::Istore, 2));
  EXPECT_EQ(Mach.local(2), 13);
  Mach.execOne(Instruction(Opcode::Iinc, 2, 4));
  EXPECT_EQ(Mach.local(2), 17);
  Mach.execOne(Instruction(Opcode::Iload, 2));
  EXPECT_EQ(Mach.pop(), 17);
}

TEST_F(MachineSemantics, ConditionalBranchEffects) {
  Mach.push(0);
  EXPECT_EQ(Mach.execOne(Instruction(Opcode::IfEq, 5)).Kind, EffectKind::Jump);
  Mach.push(1);
  EXPECT_EQ(Mach.execOne(Instruction(Opcode::IfEq, 5)).Kind, EffectKind::Next);
  Mach.push(-2);
  Effect E = Mach.execOne(Instruction(Opcode::IfLt, 9));
  EXPECT_EQ(E.Kind, EffectKind::Jump);
  EXPECT_EQ(E.Target, 9u);
  Mach.push(3);
  Mach.push(3);
  EXPECT_EQ(Mach.execOne(Instruction(Opcode::IfIcmpEq, 4)).Kind,
            EffectKind::Jump);
  Mach.push(3);
  Mach.push(4);
  EXPECT_EQ(Mach.execOne(Instruction(Opcode::IfIcmpGt, 4)).Kind,
            EffectKind::Next);
}

TEST_F(MachineSemantics, TrapsOnDivisionByZero) {
  Mach.push(1);
  Mach.push(0);
  EXPECT_EQ(Mach.execOne(Instruction(Opcode::Idiv)).Kind, EffectKind::Trap);
  EXPECT_EQ(Mach.trap(), TrapKind::DivideByZero);
}

TEST_F(MachineSemantics, TrapsOnNullFieldAccess) {
  Mach.push(Heap::Null);
  EXPECT_EQ(Mach.execOne(Instruction(Opcode::GetField, 0)).Kind,
            EffectKind::Trap);
  EXPECT_EQ(Mach.trap(), TrapKind::NullReference);
}

TEST_F(MachineSemantics, TrapsOnForgedReference) {
  Mach.push(123456); // no such cell
  EXPECT_EQ(Mach.execOne(Instruction(Opcode::ArrayLength)).Kind,
            EffectKind::Trap);
  EXPECT_EQ(Mach.trap(), TrapKind::NullReference);
}

TEST_F(MachineSemantics, TrapsOnFieldIndexOutOfRange) {
  Mach.execOne(Instruction(Opcode::New, 0)); // class C: 2 fields
  EXPECT_EQ(Mach.execOne(Instruction(Opcode::GetField, 5)).Kind,
            EffectKind::Trap);
  EXPECT_EQ(Mach.trap(), TrapKind::FieldBounds);
}

TEST_F(MachineSemantics, TrapsOnArrayBounds) {
  Mach.push(3);
  Mach.execOne(Instruction(Opcode::NewArray));
  Mach.execOne(Instruction(Opcode::Dup));
  Mach.push(3);
  EXPECT_EQ(Mach.execOne(Instruction(Opcode::Iaload)).Kind, EffectKind::Trap);
  EXPECT_EQ(Mach.trap(), TrapKind::ArrayBounds);
}

TEST_F(MachineSemantics, TrapsOnNegativeArraySize) {
  Mach.push(-1);
  EXPECT_EQ(Mach.execOne(Instruction(Opcode::NewArray)).Kind,
            EffectKind::Trap);
  EXPECT_EQ(Mach.trap(), TrapKind::NegativeArraySize);
}

TEST_F(MachineSemantics, FieldRoundTrip) {
  Mach.execOne(Instruction(Opcode::New, 0));
  Mach.execOne(Instruction(Opcode::Dup));
  Mach.push(77);
  EXPECT_EQ(Mach.execOne(Instruction(Opcode::PutField, 1)).Kind,
            EffectKind::Next);
  EXPECT_EQ(Mach.execOne(Instruction(Opcode::GetField, 1)).Kind,
            EffectKind::Next);
  EXPECT_EQ(Mach.pop(), 77);
}

TEST_F(MachineSemantics, ArrayRoundTripAndLength) {
  Mach.push(4);
  Mach.execOne(Instruction(Opcode::NewArray));
  int64_t Ref = Mach.pop();
  Mach.push(Ref);
  Mach.push(2);
  Mach.push(55);
  EXPECT_EQ(Mach.execOne(Instruction(Opcode::Iastore)).Kind, EffectKind::Next);
  Mach.push(Ref);
  Mach.push(2);
  Mach.execOne(Instruction(Opcode::Iaload));
  EXPECT_EQ(Mach.pop(), 55);
  Mach.push(Ref);
  Mach.execOne(Instruction(Opcode::ArrayLength));
  EXPECT_EQ(Mach.pop(), 4);
}

TEST_F(MachineSemantics, IprintAppendsToOutput) {
  Mach.push(1);
  Mach.execOne(Instruction(Opcode::Iprint));
  Mach.push(2);
  Mach.execOne(Instruction(Opcode::Iprint));
  EXPECT_EQ(Mach.output(), (std::vector<int64_t>{1, 2}));
}

//===----------------------------------------------------------------------===//
// Machine: frames
//===----------------------------------------------------------------------===//

TEST(MachineFrames, ArgumentsMoveIntoCalleeLocals) {
  Module M;
  Method Main;
  Main.Name = "main";
  Main.NumLocals = 0;
  Main.Code = {Instruction(Opcode::Halt)};
  M.Methods.push_back(Main);
  Method F;
  F.Name = "f";
  F.NumArgs = 2;
  F.NumLocals = 3;
  F.ReturnsValue = true;
  F.Code = {Instruction(Opcode::Iconst, 0), Instruction(Opcode::Ireturn)};
  M.Methods.push_back(F);

  Machine Mach(M);
  Mach.start(0);
  Mach.push(10);
  Mach.push(20);
  ASSERT_TRUE(Mach.pushFrame(1, /*ReturnPc=*/5));
  EXPECT_EQ(Mach.currentMethodId(), 1u);
  EXPECT_EQ(Mach.local(0), 10); // deepest argument first
  EXPECT_EQ(Mach.local(1), 20);
  EXPECT_EQ(Mach.local(2), 0); // non-arg locals zeroed
  EXPECT_EQ(Mach.operandDepth(), 0u) << "callee starts with empty stack";

  Mach.push(99); // return value
  Machine::PopInfo Info = Mach.popFrame(/*HasValue=*/true);
  EXPECT_FALSE(Info.BottomFrame);
  EXPECT_EQ(Info.ReturnPc, 5u);
  EXPECT_EQ(Mach.currentMethodId(), 0u);
  EXPECT_EQ(Mach.pop(), 99) << "return value lands on the caller stack";
}

TEST(MachineFrames, BottomFramePop) {
  Module M;
  Method Main;
  Main.Name = "main";
  Main.Code = {Instruction(Opcode::Return)};
  M.Methods.push_back(Main);
  Machine Mach(M);
  Mach.start(0);
  Machine::PopInfo Info = Mach.popFrame(false);
  EXPECT_TRUE(Info.BottomFrame);
  EXPECT_FALSE(Mach.hasFrames());
}

TEST(MachineFrames, FrameBudgetTrapsAsStackOverflow) {
  Module M;
  Method Main;
  Main.Name = "main";
  Main.Code = {Instruction(Opcode::Halt)};
  M.Methods.push_back(Main);
  Machine Mach(M, /*MaxFrames=*/3);
  Mach.start(0);
  EXPECT_TRUE(Mach.pushFrame(0, 0));
  EXPECT_TRUE(Mach.pushFrame(0, 0));
  EXPECT_FALSE(Mach.pushFrame(0, 0));
  EXPECT_EQ(Mach.trap(), TrapKind::StackOverflow);
}

TEST(MachineFrames, RunawayRecursionTrapsViaInterpreter) {
  // fact(-1) recurses forever; the frame budget must stop it.
  Module M = testprog::recursiveFactorial(5);
  // Patch main to pass a huge N instead.
  M.Methods[1].Code[0] = Instruction(Opcode::Iconst, 1 << 30);
  Machine Mach(M, /*MaxFrames=*/64);
  RunResult R = runInstructions(Mach);
  EXPECT_EQ(R.Status, RunStatus::Trapped);
  EXPECT_EQ(R.Trap, TrapKind::StackOverflow);
}

TEST(MachineFrames, ResetClearsState) {
  Module M = testprog::countingLoop(5);
  Machine Mach(M);
  runInstructions(Mach);
  EXPECT_FALSE(Mach.output().empty());
  Mach.reset();
  EXPECT_TRUE(Mach.output().empty());
  EXPECT_FALSE(Mach.hasFrames());
  EXPECT_EQ(Mach.trap(), TrapKind::None);
}
