//===- tests/tracevm_test.cpp - The trace-dispatching VM ------------------===//

#include "vm/TraceVM.h"

#include "TestPrograms.h"
#include "interp/InstructionInterpreter.h"

#include <gtest/gtest.h>

using namespace jtc;

namespace {

VmOptions defaultOptions() {
  return VmOptions().startStateDelay(64).completionThreshold(0.97);
}

} // namespace

TEST(TraceVmTest, SemanticsUnchangedByTraceDispatch) {
  // The trace cache is an execution accelerator; observable behaviour
  // must be identical to the plain interpreter.
  const Module Programs[] = {
      testprog::countingLoop(5000), testprog::recursiveFactorial(10),
      testprog::virtualDispatch(),  testprog::switchProgram(),
      testprog::arraySquares(64),   testprog::hotLoop(20000),
  };
  for (const Module &M : Programs) {
    Machine Plain(M);
    RunResult R1 = runInstructions(Plain);
    PreparedModule PM(M);
    TraceVM VM(PM, defaultOptions());
    RunResult R2 = VM.run();
    EXPECT_EQ(R1.Status, R2.Status);
    EXPECT_EQ(Plain.output(), VM.machine().output());
    EXPECT_EQ(R1.Instructions, R2.Instructions);
  }
}

TEST(TraceVmTest, HotLoopGetsTraced) {
  Module M = testprog::hotLoop(50000);
  PreparedModule PM(M);
  TraceVM VM(PM, defaultOptions());
  VM.run();
  const VmStats &S = VM.stats();
  EXPECT_GT(S.TraceDispatches, 0u);
  EXPECT_GT(S.TracesCompleted, 0u);
  EXPECT_GT(S.completedCoverage(), 0.5)
      << "a hot biased loop should mostly run from the trace cache";
  EXPECT_GT(S.avgCompletedTraceLength(), 2.0);
}

TEST(TraceVmTest, StatsIdentitiesHold) {
  Module M = testprog::hotLoop(50000);
  PreparedModule PM(M);
  TraceVM VM(PM, defaultOptions());
  RunResult R = VM.run();
  const VmStats &S = VM.stats();

  EXPECT_EQ(R.Instructions, S.Instructions);
  EXPECT_LE(S.TracesCompleted, S.TraceDispatches);
  EXPECT_LE(S.BlocksInCompletedTraces, S.BlocksInTraces);
  EXPECT_LE(S.InstructionsInCompletedTraces, S.InstructionsInTraces);
  EXPECT_LE(S.InstructionsInTraces, S.Instructions);
  EXPECT_LE(S.BlocksInTraces, S.BlocksExecuted);
  EXPECT_LE(S.completedCoverage(), 1.0);
  EXPECT_LE(S.traceCoverage(), 1.0);
  EXPECT_GE(S.completionRate(), 0.0);
  EXPECT_LE(S.completionRate(), 1.0);
  // Every executed block was either dispatched individually or ran under
  // a trace dispatch.
  EXPECT_EQ(S.BlocksExecuted, S.BlockDispatches + S.BlocksInTraces);
  EXPECT_EQ(R.Dispatches, S.BlockDispatches + S.TraceDispatches);
}

TEST(TraceVmTest, TraceDispatchReducesDispatchCount) {
  Module M = testprog::hotLoop(50000);
  PreparedModule PM(M);

  TraceVM V1(PM, defaultOptions().traces(false));
  RunResult R1 = V1.run();

  TraceVM V2(PM, defaultOptions());
  RunResult R2 = V2.run();

  EXPECT_EQ(R1.Instructions, R2.Instructions);
  EXPECT_LT(R2.Dispatches, R1.Dispatches)
      << "dispatching whole traces must reduce the dispatch count";
}

TEST(TraceVmTest, ProfilingDisabledMeansNoGraphNoTraces) {
  Module M = testprog::hotLoop(20000);
  PreparedModule PM(M);
  TraceVM VM(PM, defaultOptions().profiling(false));
  VM.run();
  const VmStats &S = VM.stats();
  EXPECT_EQ(S.Hooks, 0u);
  EXPECT_EQ(S.Signals, 0u);
  EXPECT_EQ(S.TraceDispatches, 0u);
  EXPECT_EQ(S.GraphNodes, 0u);
}

TEST(TraceVmTest, TracesDisabledStillProfiles) {
  Module M = testprog::hotLoop(20000);
  PreparedModule PM(M);
  TraceVM VM(PM, defaultOptions().traces(false));
  VM.run();
  const VmStats &S = VM.stats();
  EXPECT_GT(S.Hooks, 0u);
  EXPECT_GT(S.GraphNodes, 0u);
  EXPECT_EQ(S.TraceDispatches, 0u);
  EXPECT_EQ(S.TracesConstructed, 0u);
}

TEST(TraceVmTest, HooksOncePerDispatchNotPerBlock) {
  // Paper section 4.1.2: trace dispatch executes a single profiling
  // statement; inlined blocks carry none.
  Module M = testprog::hotLoop(50000);
  PreparedModule PM(M);
  TraceVM VM(PM, defaultOptions());
  VM.run();
  const VmStats &S = VM.stats();
  EXPECT_LT(S.Hooks, S.BlocksExecuted)
      << "in-trace blocks must not run profiler hooks";
  EXPECT_LE(S.Hooks, S.BlockDispatches + S.TraceDispatches);
}

TEST(TraceVmTest, PartialTraceExecutionsAreCounted) {
  // The hot loop's rare path (1/256) diverges from the loop trace, so
  // some trace executions must end early.
  Module M = testprog::hotLoop(200000);
  PreparedModule PM(M);
  TraceVM VM(PM, defaultOptions());
  VM.run();
  const VmStats &S = VM.stats();
  EXPECT_GT(S.TraceDispatches, S.TracesCompleted)
      << "rare paths should cause some partial executions";
  EXPECT_GE(S.completionRate(), 0.9);
}

TEST(TraceVmTest, InstructionBudgetStopsRun) {
  Module M = testprog::countingLoop(1000000000);
  PreparedModule PM(M);
  TraceVM VM(PM, defaultOptions().maxInstructions(50000));
  RunResult R = VM.run();
  EXPECT_EQ(R.Status, RunStatus::BudgetExhausted);
  EXPECT_GE(R.Instructions, 50000u);
  EXPECT_LT(R.Instructions, 51000u);
}

TEST(TraceVmTest, TrapInsideTraceSurfaces) {
  // A loop that eventually divides by zero: i counts down to 0 and the
  // program divides by i each iteration.
  Assembler Asm;
  uint32_t Main = Asm.declareMethod("main", 0, 2, false);
  MethodBuilder B = Asm.beginMethod(Main);
  Label Loop = B.newLabel(), Done = B.newLabel();
  B.iconst(30000);
  B.istore(0);
  B.bind(Loop);
  B.iload(0);
  B.branch(Opcode::IfLt, Done); // loops until i < 0, but traps at i == 0
  B.iconst(1000);
  B.iload(0);
  B.emit(Opcode::Idiv);
  B.istore(1);
  B.iinc(0, -1);
  B.branch(Opcode::Goto, Loop);
  B.bind(Done);
  B.halt();
  B.finish();
  Asm.setEntry(Main);
  Module M = Asm.build();

  PreparedModule PM(M);
  TraceVM VM(PM, defaultOptions());
  RunResult R = VM.run();
  EXPECT_EQ(R.Status, RunStatus::Trapped);
  EXPECT_EQ(R.Trap, TrapKind::DivideByZero);
}

TEST(TraceVmTest, DeterministicAcrossRuns) {
  Module M = testprog::hotLoop(80000);
  PreparedModule PM(M);
  TraceVM V1(PM, defaultOptions());
  V1.run();
  TraceVM V2(PM, defaultOptions());
  V2.run();
  const VmStats &A = V1.stats(), &B = V2.stats();
  EXPECT_EQ(A.Instructions, B.Instructions);
  EXPECT_EQ(A.TraceDispatches, B.TraceDispatches);
  EXPECT_EQ(A.TracesCompleted, B.TracesCompleted);
  EXPECT_EQ(A.Signals, B.Signals);
  EXPECT_EQ(A.TracesConstructed, B.TracesConstructed);
}

TEST(TraceVmTest, RandomProgramsKeepSemanticsUnderTracing) {
  for (uint64_t Seed = 500; Seed < 540; ++Seed) {
    testprog::RandomProgramBuilder Gen(Seed);
    Module M = Gen.build();
    Machine Plain(M);
    RunResult R1 = runInstructions(Plain, 10000000);
    PreparedModule PM(M);
    TraceVM VM(PM, defaultOptions()
                       .startStateDelay(1) // trace aggressively
                       .maxInstructions(10000000));
    RunResult R2 = VM.run();
    EXPECT_EQ(R1.Status, R2.Status) << "seed " << Seed;
    EXPECT_EQ(Plain.output(), VM.machine().output()) << "seed " << Seed;
    EXPECT_EQ(R1.Instructions, R2.Instructions) << "seed " << Seed;
  }
}

//===----------------------------------------------------------------------===//
// Single-shot contract
//===----------------------------------------------------------------------===//

TEST(TraceVmTest, RunIsSingleShot) {
  Module M = testprog::countingLoop(100);
  PreparedModule PM(M);
  TraceVM VM(PM, defaultOptions());
  RunResult First = VM.run();
  EXPECT_EQ(First.Status, RunStatus::Finished);
#ifdef NDEBUG
  // Release builds turn reuse into a trap instead of executing anything.
  RunResult Again = VM.run();
  EXPECT_EQ(Again.Status, RunStatus::Trapped);
  EXPECT_EQ(Again.Trap, TrapKind::VmReuse);
  EXPECT_EQ(Again.Instructions, 0u);
  // The first run's results are untouched.
  EXPECT_EQ(VM.stats().Instructions, First.Instructions);
#else
  EXPECT_DEATH(VM.run(), "single-shot");
#endif
}

//===----------------------------------------------------------------------===//
// Warm handoff seeds
//===----------------------------------------------------------------------===//

TEST(TraceVmTest, SeedRoundTripPreservesSemanticsAndSkipsWarmup) {
  Module M = testprog::hotLoop(50000);
  PreparedModule PM(M);

  TraceVM Donor(PM, defaultOptions());
  RunResult DonorRun = Donor.run();
  ASSERT_EQ(DonorRun.Status, RunStatus::Finished);
  ASSERT_GT(Donor.stats().LiveTraces, 0u);
  VmSeed Seed = Donor.exportSeed();
  EXPECT_FALSE(Seed.empty());
  EXPECT_EQ(Seed.Traces.size(), Donor.stats().LiveTraces);

  TraceVM Warm(PM, defaultOptions());
  Warm.importSeed(Seed);
  RunResult WarmRun = Warm.run();

  // Semantics are untouched by seeding.
  EXPECT_EQ(WarmRun.Status, DonorRun.Status);
  EXPECT_EQ(WarmRun.Instructions, DonorRun.Instructions);
  EXPECT_EQ(Warm.machine().output(), Donor.machine().output());

  // The warmup is gone: the donor's traces are installed (not rebuilt),
  // dispatched from the start, and the already-acknowledged profile
  // emits no state-change signals on this stationary workload.
  EXPECT_EQ(Warm.stats().TracesSeeded, Donor.stats().LiveTraces);
  EXPECT_EQ(Warm.stats().TracesConstructed, 0u);
  EXPECT_GT(Warm.stats().TraceDispatches, 0u);
  EXPECT_LT(Warm.stats().Signals, Donor.stats().Signals);
  // More of the run executes inside traces than the cold session managed.
  EXPECT_GE(Warm.stats().traceCoverage(), Donor.stats().traceCoverage());
}

TEST(TraceVmTest, SeedIgnoredWhenComponentsDisabled) {
  Module M = testprog::hotLoop(20000);
  PreparedModule PM(M);
  TraceVM Donor(PM, defaultOptions());
  Donor.run();
  VmSeed Seed = Donor.exportSeed();

  TraceVM NoProfile(PM, defaultOptions().profiling(false));
  NoProfile.importSeed(Seed);
  RunResult R = NoProfile.run();
  EXPECT_EQ(R.Status, RunStatus::Finished);
  EXPECT_EQ(NoProfile.stats().TracesSeeded, 0u);
  EXPECT_EQ(NoProfile.stats().GraphNodes, 0u);

  TraceVM NoTraces(PM, defaultOptions().traces(false));
  NoTraces.importSeed(Seed);
  RunResult R2 = NoTraces.run();
  EXPECT_EQ(R2.Status, RunStatus::Finished);
  EXPECT_EQ(NoTraces.stats().TracesSeeded, 0u);
  EXPECT_GT(NoTraces.stats().GraphNodes, 0u);
}
