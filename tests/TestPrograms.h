//===- tests/TestPrograms.h - Shared program builders for tests -*- C++ -*-===//
///
/// \file
/// Small hand-built modules used across the test suite. The constrained
/// random-program generator that used to live here was promoted into the
/// fuzzing subsystem (src/fuzz/ProgramGen.h); it is re-exported below so
/// existing tests keep their spelling.
///
//===----------------------------------------------------------------------===//

#ifndef JTC_TESTS_TESTPROGRAMS_H
#define JTC_TESTS_TESTPROGRAMS_H

#include "bytecode/Assembler.h"
#include "fuzz/ProgramGen.h"

#include <cstdint>
#include <vector>

namespace jtc {
namespace testprog {

/// main: prints the sum 0 + 1 + ... + (N-1), then halts.
inline Module countingLoop(int32_t N) {
  Assembler Asm;
  uint32_t Main = Asm.declareMethod("main", 0, 2, false);
  MethodBuilder B = Asm.beginMethod(Main);
  Label Loop = B.newLabel(), Done = B.newLabel();
  B.iconst(0);
  B.istore(0); // i
  B.iconst(0);
  B.istore(1); // sum
  B.bind(Loop);
  B.iload(0);
  B.iconst(N);
  B.branch(Opcode::IfIcmpGe, Done);
  B.iload(1);
  B.iload(0);
  B.emit(Opcode::Iadd);
  B.istore(1);
  B.iinc(0, 1);
  B.branch(Opcode::Goto, Loop);
  B.bind(Done);
  B.iload(1);
  B.emit(Opcode::Iprint);
  B.halt();
  B.finish();
  Asm.setEntry(Main);
  return Asm.build();
}

/// main: prints factorial(N) computed recursively.
inline Module recursiveFactorial(int32_t N) {
  Assembler Asm;
  uint32_t Fact = Asm.declareMethod("fact", 1, 1, true);
  {
    MethodBuilder B = Asm.beginMethod(Fact);
    Label Base = B.newLabel();
    B.iload(0);
    B.iconst(1);
    B.branch(Opcode::IfIcmpLe, Base);
    B.iload(0);
    B.iload(0);
    B.iconst(1);
    B.emit(Opcode::Isub);
    B.invokestatic(Fact);
    B.emit(Opcode::Imul);
    B.iret();
    B.bind(Base);
    B.iconst(1);
    B.iret();
    B.finish();
  }
  uint32_t Main = Asm.declareMethod("main", 0, 0, false);
  {
    MethodBuilder B = Asm.beginMethod(Main);
    B.iconst(N);
    B.invokestatic(Fact);
    B.emit(Opcode::Iprint);
    B.halt();
    B.finish();
  }
  Asm.setEntry(Main);
  return Asm.build();
}

/// main: two classes implementing slot "val"; prints both results.
inline Module virtualDispatch() {
  Assembler Asm;
  uint32_t Slot = Asm.declareSlot("val", 1, true);
  uint32_t CA = Asm.declareClass("A", 1);
  uint32_t CB = Asm.declareClass("B", 1);
  uint32_t MA = Asm.declareMethod("A.val", 1, 1, true);
  {
    MethodBuilder B = Asm.beginMethod(MA);
    B.iload(0);
    B.getfield(0);
    B.iconst(10);
    B.emit(Opcode::Iadd);
    B.iret();
    B.finish();
  }
  uint32_t MB = Asm.declareMethod("B.val", 1, 1, true);
  {
    MethodBuilder B = Asm.beginMethod(MB);
    B.iload(0);
    B.getfield(0);
    B.iconst(2);
    B.emit(Opcode::Imul);
    B.iret();
    B.finish();
  }
  Asm.setVtableEntry(CA, Slot, MA);
  Asm.setVtableEntry(CB, Slot, MB);

  uint32_t Main = Asm.declareMethod("main", 0, 2, false);
  {
    MethodBuilder B = Asm.beginMethod(Main);
    // a = new A; a.field0 = 5; print a.val()
    B.newobj(CA);
    B.emit(Opcode::Dup);
    B.iconst(5);
    B.putfield(0);
    B.istore(0);
    B.iload(0);
    B.invokevirtual(Slot);
    B.emit(Opcode::Iprint);
    // b = new B; b.field0 = 7; print b.val()
    B.newobj(CB);
    B.emit(Opcode::Dup);
    B.iconst(7);
    B.putfield(0);
    B.istore(1);
    B.iload(1);
    B.invokevirtual(Slot);
    B.emit(Opcode::Iprint);
    B.halt();
    B.finish();
  }
  Asm.setEntry(Main);
  return Asm.build();
}

/// main: prints table-switch results for selectors 0..5.
inline Module switchProgram() {
  Assembler Asm;
  uint32_t Main = Asm.declareMethod("main", 0, 1, false);
  MethodBuilder B = Asm.beginMethod(Main);
  Label Loop = B.newLabel(), Done = B.newLabel();
  Label C0 = B.newLabel(), C1 = B.newLabel(), C2 = B.newLabel();
  Label Def = B.newLabel(), Join = B.newLabel();
  B.iconst(0);
  B.istore(0);
  B.bind(Loop);
  B.iload(0);
  B.iconst(6);
  B.branch(Opcode::IfIcmpGe, Done);
  B.iload(0);
  B.tableswitch(0, {C0, C1, C2}, Def);
  B.bind(C0);
  B.iconst(100);
  B.emit(Opcode::Iprint);
  B.branch(Opcode::Goto, Join);
  B.bind(C1);
  B.iconst(101);
  B.emit(Opcode::Iprint);
  B.branch(Opcode::Goto, Join);
  B.bind(C2);
  B.iconst(102);
  B.emit(Opcode::Iprint);
  B.branch(Opcode::Goto, Join);
  B.bind(Def);
  B.iconst(999);
  B.emit(Opcode::Iprint);
  B.branch(Opcode::Goto, Join);
  B.bind(Join);
  B.iinc(0, 1);
  B.branch(Opcode::Goto, Loop);
  B.bind(Done);
  B.halt();
  B.finish();
  Asm.setEntry(Main);
  return Asm.build();
}

/// main: array of length N: a[i] = i * i; prints sum of elements.
inline Module arraySquares(int32_t N) {
  Assembler Asm;
  uint32_t Main = Asm.declareMethod("main", 0, 3, false);
  MethodBuilder B = Asm.beginMethod(Main);
  Label L1 = B.newLabel(), D1 = B.newLabel();
  Label L2 = B.newLabel(), D2 = B.newLabel();
  B.iconst(N);
  B.emit(Opcode::NewArray);
  B.istore(0);
  B.iconst(0);
  B.istore(1);
  B.bind(L1);
  B.iload(1);
  B.iconst(N);
  B.branch(Opcode::IfIcmpGe, D1);
  B.iload(0);
  B.iload(1);
  B.iload(1);
  B.iload(1);
  B.emit(Opcode::Imul);
  B.emit(Opcode::Iastore);
  B.iinc(1, 1);
  B.branch(Opcode::Goto, L1);
  B.bind(D1);
  B.iconst(0);
  B.istore(1);
  B.iconst(0);
  B.istore(2);
  B.bind(L2);
  B.iload(1);
  B.iload(0);
  B.emit(Opcode::ArrayLength);
  B.branch(Opcode::IfIcmpGe, D2);
  B.iload(2);
  B.iload(0);
  B.iload(1);
  B.emit(Opcode::Iaload);
  B.emit(Opcode::Iadd);
  B.istore(2);
  B.iinc(1, 1);
  B.branch(Opcode::Goto, L2);
  B.bind(D2);
  B.iload(2);
  B.emit(Opcode::Iprint);
  B.halt();
  B.finish();
  Asm.setEntry(Main);
  return Asm.build();
}

/// main: a hot loop of N iterations with a highly biased branch -- the
/// smallest program on which the trace cache finds a loop trace.
inline Module hotLoop(int32_t N) {
  Assembler Asm;
  uint32_t Main = Asm.declareMethod("main", 0, 2, false);
  MethodBuilder B = Asm.beginMethod(Main);
  Label Loop = B.newLabel(), Done = B.newLabel(), Rare = B.newLabel(),
        Join = B.newLabel();
  B.iconst(0);
  B.istore(0);
  B.iconst(0);
  B.istore(1);
  B.bind(Loop);
  B.iload(0);
  B.iconst(N);
  B.branch(Opcode::IfIcmpGe, Done);
  B.iload(0);
  B.iconst(255);
  B.emit(Opcode::Iand);
  B.branch(Opcode::IfEq, Rare); // taken 1/256
  B.iload(1);
  B.iconst(3);
  B.emit(Opcode::Iadd);
  B.istore(1);
  B.branch(Opcode::Goto, Join);
  B.bind(Rare);
  B.iload(1);
  B.iconst(1);
  B.emit(Opcode::Ishr);
  B.istore(1);
  B.bind(Join);
  B.iinc(0, 1);
  B.branch(Opcode::Goto, Loop);
  B.bind(Done);
  B.iload(1);
  B.emit(Opcode::Iprint);
  B.halt();
  B.finish();
  Asm.setEntry(Main);
  return Asm.build();
}

/// main: divides 10 by 0 -- traps.
inline Module divideByZero() {
  Assembler Asm;
  uint32_t Main = Asm.declareMethod("main", 0, 0, false);
  MethodBuilder B = Asm.beginMethod(Main);
  B.iconst(10);
  B.iconst(0);
  B.emit(Opcode::Idiv);
  B.emit(Opcode::Iprint);
  B.halt();
  B.finish();
  Asm.setEntry(Main);
  return Asm.build();
}

/// The random program generator, now owned by the fuzzing subsystem.
using fuzz::RandomProgramBuilder;

} // namespace testprog
} // namespace jtc

#endif // JTC_TESTS_TESTPROGRAMS_H
