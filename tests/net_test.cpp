//===- tests/net_test.cpp - Fleet wire protocol & epoll front-end ---------===//
///
/// The net layer's contract, from both sides:
///
///  - framing: every message round-trips through encode/decode; the
///    FrameReader reassembles identically however the byte stream is
///    sliced (byte-at-a-time, random fuzz slices), and a torn prefix
///    just waits -- it never yields a partial frame;
///  - strictness: bad magic, version skew, unknown types, oversize
///    declarations and truncated/trailing payloads land in typed
///    NetErrors, never UB and never a partially applied message;
///  - the event loop: echo service over a real socket, pipelined
///    requests, idle-timeout sweeping, protocol-error teardown, and
///    write buffering across a response larger than one socket buffer.
///
//===----------------------------------------------------------------------===//

#include "net/Client.h"
#include "net/EpollServer.h"
#include "net/Protocol.h"
#include "support/Prng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace jtc;
using namespace jtc::net;

namespace {

std::vector<uint8_t> bytes(std::initializer_list<int> L) {
  std::vector<uint8_t> V;
  for (int X : L)
    V.push_back(static_cast<uint8_t>(X));
  return V;
}

//===--- Message payload round trips --------------------------------------===//

TEST(NetProtocol, SubmitProgramRoundTrip) {
  SubmitProgramMsg M;
  M.Name = "loopy";
  M.Jasm = ".method main\n  iconst 0\n  ireturn\n.end\n";
  SubmitProgramMsg D;
  NetError Err;
  ASSERT_TRUE(D.decode(M.encode(), Err)) << Err.message();
  EXPECT_EQ(D.Name, M.Name);
  EXPECT_EQ(D.Jasm, M.Jasm);
}

TEST(NetProtocol, RunSessionRoundTrip) {
  RunSessionMsg M;
  M.SessionKey = "tenant-42";
  M.Module = "compress";
  M.MaxInstructions = 123456789ull;
  RunSessionMsg D;
  NetError Err;
  ASSERT_TRUE(D.decode(M.encode(), Err));
  EXPECT_EQ(D.SessionKey, M.SessionKey);
  EXPECT_EQ(D.Module, M.Module);
  EXPECT_EQ(D.MaxInstructions, M.MaxInstructions);
}

TEST(NetProtocol, SessionDoneRoundTripPreservesDoubles) {
  SessionDoneMsg M;
  M.Status = 1;
  M.Trap = 3;
  M.WarmStart = true;
  M.Shard = 7;
  M.BlocksExecuted = 0xdeadbeefcafeull;
  M.Instructions = 42;
  M.HeapDigest = ~0ull;
  M.OutputDigest = 0x123456789abcdef0ull;
  M.StatsDigest = 0xfedcba9876543210ull;
  M.Seconds = 0.03125;
  SessionDoneMsg D;
  NetError Err;
  ASSERT_TRUE(D.decode(M.encode(), Err));
  EXPECT_EQ(D.Status, M.Status);
  EXPECT_EQ(D.Trap, M.Trap);
  EXPECT_EQ(D.WarmStart, M.WarmStart);
  EXPECT_EQ(D.Shard, M.Shard);
  EXPECT_EQ(D.BlocksExecuted, M.BlocksExecuted);
  EXPECT_EQ(D.HeapDigest, M.HeapDigest);
  EXPECT_EQ(D.OutputDigest, M.OutputDigest);
  EXPECT_EQ(D.StatsDigest, M.StatsDigest);
  EXPECT_EQ(D.Seconds, M.Seconds); // Bit-exact through the u64 packing.
}

TEST(NetProtocol, StatsReplyRoundTripPreservesOrder) {
  StatsReplyMsg M;
  M.Counters = {{"completed", 10}, {"warm-starts", 3}, {"empty", 0}};
  StatsReplyMsg D;
  NetError Err;
  ASSERT_TRUE(D.decode(M.encode(), Err));
  EXPECT_EQ(D.Counters, M.Counters);
}

TEST(NetProtocol, ErrorAndBackpressureRoundTrip) {
  ErrorMsg E;
  E.Code = static_cast<uint32_t>(RequestErrorCode::ShardDown);
  E.Detail = "shard 3 crashed; retry";
  ErrorMsg ED;
  NetError Err;
  ASSERT_TRUE(ED.decode(E.encode(), Err));
  EXPECT_EQ(ED.Code, E.Code);
  EXPECT_EQ(ED.Detail, E.Detail);

  BackpressureMsg B;
  B.QueueDepth = 65;
  B.Bound = 64;
  BackpressureMsg BD;
  ASSERT_TRUE(BD.decode(B.encode(), Err));
  EXPECT_EQ(BD.QueueDepth, B.QueueDepth);
  EXPECT_EQ(BD.Bound, B.Bound);
}

TEST(NetProtocol, EveryTruncatedPrefixIsTyped) {
  SubmitProgramMsg M;
  M.Name = "x";
  M.Jasm = "text";
  std::vector<uint8_t> Good = M.encode();

  for (size_t Len = 0; Len < Good.size(); ++Len) {
    std::vector<uint8_t> Cut(Good.begin(),
                             Good.begin() + static_cast<std::ptrdiff_t>(Len));
    SubmitProgramMsg D;
    NetError Err;
    EXPECT_FALSE(D.decode(Cut, Err)) << "prefix " << Len;
    EXPECT_EQ(Err.Kind, NetErrorKind::Truncated) << "prefix " << Len;
    EXPECT_TRUE(D.Name.empty()); // No partial install.
  }
}

TEST(NetProtocol, TrailingBytesAreMalformed) {
  RunSessionMsg M;
  M.SessionKey = "k";
  M.Module = "m";
  std::vector<uint8_t> Long = M.encode();
  Long.push_back(0);
  RunSessionMsg D;
  NetError Err;
  EXPECT_FALSE(D.decode(Long, Err));
  EXPECT_EQ(Err.Kind, NetErrorKind::Malformed);
}

TEST(NetProtocol, EmptyModuleNameIsMalformed) {
  RunSessionMsg M;
  M.SessionKey = "k";
  M.Module = "";
  RunSessionMsg D;
  NetError Err;
  EXPECT_FALSE(D.decode(M.encode(), Err));
  EXPECT_EQ(Err.Kind, NetErrorKind::Malformed);
}

TEST(NetProtocol, OutputDigestDistinguishesOrderAndLength) {
  EXPECT_NE(outputDigest({1, 2}), outputDigest({2, 1}));
  EXPECT_EQ(outputDigest({1, 2}), outputDigest({1, 2}));
  EXPECT_NE(outputDigest({}), outputDigest({0}));
}

//===--- Frame reassembly -------------------------------------------------===//

Frame mkFrame(MessageType T, uint64_t Id, std::vector<uint8_t> Payload) {
  Frame F;
  F.Type = T;
  F.RequestId = Id;
  F.Payload = std::move(Payload);
  return F;
}

std::vector<uint8_t> concatFrames(const std::vector<Frame> &Frames) {
  std::vector<uint8_t> Stream;
  for (const Frame &F : Frames) {
    std::vector<uint8_t> B = encodeFrame(F.Type, F.RequestId, F.Payload);
    Stream.insert(Stream.end(), B.begin(), B.end());
  }
  return Stream;
}

std::vector<Frame> testFrames() {
  RunSessionMsg Run;
  Run.SessionKey = "key";
  Run.Module = "compress";
  Run.MaxInstructions = 1000;
  StatsReplyMsg Stats;
  Stats.Counters = {{"a", 1}, {"b", 2}};
  return {
      mkFrame(MessageType::Ping, 1, {}),
      mkFrame(MessageType::RunSession, 2, Run.encode()),
      mkFrame(MessageType::SessionDone, 2, SessionDoneMsg().encode()),
      mkFrame(MessageType::StatsReply, 3, Stats.encode()),
  };
}

TEST(FrameReader, ByteAtATime) {
  std::vector<Frame> Want = testFrames();
  std::vector<uint8_t> Stream = concatFrames(Want);
  FrameReader R;
  std::vector<Frame> Got;
  for (uint8_t B : Stream) {
    R.feed(&B, 1);
    Frame F;
    while (R.next(F))
      Got.push_back(F);
  }
  ASSERT_FALSE(R.failed());
  ASSERT_EQ(Got.size(), Want.size());
  for (size_t I = 0; I < Want.size(); ++I) {
    EXPECT_EQ(Got[I].Type, Want[I].Type);
    EXPECT_EQ(Got[I].RequestId, Want[I].RequestId);
    EXPECT_EQ(Got[I].Payload, Want[I].Payload);
  }
  EXPECT_EQ(R.pendingBytes(), 0u);
}

TEST(FrameReader, FuzzSlicedFraming) {
  std::vector<Frame> Want = testFrames();
  std::vector<uint8_t> Stream = concatFrames(Want);
  Prng Rng(0xf1ee7);
  for (int Round = 0; Round < 200; ++Round) {
    FrameReader R;
    std::vector<Frame> Got;
    size_t Off = 0;
    while (Off < Stream.size()) {
      size_t N =
          1 + static_cast<size_t>(
                  Rng.nextBelow(std::min<uint64_t>(Stream.size() - Off, 37)));
      R.feed(Stream.data() + Off, N);
      Off += N;
      Frame F;
      while (R.next(F))
        Got.push_back(F);
    }
    ASSERT_FALSE(R.failed());
    ASSERT_EQ(Got.size(), Want.size()) << "round " << Round;
    for (size_t I = 0; I < Want.size(); ++I) {
      EXPECT_EQ(Got[I].Type, Want[I].Type);
      EXPECT_EQ(Got[I].RequestId, Want[I].RequestId);
      EXPECT_EQ(Got[I].Payload, Want[I].Payload);
    }
  }
}

TEST(FrameReader, TornHeaderAndPayloadWait) {
  std::vector<uint8_t> Stream =
      encodeFrame(MessageType::Ping, 9, bytes({1, 2, 3, 4}));
  ASSERT_EQ(Stream.size(), FrameHeaderBytes + 4);
  FrameReader R;
  // Half the header: no frame, no error.
  R.feed(Stream.data(), FrameHeaderBytes / 2);
  Frame F;
  EXPECT_FALSE(R.next(F));
  EXPECT_FALSE(R.failed());
  // Header complete, payload torn: still waiting.
  R.feed(Stream.data() + FrameHeaderBytes / 2,
         FrameHeaderBytes - FrameHeaderBytes / 2 + 2);
  EXPECT_FALSE(R.next(F));
  EXPECT_FALSE(R.failed());
  // The rest arrives.
  R.feed(Stream.data() + FrameHeaderBytes + 2, 2);
  ASSERT_TRUE(R.next(F));
  EXPECT_EQ(F.RequestId, 9u);
  EXPECT_EQ(F.Payload, bytes({1, 2, 3, 4}));
  EXPECT_FALSE(R.next(F));
}

TEST(FrameReader, BadMagicLatches) {
  std::vector<uint8_t> Stream = encodeFrame(MessageType::Ping, 1, {});
  Stream[0] ^= 0xff;
  FrameReader R;
  R.feed(Stream.data(), Stream.size());
  Frame F;
  EXPECT_FALSE(R.next(F));
  EXPECT_TRUE(R.failed());
  EXPECT_EQ(R.error().Kind, NetErrorKind::BadMagic);
  // Latched: even valid follow-up bytes never yield frames again.
  std::vector<uint8_t> Good = encodeFrame(MessageType::Ping, 2, {});
  R.feed(Good.data(), Good.size());
  EXPECT_FALSE(R.next(F));
  EXPECT_EQ(R.error().Kind, NetErrorKind::BadMagic);
}

// Header layout: u32 magic, u32 payload len, u8 type, u8 version, u16
// reserved, u64 request id -- all little-endian.

TEST(FrameReader, VersionSkew) {
  std::vector<uint8_t> Stream = encodeFrame(MessageType::Ping, 1, {});
  Stream[9] = ProtocolVersion + 1;
  FrameReader R;
  R.feed(Stream.data(), Stream.size());
  Frame F;
  EXPECT_FALSE(R.next(F));
  EXPECT_EQ(R.error().Kind, NetErrorKind::VersionSkew);
}

TEST(FrameReader, BadType) {
  std::vector<uint8_t> Stream = encodeFrame(MessageType::Ping, 1, {});
  Stream[8] = static_cast<uint8_t>(NumMessageTypes);
  FrameReader R;
  R.feed(Stream.data(), Stream.size());
  Frame F;
  EXPECT_FALSE(R.next(F));
  EXPECT_EQ(R.error().Kind, NetErrorKind::BadType);
}

TEST(FrameReader, OversizeDeclarationRejectedBeforeBuffering) {
  std::vector<uint8_t> Stream = encodeFrame(MessageType::Ping, 1, {});
  uint32_t Huge = MaxPayloadBytes + 1;
  Stream[4] = static_cast<uint8_t>(Huge);
  Stream[5] = static_cast<uint8_t>(Huge >> 8);
  Stream[6] = static_cast<uint8_t>(Huge >> 16);
  Stream[7] = static_cast<uint8_t>(Huge >> 24);
  FrameReader R;
  R.feed(Stream.data(), Stream.size());
  Frame F;
  EXPECT_FALSE(R.next(F));
  EXPECT_EQ(R.error().Kind, NetErrorKind::Oversize);
}

//===--- EpollServer over real sockets ------------------------------------===//

/// Echo handler: answers Ping with Pong carrying the same payload; any
/// other type is echoed back verbatim.
class EchoHandler : public EpollServer::Handler {
public:
  EpollServer *Net = nullptr;

  void onFrame(uint64_t ConnId, Frame F) override {
    MessageType T = F.Type == MessageType::Ping ? MessageType::Pong : F.Type;
    Net->send(ConnId, T, F.RequestId, F.Payload);
  }
};

struct EchoServer {
  EchoHandler Handler;
  EpollServer Net;
  uint16_t Port = 0;
  int ListenFd = -1;

  explicit EchoServer(EpollServer::Config Cfg = {}) : Net(Cfg, Handler) {
    Handler.Net = &Net;
    std::string Err;
    ListenFd = EpollServer::makeListenSocket(0, Port, Err);
    EXPECT_GE(ListenFd, 0) << Err;
    EXPECT_TRUE(Net.addListener(ListenFd, Err)) << Err;
  }
  ~EchoServer() {
    if (ListenFd >= 0)
      ::close(ListenFd);
  }
};

TEST(EpollServer, EchoAndPipelining) {
  EchoServer S;
  std::string Err;
  auto Client = BlockingClient::connect(S.Port, Err);
  ASSERT_TRUE(Client) << Err;

  // Pipeline three pings before reading anything; responses come back in
  // order with matching ids.
  uint64_t Ids[3];
  for (int I = 0; I < 3; ++I) {
    Ids[I] = Client->nextRequestId();
    ASSERT_TRUE(
        Client->send(MessageType::Ping, Ids[I], bytes({I, I + 1, I + 2})));
  }
  for (int I = 0; I < 3; ++I) {
    Frame F;
    NetError NErr;
    bool Got = false;
    for (int Spin = 0; Spin < 5000 && !Got; ++Spin) {
      S.Net.poll(1);
      Got = Client->recv(F, NErr, 0.001);
    }
    ASSERT_TRUE(Got) << NErr.message();
    EXPECT_EQ(F.Type, MessageType::Pong);
    EXPECT_EQ(F.RequestId, Ids[I]);
    EXPECT_EQ(F.Payload, bytes({I, I + 1, I + 2}));
  }
  EXPECT_EQ(S.Net.counters().FramesIn, 3u);
  EXPECT_EQ(S.Net.counters().FramesOut, 3u);
  EXPECT_EQ(S.Net.counters().ConnsAccepted, 1u);
}

TEST(EpollServer, LargeResponseFlushesAcrossPartialWrites) {
  EchoServer S;
  std::string Err;
  auto Client = BlockingClient::connect(S.Port, Err);
  ASSERT_TRUE(Client) << Err;

  // 2 MB payload: far past any socket buffer, so both directions exercise
  // buffering -- the client thread blocks through its send while the
  // server parks the unwritten remainder and resumes under EPOLLOUT.
  std::vector<uint8_t> Big(2u << 20);
  Prng Rng(7);
  for (auto &B : Big)
    B = static_cast<uint8_t>(Rng.next());

  std::atomic<bool> Done{false};
  bool Ok = false;
  Frame Reply;
  NetError NErr;
  std::thread ClientSide([&] {
    Ok = Client->send(MessageType::Checkpoint, 77, Big) &&
         Client->recv(Reply, NErr, 60.0);
    Done = true;
  });
  while (!Done)
    S.Net.poll(5);
  ClientSide.join();

  ASSERT_TRUE(Ok) << NErr.message();
  EXPECT_EQ(Reply.Type, MessageType::Checkpoint);
  EXPECT_EQ(Reply.RequestId, 77u);
  EXPECT_EQ(Reply.Payload, Big);
}

TEST(EpollServer, RawJunkTearsDownConnectionAsProtocolError) {
  EchoServer S;

  // A raw socket speaking no protocol at all.
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(Fd, 0);
  sockaddr_in Addr = {};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(S.Port);
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)),
            0);
  std::vector<uint8_t> Junk(64, 0xAB);
  ASSERT_EQ(::write(Fd, Junk.data(), Junk.size()),
            static_cast<ssize_t>(Junk.size()));

  auto End = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (S.Net.counters().ProtocolErrors == 0 &&
         std::chrono::steady_clock::now() < End)
    S.Net.poll(10);
  EXPECT_EQ(S.Net.counters().ProtocolErrors, 1u);
  EXPECT_EQ(S.Net.numConnections(), 0u);
  EXPECT_EQ(S.Net.counters().FramesIn, 0u);
  ::close(Fd);
}

TEST(EpollServer, IdleTimeoutSweepsSilentConnections) {
  EpollServer::Config Cfg;
  Cfg.IdleTimeoutSeconds = 0.05;
  EchoServer S(Cfg);
  std::string Err;
  auto Client = BlockingClient::connect(S.Port, Err);
  ASSERT_TRUE(Client) << Err;

  // Let the connection be accepted, then go silent past the timeout.
  auto End = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (S.Net.counters().ConnsAccepted == 0 &&
         std::chrono::steady_clock::now() < End)
    S.Net.poll(10);
  ASSERT_EQ(S.Net.numConnections(), 1u);
  while (S.Net.numConnections() > 0 &&
         std::chrono::steady_clock::now() < End)
    S.Net.poll(10);
  EXPECT_EQ(S.Net.numConnections(), 0u);
  EXPECT_EQ(S.Net.counters().IdleClosed, 1u);
}

TEST(EpollServer, StaleConnIdNeverRoutes) {
  EchoServer S;
  std::string Err;
  auto Client = BlockingClient::connect(S.Port, Err);
  ASSERT_TRUE(Client) << Err;
  auto End = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (S.Net.counters().ConnsAccepted == 0 &&
         std::chrono::steady_clock::now() < End)
    S.Net.poll(10);
  ASSERT_EQ(S.Net.numConnections(), 1u);

  Client.reset(); // Peer closes.
  while (S.Net.numConnections() > 0 &&
         std::chrono::steady_clock::now() < End)
    S.Net.poll(10);

  // Sending to the (now dead) id is a silent no-op, not UB or a crash --
  // and a fresh connection must not receive it.
  S.Net.send(1, MessageType::Pong, 1, {});
  auto Fresh = BlockingClient::connect(S.Port, Err);
  ASSERT_TRUE(Fresh) << Err;
  for (int Spin = 0; Spin < 20; ++Spin)
    S.Net.poll(1);
  Frame F;
  NetError NErr;
  EXPECT_FALSE(Fresh->recv(F, NErr, 0.05));
}

} // namespace
