//===- tests/btrace_test.cpp - Branch-trace pipeline contract -------------===//
///
/// The btrace subsystem's contract, from both sides:
///
///  - round trip: encode -> strict decode reproduces the *exact* block
///    sequence the VM dispatched, and replay through a fresh adaptive
///    engine reproduces the live session's stats digest bit-identically
///    (cold, warm-seeded, trapped and budget-cut runs, and all six paper
///    workloads);
///  - strictness: every truncation of a valid .btc and every single-byte
///    corruption is rejected with a typed PersistError -- never a crash,
///    never a silently wrong block stream. The checked-in corpus
///    fixtures pin the rejection kinds for the canonical failure modes;
///  - loss tolerance: sync packets are scannable from arbitrary offsets
///    and recoverTail() salvages a true suffix of the run from a torn
///    stream.
///
//===----------------------------------------------------------------------===//

#include "btrace/BtraceCapture.h"
#include "btrace/BtraceDecoder.h"
#include "btrace/BtraceReplay.h"
#include "fuzz/BtraceAudit.h"
#include "persist/Snapshot.h"
#include "vm/ModuleFingerprint.h"
#include "workloads/Workloads.h"

#include "TestPrograms.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <functional>
#include <iterator>
#include <memory>

using namespace jtc;
using namespace jtc::btrace;
using persist::PersistError;
using persist::PersistErrorKind;

namespace {

/// One captured session: ground-truth block sequence plus the encoded
/// in-memory stream (via the fuzzer's recorder). Owns its Module.
struct Captured {
  Module M;
  PreparedModule PM;
  TraceVM VM;
  fuzz::BtraceRecorder Rec;
  RunResult R;

  explicit Captured(Module Mod, VmOptions VO = VmOptions(),
                    uint32_t SyncInterval = 64)
      : M(std::move(Mod)), PM(M), VM(PM, VO), Rec(PM, VM, SyncInterval) {
    Rec.attach(VM);
    R = VM.run();
  }
};

std::filesystem::path scratchDir(const char *Name) {
  std::filesystem::path Dir =
      std::filesystem::temp_directory_path() / "jtc-btrace-test" / Name;
  std::filesystem::remove_all(Dir);
  std::filesystem::create_directories(Dir);
  return Dir;
}

std::vector<uint8_t> readFileBytes(const std::filesystem::path &P) {
  std::ifstream IS(P, std::ios::binary);
  EXPECT_TRUE(IS.good()) << "missing fixture " << P;
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(IS),
                              std::istreambuf_iterator<char>());
}

} // namespace

//===----------------------------------------------------------------------===//
// Round trips
//===----------------------------------------------------------------------===//

namespace {

/// The capture (module build + full VM run + encode) dominates this
/// suite's wall clock, so the round-trip cases share sessions built once
/// in SetUpTestSuite rather than re-capturing per case. Builders are kept
/// alongside each session so the determinism case can re-capture and
/// compare streams byte for byte.
class SharedCaptureTest : public ::testing::Test {
protected:
  struct Session {
    std::string Name;
    std::function<Module()> Build;
    uint32_t SyncInterval;
    std::unique_ptr<Captured> C;
  };

  static void SetUpTestSuite() {
    Programs = new std::vector<Session>();
    const std::pair<const char *, std::function<Module()>> Specs[] = {
        {"countingLoop", [] { return testprog::countingLoop(500); }},
        {"recursiveFactorial", [] { return testprog::recursiveFactorial(12); }},
        {"virtualDispatch", [] { return testprog::virtualDispatch(); }},
        {"switchProgram", [] { return testprog::switchProgram(); }},
        {"arraySquares", [] { return testprog::arraySquares(64); }},
        {"hotLoop", [] { return testprog::hotLoop(5000); }},
    };
    for (const auto &[Name, Build] : Specs)
      Programs->push_back(
          {Name, Build, 64, std::make_unique<Captured>(Build())});
    Workloads = new std::vector<Session>();
    for (const WorkloadInfo &W : allWorkloads()) {
      // Reduced scale keeps the suite fast; the CI smoke and the fuzz
      // audit cover full-scale streams.
      uint32_t Scale = W.DefaultScale / 20 ? W.DefaultScale / 20 : 1;
      auto Build = [&W, Scale] { return W.Build(Scale); };
      Workloads->push_back(
          {W.Name, Build, 512,
           std::make_unique<Captured>(Build(), VmOptions(),
                                      /*SyncInterval=*/512)});
    }
  }
  static void TearDownTestSuite() {
    delete Programs;
    Programs = nullptr;
    delete Workloads;
    Workloads = nullptr;
  }

  static std::vector<Session> *Programs;
  static std::vector<Session> *Workloads;
};

std::vector<SharedCaptureTest::Session> *SharedCaptureTest::Programs = nullptr;
std::vector<SharedCaptureTest::Session> *SharedCaptureTest::Workloads = nullptr;

} // namespace

TEST_F(SharedCaptureTest, ReproducesExactBlockStream) {
  for (const Session &P : *Programs) {
    const Captured &C = *P.C;
    EXPECT_EQ(C.R.Status, RunStatus::Finished) << P.Name;
    std::vector<fuzz::Violation> Vs = checkBtraceRoundTrip(C.PM, C.Rec);
    EXPECT_TRUE(Vs.empty()) << P.Name << ":\n" << fuzz::formatViolations(Vs);
  }
}

TEST_F(SharedCaptureTest, AllSixWorkloadsReplayBitIdentically) {
  for (const Session &W : *Workloads) {
    const Captured &C = *W.C;
    EXPECT_EQ(C.R.Status, RunStatus::Finished) << W.Name;
    std::vector<fuzz::Violation> Vs = checkBtraceRoundTrip(C.PM, C.Rec);
    EXPECT_TRUE(Vs.empty()) << W.Name << ":\n" << fuzz::formatViolations(Vs);

    // The replayed digest equals the live session's digest directly, not
    // just the END record's copy of it.
    ReplayResult RR;
    PersistError Err;
    ASSERT_TRUE(replayBtrace(C.Rec.stream().data(), C.Rec.stream().size(),
                             C.PM, RR, Err))
        << W.Name << ": " << Err.message();
    EXPECT_EQ(RR.ReplayDigest, C.VM.stats().digest()) << W.Name;
    EXPECT_EQ(RR.BlocksWalked, C.Rec.blocks().size()) << W.Name;
  }
}

TEST_F(SharedCaptureTest, RecaptureIsByteIdentical) {
  // Sharing sessions across cases (and running test binaries under
  // `ctest -j`) is sound only if capture is a pure function of the
  // program: a fresh capture of the same module must reproduce the
  // fixture's stream byte for byte, digest and all.
  for (const std::vector<Session> *Group : {Programs, Workloads}) {
    for (const Session &S : *Group) {
      Captured Again(S.Build(), VmOptions(), S.SyncInterval);
      EXPECT_EQ(Again.R.Status, S.C->R.Status) << S.Name;
      EXPECT_EQ(Again.Rec.stream(), S.C->Rec.stream())
          << S.Name << ": re-capture diverged from the shared session";
      EXPECT_EQ(Again.VM.stats().digest(), S.C->VM.stats().digest()) << S.Name;
    }
  }
}

TEST(BtraceRoundTripTest, TrappedRunRoundTrips) {
  Captured C(testprog::divideByZero());
  ASSERT_EQ(C.R.Status, RunStatus::Trapped);
  std::vector<fuzz::Violation> Vs = checkBtraceRoundTrip(C.PM, C.Rec);
  EXPECT_TRUE(Vs.empty()) << fuzz::formatViolations(Vs);

  ReplayResult RR;
  PersistError Err;
  ASSERT_TRUE(replayBtrace(C.Rec.stream().data(), C.Rec.stream().size(),
                           C.PM, RR, Err))
      << Err.message();
  EXPECT_EQ(RR.End.Status, RunStatus::Trapped);
  EXPECT_EQ(RR.End.Trap, TrapKind::DivideByZero);
  EXPECT_TRUE(RR.DigestMatch);
}

TEST(BtraceRoundTripTest, BudgetCutRunRoundTrips) {
  Captured C(testprog::countingLoop(1000000),
             VmOptions().maxInstructions(20000));
  ASSERT_EQ(C.R.Status, RunStatus::BudgetExhausted);
  std::vector<fuzz::Violation> Vs = checkBtraceRoundTrip(C.PM, C.Rec);
  EXPECT_TRUE(Vs.empty()) << fuzz::formatViolations(Vs);

  ReplayResult RR;
  PersistError Err;
  ASSERT_TRUE(replayBtrace(C.Rec.stream().data(), C.Rec.stream().size(),
                           C.PM, RR, Err))
      << Err.message();
  EXPECT_EQ(RR.End.Status, RunStatus::BudgetExhausted);
  EXPECT_TRUE(RR.DigestMatch);
}

TEST(BtraceRoundTripTest, HeaderRoundTripsConfiguration) {
  BtraceHeader H;
  H.Fingerprint = 0xdeadbeefcafef00dull;
  H.Threshold = 0.93;
  H.Delay = 7;
  H.Decay = 123;
  H.Budget = 555555;
  H.SyncInterval = 64;
  H.Scale = 42;
  H.Spec = "workload:compress";
  H.EntryBlock = 3;
  H.Seed = {1, 2, 3, 4, 5};
  H.Flags |= FlagHasSeed;

  std::vector<uint8_t> Bytes = encodeHeader(H);
  BtraceHeader Out;
  size_t HeaderSize = 0;
  PersistError Err;
  ASSERT_TRUE(decodeHeader(Bytes.data(), Bytes.size(), Out, HeaderSize, Err))
      << Err.message();
  EXPECT_EQ(HeaderSize, Bytes.size());
  EXPECT_EQ(Out.Fingerprint, H.Fingerprint);
  EXPECT_DOUBLE_EQ(Out.Threshold, H.Threshold);
  EXPECT_EQ(Out.Delay, H.Delay);
  EXPECT_EQ(Out.Decay, H.Decay);
  EXPECT_EQ(Out.Budget, H.Budget);
  EXPECT_EQ(Out.SyncInterval, H.SyncInterval);
  EXPECT_EQ(Out.Scale, H.Scale);
  EXPECT_EQ(Out.Spec, H.Spec);
  EXPECT_EQ(Out.EntryBlock, H.EntryBlock);
  ASSERT_TRUE(Out.hasSeed());
  EXPECT_EQ(Out.Seed, H.Seed);
}

//===----------------------------------------------------------------------===//
// File capture and warm-seeded replay
//===----------------------------------------------------------------------===//

TEST(BtraceCaptureTest, WarmSeededFileCaptureReplays) {
  std::filesystem::path Dir = scratchDir("warm");
  std::string ProfilePath = (Dir / "donor.jtcp").string();
  std::string StreamPath = (Dir / "warm.btc").string();

  Module M = testprog::hotLoop(20000);
  PreparedModule PM(M);
  PersistError Err;
  {
    TraceVM Donor(PM, VmOptions());
    ASSERT_EQ(Donor.run().Status, RunStatus::Finished);
    ASSERT_GT(Donor.stats().LiveTraces, 0u);
    ASSERT_TRUE(persist::saveProfile(Donor, ProfilePath, Err))
        << Err.message();
  }

  TraceVM VM(PM, VmOptions().loadProfilePath(ProfilePath));
  persist::LoadReport Report;
  ASSERT_TRUE(persist::applyProfileOptions(VM, Report, Err))
      << Err.message();
  ASSERT_GT(Report.Traces, 0u);
  std::unique_ptr<BtraceFileCapture> Capture =
      BtraceFileCapture::start(VM, StreamPath, "test:hotLoop", 1, Err);
  ASSERT_TRUE(Capture) << Err.message();
  ASSERT_EQ(VM.run().Status, RunStatus::Finished);
  ASSERT_TRUE(Capture->finish(Err)) << Err.message();

  std::vector<uint8_t> Bytes = readFileBytes(StreamPath);
  ReplayResult RR;
  ASSERT_TRUE(replayBtrace(Bytes.data(), Bytes.size(), PM, RR, Err))
      << Err.message();
  EXPECT_TRUE(RR.Header.hasSeed());
  EXPECT_GT(RR.SeedNodes + RR.SeedTraces, 0u);
  EXPECT_TRUE(RR.DigestMatch);
  EXPECT_EQ(RR.ReplayDigest, VM.stats().digest());
  EXPECT_EQ(RR.Header.Spec, "test:hotLoop");
}

TEST(BtraceCaptureTest, UnwritablePathIsTypedIoError) {
  Module M = testprog::countingLoop(10);
  PreparedModule PM(M);
  TraceVM VM(PM, VmOptions());
  PersistError Err;
  std::unique_ptr<BtraceFileCapture> Capture = BtraceFileCapture::start(
      VM, "/nonexistent-dir/x/y.btc", "test", 1, Err);
  EXPECT_EQ(Capture, nullptr);
  EXPECT_EQ(Err.Kind, PersistErrorKind::Io);
}

//===----------------------------------------------------------------------===//
// Strictness: truncation and corruption sweeps
//===----------------------------------------------------------------------===//

TEST(BtraceStrictnessTest, EveryTruncationIsRejectedTyped) {
  Captured C(testprog::countingLoop(60), VmOptions(), /*SyncInterval=*/16);
  const std::vector<uint8_t> &Stream = C.Rec.stream();
  ASSERT_GT(Stream.size(), 16u);
  SuccessorTable ST(C.PM);
  for (size_t N = 0; N < Stream.size(); ++N) {
    BtraceHeader H;
    BtraceEnd E;
    PersistError Err;
    EXPECT_FALSE(
        decodeBtrace(Stream.data(), N, C.PM, ST, H, E, [](BlockId) {}, Err))
        << "prefix of " << N << " bytes decoded";
    EXPECT_NE(Err.Kind, PersistErrorKind::None) << "untyped error at " << N;
  }
}

TEST(BtraceStrictnessTest, EverySingleByteCorruptionIsRejectedTyped) {
  Captured C(testprog::countingLoop(60), VmOptions(), /*SyncInterval=*/16);
  SuccessorTable ST(C.PM);
  std::vector<uint8_t> Mutant;
  for (size_t I = 0; I < C.Rec.stream().size(); ++I) {
    Mutant = C.Rec.stream();
    Mutant[I] ^= 0x01;
    BtraceHeader H;
    BtraceEnd E;
    PersistError Err;
    EXPECT_FALSE(decodeBtrace(Mutant.data(), Mutant.size(), C.PM, ST, H, E,
                              [](BlockId) {}, Err))
        << "bit flip at byte " << I << " decoded";
    EXPECT_NE(Err.Kind, PersistErrorKind::None) << "untyped error at " << I;
  }
}

TEST(BtraceStrictnessTest, WrongModuleIsFingerprintGated) {
  Captured C(testprog::countingLoop(100));
  Module Other = testprog::switchProgram();
  PreparedModule OtherPM(Other);
  SuccessorTable ST(OtherPM);
  BtraceHeader H;
  BtraceEnd E;
  PersistError Err;
  EXPECT_FALSE(decodeBtrace(C.Rec.stream().data(), C.Rec.stream().size(),
                            OtherPM, ST, H, E, [](BlockId) {}, Err));
  EXPECT_EQ(Err.Kind, PersistErrorKind::FingerprintMismatch);
}

TEST(BtraceStrictnessTest, TrailingGarbageIsMalformed) {
  Captured C(testprog::countingLoop(100));
  std::vector<uint8_t> Stream = C.Rec.stream();
  Stream.push_back(0x00);
  SuccessorTable ST(C.PM);
  BtraceHeader H;
  BtraceEnd E;
  PersistError Err;
  EXPECT_FALSE(decodeBtrace(Stream.data(), Stream.size(), C.PM, ST, H, E,
                            [](BlockId) {}, Err));
  EXPECT_EQ(Err.Kind, PersistErrorKind::Malformed);
}

//===----------------------------------------------------------------------===//
// Loss tolerance: sync packets and tail recovery
//===----------------------------------------------------------------------===//

TEST(BtraceRecoveryTest, SyncPointsAreScannable) {
  Captured C(testprog::hotLoop(20000), VmOptions(), /*SyncInterval=*/128);
  std::vector<SyncPoint> Syncs =
      scanSyncPoints(C.Rec.stream().data(), C.Rec.stream().size());
  ASSERT_FALSE(Syncs.empty());
  // Sync packets assert the walk state at exact multiples of the
  // interval, in stream order.
  uint64_t Prev = 0;
  for (const SyncPoint &S : Syncs) {
    EXPECT_EQ(S.BlocksExecuted % 128, 0u);
    EXPECT_GT(S.BlocksExecuted, Prev);
    Prev = S.BlocksExecuted;
    ASSERT_LE(S.BlocksExecuted, C.Rec.blocks().size());
    EXPECT_EQ(S.Cur, C.Rec.blocks()[S.BlocksExecuted - 1]);
  }
}

TEST(BtraceRecoveryTest, TornStreamRecoversTrueSuffix) {
  Captured C(testprog::hotLoop(20000), VmOptions(), /*SyncInterval=*/128);
  const std::vector<BlockId> &Truth = C.Rec.blocks();

  // Tear off the end: strict decode must refuse, recovery must salvage.
  std::vector<uint8_t> Torn(C.Rec.stream().begin(),
                            C.Rec.stream().end() - 5);
  SuccessorTable ST(C.PM);
  BtraceHeader H;
  BtraceEnd E;
  PersistError Err;
  ASSERT_FALSE(decodeBtrace(Torn.data(), Torn.size(), C.PM, ST, H, E,
                            [](BlockId) {}, Err));
  EXPECT_EQ(Err.Kind, PersistErrorKind::Truncated);

  TailRecovery T = recoverTail(Torn.data(), Torn.size(), C.PM, ST);
  ASSERT_TRUE(T.Found);
  EXPECT_FALSE(T.SawEnd);
  ASSERT_FALSE(T.Blocks.empty());
  EXPECT_EQ(T.Blocks.front(), T.From.Cur);
  // The recovered walk is the true dispatch sequence from the sync point
  // on (possibly short of the very end, whose packets were torn off).
  ASSERT_GE(T.From.BlocksExecuted, 1u);
  size_t Start = static_cast<size_t>(T.From.BlocksExecuted) - 1;
  ASSERT_LE(Start + T.Blocks.size(), Truth.size());
  for (size_t I = 0; I < T.Blocks.size(); ++I)
    EXPECT_EQ(T.Blocks[I], Truth[Start + I]) << "at " << I;
}

TEST(BtraceRecoveryTest, FrontCorruptionStillRecoversTail) {
  Captured C(testprog::hotLoop(20000), VmOptions(), /*SyncInterval=*/128);
  const std::vector<BlockId> &Truth = C.Rec.blocks();
  std::vector<uint8_t> Damaged = C.Rec.stream();
  // Smash bytes shortly after the header -- upstream loss.
  ASSERT_GT(Damaged.size(), 300u);
  for (size_t I = 120; I < 140; ++I)
    Damaged[I] = 0xff;

  SuccessorTable ST(C.PM);
  TailRecovery T = recoverTail(Damaged.data(), Damaged.size(), C.PM, ST);
  ASSERT_TRUE(T.Found);
  ASSERT_FALSE(T.Blocks.empty());
  size_t Start = static_cast<size_t>(T.From.BlocksExecuted) - 1;
  ASSERT_LE(Start + T.Blocks.size(), Truth.size());
  for (size_t I = 0; I < T.Blocks.size(); ++I)
    ASSERT_EQ(T.Blocks[I], Truth[Start + I]) << "at " << I;
  // With the END packet intact the recovery reaches the stream's end.
  EXPECT_TRUE(T.SawEnd);
  EXPECT_EQ(Start + T.Blocks.size(), Truth.size());
}

//===----------------------------------------------------------------------===//
// Checked-in corpus fixtures
//===----------------------------------------------------------------------===//

TEST(BtraceCorpusTest, FixturesRejectWithTypedErrors) {
  const std::filesystem::path Dir = JTC_BTRACE_CORPUS_DIR;
  Module M = testprog::countingLoop(200);
  PreparedModule PM(M);
  SuccessorTable ST(PM);
  const struct {
    const char *File;
    PersistErrorKind Want;
  } Cases[] = {
      {"bad-magic.btc", PersistErrorKind::BadMagic},
      {"version-bump.btc", PersistErrorKind::VersionSkew},
      {"truncated.btc", PersistErrorKind::Truncated},
      {"bit-flip.btc", PersistErrorKind::ChecksumMismatch},
      {"wrong-module.btc", PersistErrorKind::FingerprintMismatch},
  };
  for (const auto &C : Cases) {
    std::vector<uint8_t> Bytes = readFileBytes(Dir / C.File);
    ASSERT_FALSE(Bytes.empty()) << C.File;
    BtraceHeader H;
    BtraceEnd E;
    PersistError Err;
    EXPECT_FALSE(decodeBtrace(Bytes.data(), Bytes.size(), PM, ST, H, E,
                              [](BlockId) {}, Err))
        << C.File << " decoded";
    EXPECT_EQ(Err.Kind, C.Want)
        << C.File << " rejected as " << persistErrorKindName(Err.Kind);
  }
}

TEST(BtraceCorpusTest, PristineFixtureReplays) {
  // pristine.btc is a valid capture of countingLoop(200): it must decode
  // and replay with a digest match on any build that speaks version 1.
  const std::filesystem::path Dir = JTC_BTRACE_CORPUS_DIR;
  std::vector<uint8_t> Bytes = readFileBytes(Dir / "pristine.btc");
  ASSERT_FALSE(Bytes.empty());
  Module M = testprog::countingLoop(200);
  PreparedModule PM(M);
  ReplayResult RR;
  PersistError Err;
  ASSERT_TRUE(replayBtrace(Bytes.data(), Bytes.size(), PM, RR, Err))
      << Err.message();
  EXPECT_TRUE(RR.DigestMatch);
}
