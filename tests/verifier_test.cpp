//===- tests/verifier_test.cpp - Static verifier ---------------------------===//

#include "bytecode/Verifier.h"

#include "TestPrograms.h"

#include <gtest/gtest.h>

using namespace jtc;

namespace {

/// Builds a single-method module around \p Code (0 args, \p Locals
/// locals, void) without going through the assembler, so malformed code
/// can be expressed.
Module rawModule(std::vector<Instruction> Code, uint32_t Locals = 2) {
  Module M;
  Method Main;
  Main.Name = "main";
  Main.NumLocals = Locals;
  Main.Code = std::move(Code);
  M.Methods.push_back(std::move(Main));
  M.EntryMethod = 0;
  return M;
}

bool hasErrorContaining(const Module &M, const std::string &Needle) {
  for (const VerifyError &E : verifyModule(M))
    if (E.Message.find(Needle) != std::string::npos)
      return true;
  return false;
}

} // namespace

TEST(VerifierTest, AcceptsHandBuiltPrograms) {
  EXPECT_TRUE(isValid(testprog::countingLoop(10)));
  EXPECT_TRUE(isValid(testprog::recursiveFactorial(5)));
  EXPECT_TRUE(isValid(testprog::virtualDispatch()));
  EXPECT_TRUE(isValid(testprog::switchProgram()));
  EXPECT_TRUE(isValid(testprog::arraySquares(8)));
  EXPECT_TRUE(isValid(testprog::hotLoop(100)));
  EXPECT_TRUE(isValid(testprog::divideByZero()));
}

TEST(VerifierTest, RejectsMissingEntryMethod) {
  Module M;
  M.EntryMethod = 3;
  EXPECT_TRUE(hasErrorContaining(M, "entry method does not exist"));
}

TEST(VerifierTest, RejectsEntryWithArguments) {
  Module M = rawModule({Instruction(Opcode::Halt)});
  M.Methods[0].NumArgs = 1;
  M.Methods[0].NumLocals = 1;
  EXPECT_TRUE(hasErrorContaining(M, "entry method must take no arguments"));
}

TEST(VerifierTest, RejectsEmptyMethod) {
  Module M = rawModule({});
  EXPECT_TRUE(hasErrorContaining(M, "no code"));
}

TEST(VerifierTest, RejectsLocalOutOfRange) {
  Module M = rawModule({Instruction(Opcode::Iload, 5),
                        Instruction(Opcode::Pop), Instruction(Opcode::Halt)},
                       /*Locals=*/2);
  EXPECT_TRUE(hasErrorContaining(M, "local index out of range"));
}

TEST(VerifierTest, RejectsFewerLocalsThanArgs) {
  Module M = rawModule({Instruction(Opcode::Halt)});
  Method Extra;
  Extra.Name = "f";
  Extra.NumArgs = 3;
  Extra.NumLocals = 1;
  Extra.Code = {Instruction(Opcode::Return)};
  M.Methods.push_back(std::move(Extra));
  EXPECT_TRUE(hasErrorContaining(M, "fewer locals than arguments"));
}

TEST(VerifierTest, RejectsBranchTargetOutOfRange) {
  Module M = rawModule({Instruction(Opcode::Goto, 99)});
  EXPECT_TRUE(hasErrorContaining(M, "branch target out of range"));
}

TEST(VerifierTest, RejectsSwitchTableIndexOutOfRange) {
  Module M = rawModule({Instruction(Opcode::Iconst, 0),
                        Instruction(Opcode::Tableswitch, 2)});
  EXPECT_TRUE(hasErrorContaining(M, "switch table index out of range"));
}

TEST(VerifierTest, RejectsSwitchCaseTargetOutOfRange) {
  Module M = rawModule({Instruction(Opcode::Iconst, 0),
                        Instruction(Opcode::Tableswitch, 0),
                        Instruction(Opcode::Halt)});
  SwitchTable T;
  T.Low = 0;
  T.Targets = {77};
  T.DefaultTarget = 2;
  M.Methods[0].SwitchTables.push_back(T);
  EXPECT_TRUE(hasErrorContaining(M, "switch case target out of range"));
}

TEST(VerifierTest, RejectsUnknownInvokeStaticTarget) {
  Module M = rawModule({Instruction(Opcode::InvokeStatic, 9),
                        Instruction(Opcode::Halt)});
  EXPECT_TRUE(hasErrorContaining(M, "unknown method"));
}

TEST(VerifierTest, RejectsUnknownVirtualSlot) {
  Module M = rawModule({Instruction(Opcode::Iconst, 0),
                        Instruction(Opcode::InvokeVirtual, 4),
                        Instruction(Opcode::Halt)});
  EXPECT_TRUE(hasErrorContaining(M, "unknown slot"));
}

TEST(VerifierTest, RejectsUnknownClassInNew) {
  Module M = rawModule({Instruction(Opcode::New, 0),
                        Instruction(Opcode::Pop), Instruction(Opcode::Halt)});
  EXPECT_TRUE(hasErrorContaining(M, "unknown class"));
}

TEST(VerifierTest, RejectsStackUnderflow) {
  Module M = rawModule({Instruction(Opcode::Iadd), Instruction(Opcode::Halt)});
  EXPECT_TRUE(hasErrorContaining(M, "underflow"));
}

TEST(VerifierTest, RejectsCallSiteUnderflow) {
  Module M = rawModule({Instruction(Opcode::Halt)});
  Method F;
  F.Name = "f";
  F.NumArgs = 2;
  F.NumLocals = 2;
  F.ReturnsValue = true;
  F.Code = {Instruction(Opcode::Iconst, 0), Instruction(Opcode::Ireturn)};
  M.Methods.push_back(std::move(F));
  // main calls f with only one argument on the stack.
  M.Methods[0].Code = {Instruction(Opcode::Iconst, 1),
                       Instruction(Opcode::InvokeStatic, 1),
                       Instruction(Opcode::Pop), Instruction(Opcode::Halt)};
  EXPECT_TRUE(hasErrorContaining(M, "underflow"));
}

TEST(VerifierTest, RejectsInconsistentMergeHeights) {
  // Branch: one path pushes a value, the other does not, then they merge.
  Module M = rawModule({
      Instruction(Opcode::Iconst, 1), // 0: height 0 -> 1
      Instruction(Opcode::IfEq, 3),   // 1: height 1 -> 0; to 3 or fall to 2
      Instruction(Opcode::Iconst, 7), // 2: height 0 -> 1; falls into 3
      Instruction(Opcode::Halt),      // 3: reached with height 0 and 1
  });
  EXPECT_TRUE(hasErrorContaining(M, "inconsistent stack height"));
}

TEST(VerifierTest, RejectsFallingOffTheEnd) {
  Module M = rawModule({Instruction(Opcode::Nop)});
  EXPECT_TRUE(hasErrorContaining(M, "falls off the end"));
}

TEST(VerifierTest, RejectsIreturnInVoidMethod) {
  Module M = rawModule({Instruction(Opcode::Iconst, 1),
                        Instruction(Opcode::Ireturn)});
  EXPECT_TRUE(hasErrorContaining(M, "ireturn in a void method"));
}

TEST(VerifierTest, RejectsReturnInValueMethod) {
  Module M = rawModule({Instruction(Opcode::Halt)});
  Method F;
  F.Name = "f";
  F.NumArgs = 0;
  F.NumLocals = 0;
  F.ReturnsValue = true;
  F.Code = {Instruction(Opcode::Return)};
  M.Methods.push_back(std::move(F));
  EXPECT_TRUE(hasErrorContaining(M, "return in a value-returning method"));
}

TEST(VerifierTest, AllowsLeftoverStackAtReturn) {
  // JVM-style: residue on the operand stack at return is fine.
  Module M = rawModule({Instruction(Opcode::Iconst, 1),
                        Instruction(Opcode::Iconst, 2),
                        Instruction(Opcode::Halt)});
  EXPECT_TRUE(isValid(M));
}

TEST(VerifierTest, RejectsVtableSignatureMismatch) {
  Module M = rawModule({Instruction(Opcode::Halt)});
  Method Impl;
  Impl.Name = "impl";
  Impl.NumArgs = 1;
  Impl.NumLocals = 1;
  Impl.ReturnsValue = false;
  Impl.Code = {Instruction(Opcode::Return)};
  M.Methods.push_back(std::move(Impl));
  M.Slots.push_back({"s", /*ArgCount=*/2, /*ReturnsValue=*/true});
  Class C;
  C.Name = "C";
  C.Vtable = {1};
  M.Classes.push_back(std::move(C));
  EXPECT_TRUE(hasErrorContaining(M, "does not match slot"));
}

TEST(VerifierTest, RejectsMisSizedVtable) {
  Module M = rawModule({Instruction(Opcode::Halt)});
  M.Slots.push_back({"s", 1, false});
  Class C;
  C.Name = "C";
  // Vtable left empty while one slot exists.
  M.Classes.push_back(std::move(C));
  EXPECT_TRUE(hasErrorContaining(M, "mis-sized vtable"));
}

TEST(VerifierTest, UnreachableGarbageIsIgnoredWhenTerminated) {
  // Dead code after a halt is never flow-analyzed (no height or type
  // checks), matching the JVM verifier's treatment of unreachable code
  // regions -- as long as the method still ends in a terminator.
  Module M = rawModule({Instruction(Opcode::Halt), Instruction(Opcode::Iadd),
                        Instruction(Opcode::Halt)});
  EXPECT_TRUE(isValid(M));
}

TEST(VerifierTest, RejectsDeadFalloffViaUnreachablePath) {
  // The last instruction is unreachable, but a method whose final
  // instruction is not a terminator is rejected structurally: no path,
  // reachable or not, may fall off the end of the code.
  Module M = rawModule({Instruction(Opcode::Halt), Instruction(Opcode::Iadd)});
  std::string S = formatErrors(verifyModule(M));
  EXPECT_NE(S.find("fall off the end"), std::string::npos) << S;
}

TEST(VerifierTest, FormatErrorsIsReadable) {
  Module M = rawModule({Instruction(Opcode::Goto, 99)});
  std::string S = formatErrors(verifyModule(M));
  EXPECT_NE(S.find("method 0"), std::string::npos);
  EXPECT_NE(S.find("branch target"), std::string::npos);
}

TEST(VerifierTest, AcceptsRandomGeneratedPrograms) {
  for (uint64_t Seed = 1; Seed <= 30; ++Seed) {
    testprog::RandomProgramBuilder Gen(Seed);
    Module M = Gen.build();
    EXPECT_TRUE(isValid(M)) << "seed " << Seed << ":\n"
                            << formatErrors(verifyModule(M));
  }
}

//===----------------------------------------------------------------------===//
// Fuzz-found regressions
//
// Malformed shapes the minimizer and generator can produce while
// mutating control flow. The contract under test is the fuzzer's safety
// net: the verifier must *reject* each of these (so the oracle never
// executes them), and must do so by returning errors -- not by
// crashing or asserting.
//===----------------------------------------------------------------------===//

namespace {

/// Single-method module whose Tableswitch at pc 1 uses \p Table.
Module switchModule(SwitchTable Table) {
  Module M = rawModule({Instruction(Opcode::Iconst, 0),
                        Instruction(Opcode::Tableswitch, 0),
                        Instruction(Opcode::Halt)});
  M.Methods[0].SwitchTables.push_back(std::move(Table));
  return M;
}

} // namespace

TEST(VerifierFuzzRegression, RejectsSwitchTableIndexOutOfRange) {
  // A deleted statement can orphan a Tableswitch from its table.
  Module M = rawModule({Instruction(Opcode::Iconst, 0),
                        Instruction(Opcode::Tableswitch, 3),
                        Instruction(Opcode::Halt)});
  EXPECT_TRUE(hasErrorContaining(M, "switch table index out of range"));
}

TEST(VerifierFuzzRegression, RejectsSwitchCaseTargetOutOfRange) {
  SwitchTable T;
  T.Targets = {2, 57}; // Second case points past the code.
  T.DefaultTarget = 2;
  EXPECT_TRUE(
      hasErrorContaining(switchModule(T), "switch case target out of range"));
}

TEST(VerifierFuzzRegression, RejectsSwitchDefaultTargetOutOfRange) {
  SwitchTable T;
  T.Targets = {2};
  T.DefaultTarget = 33;
  EXPECT_TRUE(hasErrorContaining(switchModule(T),
                                 "switch default target out of range"));
}

TEST(VerifierFuzzRegression, AcceptsEmptySwitchTargetListWithValidDefault) {
  // An empty case list is legal: every selector takes the default.
  SwitchTable T;
  T.Targets = {};
  T.DefaultTarget = 2;
  EXPECT_TRUE(isValid(switchModule(T)));
}

TEST(VerifierFuzzRegression, RejectsFallthroughPastLastInstruction) {
  // Truncating a method mid-block leaves a Normal instruction last;
  // execution would run off the code array.
  Module M = rawModule({Instruction(Opcode::Iconst, 1),
                        Instruction(Opcode::Iconst, 2),
                        Instruction(Opcode::Iadd)});
  EXPECT_TRUE(hasErrorContaining(M, "falls off the end"));
}

TEST(VerifierFuzzRegression, RejectsBranchFallthroughPastEnd) {
  // A not-taken conditional as the final instruction also falls off.
  Module M = rawModule({Instruction(Opcode::Iconst, 0),
                        Instruction(Opcode::IfEq, 0)});
  EXPECT_TRUE(hasErrorContaining(M, "falls off the end"));
}

TEST(VerifierFuzzRegression, RejectsStoreToOutOfRangeLocal) {
  // Locals shrink when a method is re-declared smaller; stale istore
  // indices must be caught, not scribble past the frame.
  Module M = rawModule({Instruction(Opcode::Iconst, 7),
                        Instruction(Opcode::Istore, 2),
                        Instruction(Opcode::Halt)},
                       /*Locals=*/2);
  EXPECT_TRUE(hasErrorContaining(M, "local index out of range"));
}

TEST(VerifierFuzzRegression, RejectsIincOfOutOfRangeLocal) {
  Module M = rawModule({Instruction(Opcode::Iinc, 9, 1),
                        Instruction(Opcode::Halt)},
                       /*Locals=*/2);
  EXPECT_TRUE(hasErrorContaining(M, "local index out of range"));
}

TEST(VerifierFuzzRegression, MalformedModulesNeverCrashTheVerifier) {
  // Belt and braces: throw every malformed shape above (and a few
  // combinations) through verifyModule and only require that it returns.
  std::vector<Module> Cases;
  Cases.push_back(rawModule({Instruction(Opcode::Tableswitch, 0)}));
  Cases.push_back(rawModule({Instruction(Opcode::Iconst, 0),
                             Instruction(Opcode::Tableswitch, -1),
                             Instruction(Opcode::Halt)}));
  SwitchTable Wild;
  Wild.Low = INT32_MIN;
  Wild.Targets = {0xffffffffu};
  Wild.DefaultTarget = 0xffffffffu;
  Cases.push_back(switchModule(Wild));
  Cases.push_back(rawModule({Instruction(Opcode::Iload, -1),
                             Instruction(Opcode::Pop),
                             Instruction(Opcode::Halt)}));
  Cases.push_back(rawModule({Instruction(Opcode::Goto, -5)}));
  for (size_t I = 0; I < Cases.size(); ++I)
    EXPECT_FALSE(verifyModule(Cases[I]).empty()) << "case " << I;
}
