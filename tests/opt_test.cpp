//===- tests/opt_test.cpp - Trace optimizer -------------------------------===//
///
/// The optimizer's contract is observational equivalence on the straight
/// line: executed from any initial (locals, stack), an optimized segment
/// must produce the same final locals, operand stack and Iprint output as
/// the original. A small evaluator checks this on hand-built segments and
/// on every segment of every trace the VM builds for the workloads.
///
//===----------------------------------------------------------------------===//

#include "opt/TraceOptimizer.h"

#include "TestPrograms.h"
#include "analysis/Analysis.h"
#include "text/AsmParser.h"
#include "validate/Validator.h"
#include "vm/TraceVM.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <filesystem>

using namespace jtc;

namespace {

/// Final state of a straight-line evaluation.
struct EvalState {
  std::vector<int64_t> Locals;
  std::vector<int64_t> Stack;
  std::vector<int64_t> Output;

  bool operator==(const EvalState &O) const = default;
};

/// Executes \p Seg from the given initial state. Guards pop their
/// operands and continue (pure assertions). Heap-touching segments are
/// not evaluable here; returns false for those.
///
/// With \p StopAtGuard >= 0, execution halts right after the operands of
/// the StopAtGuard-th guard are popped -- the state an interpreter would
/// resume from if that guard fired. Returns false when the segment has
/// fewer guards.
bool evaluate(const LinearSegment &Seg, EvalState &S, int StopAtGuard = -1) {
  auto Pop = [&S]() {
    EXPECT_FALSE(S.Stack.empty()) << "segment consumed more than provided";
    if (S.Stack.empty())
      return static_cast<int64_t>(0);
    int64_t V = S.Stack.back();
    S.Stack.pop_back();
    return V;
  };
  auto Push = [&S](int64_t V) { S.Stack.push_back(V); };
  auto U = [](int64_t V) { return static_cast<uint64_t>(V); };

  int GuardIndex = -1;
  for (const LinearOp &Op : Seg.Ops) {
    if (Op.K == LinearOp::Kind::Guard) {
      for (int P = 0; P < opPops(Op.I.Op); ++P)
        Pop();
      if (++GuardIndex == StopAtGuard)
        return true;
      continue;
    }
    const Instruction &I = Op.I;
    switch (I.Op) {
    case Opcode::Nop:
      break;
    case Opcode::Iconst:
      Push(I.A);
      break;
    case Opcode::Iload:
      Push(S.Locals[static_cast<uint32_t>(I.A)]);
      break;
    case Opcode::Istore:
      S.Locals[static_cast<uint32_t>(I.A)] = Pop();
      break;
    case Opcode::Iinc:
      S.Locals[static_cast<uint32_t>(I.A)] += I.B;
      break;
    case Opcode::Pop:
      Pop();
      break;
    case Opcode::Dup: {
      int64_t V = Pop();
      Push(V);
      Push(V);
      break;
    }
    case Opcode::Swap: {
      int64_t B = Pop(), A = Pop();
      Push(B);
      Push(A);
      break;
    }
    case Opcode::Iadd: {
      int64_t B = Pop(), A = Pop();
      Push(static_cast<int64_t>(U(A) + U(B)));
      break;
    }
    case Opcode::Isub: {
      int64_t B = Pop(), A = Pop();
      Push(static_cast<int64_t>(U(A) - U(B)));
      break;
    }
    case Opcode::Imul: {
      int64_t B = Pop(), A = Pop();
      Push(static_cast<int64_t>(U(A) * U(B)));
      break;
    }
    case Opcode::Idiv: {
      int64_t B = Pop(), A = Pop();
      if (B == 0)
        return false; // would trap; not comparable here
      Push(A / B);
      break;
    }
    case Opcode::Irem: {
      int64_t B = Pop(), A = Pop();
      if (B == 0)
        return false;
      Push(A % B);
      break;
    }
    case Opcode::Ineg:
      Push(static_cast<int64_t>(0 - U(Pop())));
      break;
    case Opcode::Ishl: {
      int64_t B = Pop(), A = Pop();
      Push(static_cast<int64_t>(U(A) << (B & 63)));
      break;
    }
    case Opcode::Ishr: {
      int64_t B = Pop(), A = Pop();
      Push(A >> (B & 63));
      break;
    }
    case Opcode::Iushr: {
      int64_t B = Pop(), A = Pop();
      Push(static_cast<int64_t>(U(A) >> (B & 63)));
      break;
    }
    case Opcode::Iand: {
      int64_t B = Pop(), A = Pop();
      Push(A & B);
      break;
    }
    case Opcode::Ior: {
      int64_t B = Pop(), A = Pop();
      Push(A | B);
      break;
    }
    case Opcode::Ixor: {
      int64_t B = Pop(), A = Pop();
      Push(A ^ B);
      break;
    }
    case Opcode::Iprint:
      S.Output.push_back(Pop());
      break;
    default:
      return false; // heap or control op: not evaluable
    }
  }
  return StopAtGuard < 0; // requested guard must exist
}

/// A random initial state for \p Seg. Locals the segment declares as
/// statically constant at entry (EntryConsts) are pinned to those values
/// -- the optimizer is entitled to assume them.
EvalState initialState(const LinearSegment &Seg, uint32_t NumLocals,
                       Prng &Rng) {
  EvalState S;
  S.Locals.resize(NumLocals);
  for (auto &L : S.Locals)
    L = Rng.nextInRange(-1000, 1000);
  for (const auto &[L, C] : Seg.EntryConsts)
    S.Locals[L] = C;
  // Generous incoming stack for segments that consume prior operands.
  for (int I = 0; I < 8; ++I)
    S.Stack.push_back(Rng.nextInRange(-1000, 1000));
  return S;
}

/// Checks equivalence of \p Before and \p After over several random
/// initial states. Locals at or above the segments' ScratchBase are
/// synthetic inlined-frame slots, dead outside the segment, and are not
/// compared. Returns the number of states actually compared.
unsigned expectEquivalent(const LinearSegment &Before,
                          const LinearSegment &After, uint64_t Seed) {
  EXPECT_EQ(Before.ScratchBase, After.ScratchBase);
  uint32_t NumLocals = std::max(Before.NumLocals, After.NumLocals);
  Prng Rng(Seed);
  unsigned Compared = 0;
  for (unsigned Round = 0; Round < 8; ++Round) {
    EvalState S1 = initialState(Before, NumLocals, Rng);
    EvalState S2 = S1;
    if (!evaluate(Before, S1))
      continue; // heap-touching or trapping: cannot compare
    bool Ok = evaluate(After, S2);
    EXPECT_TRUE(Ok) << "optimized segment must stay evaluable";
    S1.Locals.resize(Before.ScratchBase);
    S2.Locals.resize(Before.ScratchBase);
    EXPECT_EQ(S1, S2);
    ++Compared;
  }
  return Compared;
}

/// Simulates every guard of \p After firing and checks the state an
/// interpreter would resume from against the unoptimized \p Before: the
/// stack, output, and every live local must agree; locals the guard's
/// LiveAtExit set declares dead may differ. Only comparable when no
/// guard was eliminated (guard k of After is then guard k of Before).
/// Returns the number of (state, guard) pairs compared.
unsigned expectExitEquivalent(const LinearSegment &Before,
                              const LinearSegment &After, uint64_t Seed) {
  std::vector<const LinearOp *> GuardsB, GuardsA;
  for (const LinearOp &Op : Before.Ops)
    if (Op.K == LinearOp::Kind::Guard)
      GuardsB.push_back(&Op);
  for (const LinearOp &Op : After.Ops)
    if (Op.K == LinearOp::Kind::Guard)
      GuardsA.push_back(&Op);
  if (GuardsB.size() != GuardsA.size())
    return 0; // eliminated guards: indices no longer correspond
  uint32_t NumLocals = std::max(Before.NumLocals, After.NumLocals);
  Prng Rng(Seed);
  unsigned Compared = 0;
  for (unsigned G = 0; G < GuardsA.size(); ++G) {
    for (unsigned Round = 0; Round < 4; ++Round) {
      EvalState S1 = initialState(Before, NumLocals, Rng);
      EvalState S2 = S1;
      if (!evaluate(Before, S1, static_cast<int>(G)))
        continue;
      bool Ok = evaluate(After, S2, static_cast<int>(G));
      EXPECT_TRUE(Ok) << "optimized segment lost a guard";
      if (!Ok)
        continue;
      EXPECT_EQ(S1.Stack, S2.Stack);
      EXPECT_EQ(S1.Output, S2.Output);
      const LinearOp *Op = GuardsA[G];
      for (uint32_t L = 0; L < Before.ScratchBase; ++L) {
        if (Op->HasLiveAtExit && !Op->LiveAtExit.test(L))
          continue; // dead at this exit: allowed to be stale
        EXPECT_EQ(S1.Locals[L], S2.Locals[L])
            << "live local " << L << " diverges at guard " << G;
      }
      ++Compared;
    }
  }
  return Compared;
}

/// Builds a segment from raw ops (no guards).
LinearSegment segment(std::vector<Instruction> Code, uint32_t Locals = 4) {
  LinearSegment S;
  S.NumLocals = Locals;
  S.ScratchBase = Locals;
  for (const Instruction &I : Code)
    S.Ops.push_back(LinearOp::instr(I));
  return S;
}

} // namespace

//===----------------------------------------------------------------------===//
// Targeted transformations
//===----------------------------------------------------------------------===//

TEST(OptimizerTest, FoldsConstantArithmetic) {
  LinearSegment In = segment({
      Instruction(Opcode::Iconst, 6),
      Instruction(Opcode::Iconst, 7),
      Instruction(Opcode::Imul),
      Instruction(Opcode::Iprint),
  });
  OptStats St;
  LinearSegment Out = optimizeSegment(In, St);
  EXPECT_EQ(St.ConstantsFolded, 1u);
  EXPECT_EQ(Out.numInstructions(), 2u) << "iconst 42; iprint";
  expectEquivalent(In, Out, 1);
}

TEST(OptimizerTest, ForwardsStoredConstantsThroughLocals) {
  LinearSegment In = segment({
      Instruction(Opcode::Iconst, 5),
      Instruction(Opcode::Istore, 0),
      Instruction(Opcode::Iload, 0),
      Instruction(Opcode::Iload, 0),
      Instruction(Opcode::Iadd),
      Instruction(Opcode::Iprint),
  });
  OptStats St;
  LinearSegment Out = optimizeSegment(In, St);
  EXPECT_GT(St.LoadsForwarded, 0u);
  // iconst 10; iprint; iconst 5; istore 0 (the store is still observable
  // at segment end).
  EXPECT_EQ(Out.numInstructions(), 4u);
  expectEquivalent(In, Out, 2);
}

TEST(OptimizerTest, EliminatesDeadStores) {
  LinearSegment In = segment({
      Instruction(Opcode::Iconst, 1),
      Instruction(Opcode::Istore, 2),
      Instruction(Opcode::Iconst, 2),
      Instruction(Opcode::Istore, 2), // kills the first store
  });
  OptStats St;
  LinearSegment Out = optimizeSegment(In, St);
  EXPECT_EQ(St.DeadStores, 1u);
  EXPECT_EQ(Out.numInstructions(), 2u) << "iconst 2; istore 2";
  expectEquivalent(In, Out, 3);
}

TEST(OptimizerTest, EliminatesRedundantHeapLoads) {
  // The second getfield reads the same field of the same base with no
  // intervening clobber, and the first read's value is still at hand in
  // local 1; the alias analysis proves the reload redundant. Heap
  // segments are not evaluable here, so the validator stands in as the
  // equivalence oracle.
  LinearSegment In = segment({
      Instruction(Opcode::Iload, 0),
      Instruction(Opcode::GetField, 0),
      Instruction(Opcode::Istore, 1), // t = o.f
      Instruction(Opcode::Iload, 0),
      Instruction(Opcode::GetField, 0), // o.f again: redundant
      Instruction(Opcode::Iload, 1),
      Instruction(Opcode::Iadd),
      Instruction(Opcode::Iprint),
  });
  OptStats St;
  LinearSegment Out = optimizeSegment(In, St);
  EXPECT_GE(St.MemLoadsEliminated, 1u);
  validate::Result R = validate::validateSegment(In, Out);
  EXPECT_TRUE(R.Ok) << validate::reasonName(R.Why) << ": " << R.Detail;
}

TEST(OptimizerTest, EliminatesDeadHeapStores) {
  LinearSegment In = segment({
      Instruction(Opcode::Iload, 0),
      Instruction(Opcode::Iconst, 1),
      Instruction(Opcode::PutField, 0), // killed by the store below
      Instruction(Opcode::Iload, 0),
      Instruction(Opcode::Iconst, 2),
      Instruction(Opcode::PutField, 0),
  });
  OptStats St;
  LinearSegment Out = optimizeSegment(In, St);
  EXPECT_GE(St.MemDeadStores, 1u);
  validate::Result R = validate::validateSegment(In, Out);
  EXPECT_TRUE(R.Ok) << validate::reasonName(R.Why) << ": " << R.Detail;
}

TEST(OptimizerTest, MemoryPassesRespectTheirConfigGates) {
  LinearSegment In = segment({
      Instruction(Opcode::Iload, 0),
      Instruction(Opcode::Iconst, 1),
      Instruction(Opcode::PutField, 0),
      Instruction(Opcode::Iload, 0),
      Instruction(Opcode::Iconst, 2),
      Instruction(Opcode::PutField, 0),
      Instruction(Opcode::Iload, 0),
      Instruction(Opcode::GetField, 0),
      Instruction(Opcode::Iprint),
      Instruction(Opcode::Iload, 0),
      Instruction(Opcode::GetField, 0),
      Instruction(Opcode::Iprint),
  });
  OptConfig Off;
  Off.ElimRedundantLoads = false;
  Off.ElimDeadStores = false;
  Off.SinkStores = false;
  OptStats St;
  LinearSegment Out = optimizeSegment(In, St, Off);
  EXPECT_EQ(St.MemLoadsEliminated, 0u);
  EXPECT_EQ(St.MemDeadStores, 0u);
  EXPECT_EQ(St.MemStoresSunk, 0u);
  validate::Result R = validate::validateSegment(In, Out);
  EXPECT_TRUE(R.Ok) << validate::reasonName(R.Why) << ": " << R.Detail;
}

TEST(OptimizerTest, CancelsLoadStoreOfSameLocal) {
  LinearSegment In = segment({
      Instruction(Opcode::Iload, 1),
      Instruction(Opcode::Istore, 1),
  });
  OptStats St;
  LinearSegment Out = optimizeSegment(In, St);
  EXPECT_EQ(Out.numInstructions(), 0u);
  expectEquivalent(In, Out, 4);
}

TEST(OptimizerTest, DropsDeferredPushPopPairs) {
  LinearSegment In = segment({
      Instruction(Opcode::Iconst, 9),
      Instruction(Opcode::Pop),
      Instruction(Opcode::Nop),
  });
  OptStats St;
  LinearSegment Out = optimizeSegment(In, St);
  EXPECT_EQ(Out.numInstructions(), 0u);
  expectEquivalent(In, Out, 5);
}

TEST(OptimizerTest, FoldsIincChains) {
  LinearSegment In = segment({
      Instruction(Opcode::Iconst, 10),
      Instruction(Opcode::Istore, 0),
      Instruction(Opcode::Iinc, 0, 5),
      Instruction(Opcode::Iinc, 0, -2),
      Instruction(Opcode::Iload, 0),
      Instruction(Opcode::Iprint),
  });
  OptStats St;
  LinearSegment Out = optimizeSegment(In, St);
  EXPECT_EQ(St.ConstantsFolded, 2u);
  // iconst 13; iprint; iconst 13; istore 0.
  EXPECT_EQ(Out.numInstructions(), 4u);
  expectEquivalent(In, Out, 6);
}

TEST(OptimizerTest, EliminatesStaticallyTrueGuards) {
  LinearSegment In = segment({
      Instruction(Opcode::Iconst, 0),
  });
  In.Ops.push_back(LinearOp::guard(Opcode::IfEq, /*Taken=*/true));
  OptStats St;
  LinearSegment Out = optimizeSegment(In, St);
  EXPECT_EQ(St.GuardsEliminated, 1u);
  EXPECT_TRUE(Out.Ops.empty());
}

TEST(OptimizerTest, KeepsDataDependentGuardsAndFlushesState) {
  LinearSegment In = segment({
      Instruction(Opcode::Iconst, 3),
      Instruction(Opcode::Istore, 0), // deferred store
      Instruction(Opcode::Iload, 1),  // unknown value
  });
  In.Ops.push_back(LinearOp::guard(Opcode::IfNe, /*Taken=*/true));
  OptStats St;
  LinearSegment Out = optimizeSegment(In, St);
  EXPECT_EQ(St.GuardsAfter, 1u);
  // The deferred store must be flushed before the guard.
  bool StoreBeforeGuard = false;
  for (const LinearOp &Op : Out.Ops) {
    if (Op.K == LinearOp::Kind::Guard)
      break;
    StoreBeforeGuard |=
        Op.I.Op == Opcode::Istore && Op.I.A == 0;
  }
  EXPECT_TRUE(StoreBeforeGuard);
  expectEquivalent(In, Out, 7);
}

TEST(OptimizerTest, DoesNotFoldDivisionByZero) {
  LinearSegment In = segment({
      Instruction(Opcode::Iconst, 5),
      Instruction(Opcode::Iconst, 0),
      Instruction(Opcode::Idiv),
      Instruction(Opcode::Pop),
  });
  OptStats St;
  LinearSegment Out = optimizeSegment(In, St);
  EXPECT_EQ(St.ConstantsFolded, 0u);
  // The trapping division must survive.
  bool HasDiv = false;
  for (const LinearOp &Op : Out.Ops)
    HasDiv |= Op.K == LinearOp::Kind::Instr && Op.I.Op == Opcode::Idiv;
  EXPECT_TRUE(HasDiv);
}

TEST(OptimizerTest, DoesNotFoldOutOfImmediateRange) {
  LinearSegment In = segment({
      Instruction(Opcode::Iconst, 2000000000),
      Instruction(Opcode::Iconst, 2000000000),
      Instruction(Opcode::Imul),
      Instruction(Opcode::Iprint),
  });
  OptStats St;
  LinearSegment Out = optimizeSegment(In, St);
  EXPECT_EQ(St.ConstantsFolded, 0u);
  expectEquivalent(In, Out, 8);
}

TEST(OptimizerTest, HandlesIncomingStackOperands) {
  // The segment consumes two values that were pushed before it began
  // (e.g. call arguments staged across a block boundary).
  LinearSegment In = segment({
      Instruction(Opcode::Iadd),
      Instruction(Opcode::Istore, 0),
  });
  OptStats St;
  LinearSegment Out = optimizeSegment(In, St);
  expectEquivalent(In, Out, 9);
}

//===----------------------------------------------------------------------===//
// Linearization
//===----------------------------------------------------------------------===//

TEST(LinearizerTest, GuardsCarryTheRecordedDirection) {
  Module M = testprog::hotLoop(100000);
  PreparedModule PM(M);
  TraceVM VM(PM, VmOptions());
  VM.run();
  bool SawGuard = false;
  for (const Trace &T : VM.traceCache().traces()) {
    if (!T.Alive)
      continue;
    for (const LinearSegment &Seg : linearizeTrace(PM, T))
      for (const LinearOp &Op : Seg.Ops)
        if (Op.K == LinearOp::Kind::Guard) {
          SawGuard = true;
          EXPECT_TRUE(opKind(Op.I.Op) == OpKind::Branch ||
                      opKind(Op.I.Op) == OpKind::Switch);
        }
  }
  EXPECT_TRUE(SawGuard) << "hot-loop traces must contain guarded branches";
}

TEST(LinearizerTest, SegmentsBreakAtCalls) {
  Module M = testprog::recursiveFactorial(10);
  PreparedModule PM(M);
  TraceVM VM(PM, VmOptions().startStateDelay(1).decayInterval(4));
  VM.run();
  for (const Trace &T : VM.traceCache().traces()) {
    for (const LinearSegment &Seg : linearizeTrace(PM, T))
      for (const LinearOp &Op : Seg.Ops)
        if (Op.K == LinearOp::Kind::Instr) {
          EXPECT_TRUE(opKind(Op.I.Op) == OpKind::Normal)
              << "calls/returns must not appear inside segments";
        }
  }
}

//===----------------------------------------------------------------------===//
// Whole-trace equivalence over the real workloads
//===----------------------------------------------------------------------===//

TEST(OptimizerTest, AllWorkloadTraceSegmentsStayEquivalent) {
  uint64_t Seed = 42;
  for (const WorkloadInfo &W : allWorkloads()) {
    Module M = W.Build(std::max(1u, W.DefaultScale / 50));
    PreparedModule PM(M);
    TraceVM VM(PM, VmOptions());
    VM.run();
    unsigned Segments = 0, Compared = 0;
    for (const Trace &T : VM.traceCache().traces()) {
      if (!T.Alive)
        continue;
      OptStats St;
      for (const LinearSegment &Seg : linearizeTrace(PM, T)) {
        LinearSegment Opt = optimizeSegment(Seg, St);
        EXPECT_LE(Opt.numInstructions(), Seg.numInstructions() + 2)
            << W.Name << ": optimization should not bloat code";
        Compared += expectEquivalent(Seg, Opt, ++Seed);
        ++Segments;
      }
    }
    EXPECT_GT(Segments, 0u) << W.Name;
    EXPECT_GT(Compared, 0u) << W.Name;
  }
}

TEST(OptimizerTest, ReductionIsMeasurableOnRealTraces) {
  Module M = testprog::hotLoop(100000);
  PreparedModule PM(M);
  TraceVM VM(PM, VmOptions());
  VM.run();
  OptStats St;
  for (const Trace &T : VM.traceCache().traces())
    if (T.Alive)
      optimizeTrace(PM, T, St);
  EXPECT_GT(St.InstructionsBefore, 0u);
  EXPECT_LE(St.InstructionsAfter, St.InstructionsBefore);
}

//===----------------------------------------------------------------------===//
// Copy propagation and call inlining
//===----------------------------------------------------------------------===//

TEST(OptimizerTest, PropagatesCopiesThroughLocals) {
  // x = y; print(x + x): both loads of x forward to y, and the store of
  // x defers until the segment end.
  LinearSegment In = segment({
      Instruction(Opcode::Iload, 1),
      Instruction(Opcode::Istore, 0),
      Instruction(Opcode::Iload, 0),
      Instruction(Opcode::Iload, 0),
      Instruction(Opcode::Iadd),
      Instruction(Opcode::Iprint),
  });
  OptStats St;
  LinearSegment Out = optimizeSegment(In, St);
  EXPECT_GE(St.LoadsForwarded, 2u);
  expectEquivalent(In, Out, 31);
}

TEST(OptimizerTest, PinsCopiesBeforeTheSourceChanges) {
  // x = y; y = 7; print(x): x's deferred copy must be flushed before y
  // is overwritten.
  LinearSegment In = segment({
      Instruction(Opcode::Iload, 1),
      Instruction(Opcode::Istore, 0),
      Instruction(Opcode::Iconst, 7),
      Instruction(Opcode::Istore, 1),
      Instruction(Opcode::Iload, 0),
      Instruction(Opcode::Iprint),
  });
  OptStats St;
  LinearSegment Out = optimizeSegment(In, St);
  expectEquivalent(In, Out, 32);
}

TEST(OptimizerTest, ScratchLocalsAreNeverFlushed) {
  // A store to a scratch local (an inlined callee's frame) disappears if
  // nothing inside the segment reads it back.
  LinearSegment In = segment({
      Instruction(Opcode::Iconst, 3),
      Instruction(Opcode::Istore, 5), // scratch: >= ScratchBase (4)
  },
                             /*Locals=*/8);
  In.ScratchBase = 4;
  OptStats St;
  LinearSegment Out = optimizeSegment(In, St);
  EXPECT_EQ(Out.numInstructions(), 0u);
  expectEquivalent(In, Out, 33);
}

namespace {

/// A program whose hot loop calls a small static helper -- the inlining
/// showcase. helper(a, b) = (a + b) & 0xffff.
Module loopWithHelper() {
  Assembler Asm;
  uint32_t Helper = Asm.declareMethod("helper", 2, 2, true);
  {
    MethodBuilder B = Asm.beginMethod(Helper);
    B.iload(0);
    B.iload(1);
    B.emit(Opcode::Iadd);
    B.iconst(0xffff);
    B.emit(Opcode::Iand);
    B.iret();
    B.finish();
  }
  uint32_t Main = Asm.declareMethod("main", 0, 3, false);
  {
    MethodBuilder B = Asm.beginMethod(Main);
    Label Loop = B.newLabel(), Done = B.newLabel();
    B.iconst(0);
    B.istore(0);
    B.iconst(0);
    B.istore(1);
    B.bind(Loop);
    B.iload(0);
    B.iconst(60000);
    B.branch(Opcode::IfIcmpGe, Done);
    B.iload(1);
    B.iload(0);
    B.invokestatic(Helper);
    B.istore(1);
    B.iinc(0, 1);
    B.branch(Opcode::Goto, Loop);
    B.bind(Done);
    B.iload(1);
    B.emit(Opcode::Iprint);
    B.halt();
    B.finish();
  }
  Asm.setEntry(Main);
  return Asm.build();
}

} // namespace

TEST(OptimizerTest, InliningMergesCallBoundedSegments) {
  Module M = loopWithHelper();
  PreparedModule PM(M);
  TraceVM VM(PM, VmOptions());
  VM.run();

  bool Checked = false;
  for (const Trace &T : VM.traceCache().traces()) {
    if (!T.Alive || T.Blocks.size() < 4)
      continue;
    std::vector<LinearSegment> Plain = linearizeTrace(PM, T, false);
    std::vector<LinearSegment> Inlined = linearizeTrace(PM, T, true);
    // The call boundary disappears: fewer, larger segments.
    EXPECT_LT(Inlined.size(), Plain.size());
    for (const LinearSegment &Seg : Inlined)
      EXPECT_GE(Seg.NumLocals, Seg.ScratchBase);
    Checked = true;
  }
  EXPECT_TRUE(Checked) << "the helper loop must produce a >= 4 block trace";
}

TEST(OptimizerTest, InlinedSegmentsOptimizeEquivalently) {
  // The optimizer contract holds on inlined segments too: compare the
  // inlined-unoptimized and inlined-optimized forms.
  uint64_t Seed = 4000;
  Module M = loopWithHelper();
  PreparedModule PM(M);
  TraceVM VM(PM, VmOptions());
  VM.run();
  unsigned Compared = 0;
  for (const Trace &T : VM.traceCache().traces()) {
    if (!T.Alive)
      continue;
    for (const LinearSegment &Seg : linearizeTrace(PM, T, true)) {
      OptStats St;
      LinearSegment Opt = optimizeSegment(Seg, St);
      Compared += expectEquivalent(Seg, Opt, ++Seed);
    }
  }
  EXPECT_GT(Compared, 0u);
}

TEST(OptimizerTest, InliningPlusOptimizationShrinksTheHelperLoop) {
  Module M = loopWithHelper();
  PreparedModule PM(M);
  TraceVM VM(PM, VmOptions());
  VM.run();
  for (const Trace &T : VM.traceCache().traces()) {
    if (!T.Alive || T.Blocks.size() < 4)
      continue;
    uint64_t PlainCount = 0;
    for (const LinearSegment &Seg : linearizeTrace(PM, T, false))
      PlainCount += Seg.numInstructions();
    OptStats St;
    uint64_t InlinedOpt = 0;
    for (const LinearSegment &Seg : optimizeTrace(PM, T, St, true))
      InlinedOpt += Seg.numInstructions();
    // Inlining + copy propagation must beat the uninlined baseline (the
    // call/return instructions it eliminates are not even counted here).
    EXPECT_LT(InlinedOpt, PlainCount);
  }
}

TEST(OptimizerTest, WorkloadInlinedSegmentsStayEquivalent) {
  uint64_t Seed = 5000;
  for (const WorkloadInfo &W : allWorkloads()) {
    Module M = W.Build(std::max(1u, W.DefaultScale / 100));
    PreparedModule PM(M);
    TraceVM VM(PM, VmOptions());
    VM.run();
    for (const Trace &T : VM.traceCache().traces()) {
      if (!T.Alive)
        continue;
      for (const LinearSegment &Seg : linearizeTrace(PM, T, true)) {
        OptStats St;
        LinearSegment Opt = optimizeSegment(Seg, St);
        expectEquivalent(Seg, Opt, ++Seed);
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Liveness-aware side exits and static constant seeding
//===----------------------------------------------------------------------===//

namespace {

/// A hot loop with a data-dependent side exit at which local 1 (`t`) is
/// dead: the exit path overwrites it before any read. Locals: 0=i, 1=t,
/// 2=acc.
Module loopWithDeadExitLocal() {
  Assembler Asm;
  uint32_t Main = Asm.declareMethod("main", 0, 3, false);
  {
    MethodBuilder B = Asm.beginMethod(Main);
    Label Loop = B.newLabel(), Done = B.newLabel(), Bail = B.newLabel();
    B.iconst(0);
    B.istore(0);
    B.iconst(0);
    B.istore(2);
    B.bind(Loop);
    B.iload(0);
    B.iconst(60000);
    B.branch(Opcode::IfIcmpGe, Done);
    B.iconst(7);
    B.istore(1); // t = 7; deferred inside the segment
    B.iload(2);
    B.branch(Opcode::IfLt, Bail); // data-dependent side exit
    B.iload(2);
    B.iload(1);
    B.emit(Opcode::Iadd);
    B.istore(2); // acc += t
    B.iinc(0, 1);
    B.branch(Opcode::Goto, Loop);
    B.bind(Bail);
    B.iconst(0);
    B.istore(1); // t overwritten before any read: dead at Bail
    B.iload(2);
    B.emit(Opcode::Iprint);
    B.halt();
    B.bind(Done);
    B.iload(2);
    B.emit(Opcode::Iprint);
    B.halt();
    B.finish();
  }
  Asm.setEntry(Main);
  return Asm.build();
}

/// A hot loop over a single-assignment local `k` whose value is a known
/// constant at the loop head, so analysis facts can seed it. Locals:
/// 0=i, 1=k, 2=acc.
Module loopWithConstantLocal() {
  Assembler Asm;
  uint32_t Main = Asm.declareMethod("main", 0, 3, false);
  {
    MethodBuilder B = Asm.beginMethod(Main);
    Label Loop = B.newLabel(), Done = B.newLabel();
    B.iconst(5);
    B.istore(1); // k = 5, the only assignment
    B.iconst(0);
    B.istore(0);
    B.bind(Loop);
    B.iload(0);
    B.iconst(60000);
    B.branch(Opcode::IfIcmpGe, Done);
    B.iload(2);
    B.iload(1);
    B.iconst(3);
    B.emit(Opcode::Iadd); // k + 3: foldable once k is seeded
    B.emit(Opcode::Iadd);
    B.istore(2);
    B.iinc(0, 1);
    B.branch(Opcode::Goto, Loop);
    B.bind(Done);
    B.iload(2);
    B.emit(Opcode::Iprint);
    B.halt();
    B.finish();
  }
  Asm.setEntry(Main);
  return Asm.build();
}

/// Optimizes every live-trace segment of \p M with \p Facts, checking
/// straight-line and exit-state equivalence; accumulates stats.
void sweepWithFacts(const Module &M, OptStats &St, unsigned &ExitCompared,
                    uint64_t Seed) {
  PreparedModule PM(M);
  analysis::ModuleAnalysis Facts = analysis::ModuleAnalysis::compute(M);
  TraceVM VM(PM, VmOptions());
  VM.run();
  for (const Trace &T : VM.traceCache().traces()) {
    if (!T.Alive)
      continue;
    for (const LinearSegment &Seg : linearizeTrace(PM, T, false, &Facts)) {
      LinearSegment Opt = optimizeSegment(Seg, St);
      expectEquivalent(Seg, Opt, ++Seed);
      ExitCompared += expectExitEquivalent(Seg, Opt, ++Seed);
    }
  }
}

} // namespace

TEST(OptimizerTest, GuardsCarryLivenessAtTheirExitPc) {
  Module M = loopWithDeadExitLocal();
  PreparedModule PM(M);
  analysis::ModuleAnalysis Facts = analysis::ModuleAnalysis::compute(M);
  TraceVM VM(PM, VmOptions());
  VM.run();
  bool SawAnnotated = false;
  for (const Trace &T : VM.traceCache().traces()) {
    if (!T.Alive)
      continue;
    for (const LinearSegment &Seg : linearizeTrace(PM, T, false, &Facts))
      for (const LinearOp &Op : Seg.Ops)
        if (Op.K == LinearOp::Kind::Guard &&
            opKind(Op.I.Op) == OpKind::Branch) {
          EXPECT_TRUE(Op.HasLiveAtExit);
          SawAnnotated = true;
        }
  }
  EXPECT_TRUE(SawAnnotated);
}

TEST(OptimizerTest, LivenessSkipsDeadLocalsAtSideExits) {
  OptStats St;
  unsigned ExitCompared = 0;
  sweepWithFacts(loopWithDeadExitLocal(), St, ExitCompared, 7000);
  EXPECT_GT(ExitCompared, 0u)
      << "exit-state equivalence must actually be exercised";
  EXPECT_GT(St.GuardExitLocalsSkipped, 0u)
      << "the dead-at-exit local must not be materialized at the guard";
}

TEST(OptimizerTest, LivenessReducesGuardMaterialization) {
  Module M = loopWithDeadExitLocal();
  PreparedModule PM(M);
  analysis::ModuleAnalysis Facts = analysis::ModuleAnalysis::compute(M);
  TraceVM VM(PM, VmOptions());
  VM.run();
  OptStats NoFacts, WithFacts;
  for (const Trace &T : VM.traceCache().traces()) {
    if (!T.Alive)
      continue;
    optimizeTrace(PM, T, NoFacts, false);
    optimizeTrace(PM, T, WithFacts, false, &Facts);
  }
  ASSERT_GT(NoFacts.GuardsAfter, 0u);
  EXPECT_LT(WithFacts.GuardExitLocalsFlushed, NoFacts.GuardExitLocalsFlushed);
  EXPECT_LT(WithFacts.localsPerSideExit(), NoFacts.localsPerSideExit());
}

TEST(OptimizerTest, EntryConstantsSeedFolding) {
  Module M = loopWithConstantLocal();
  PreparedModule PM(M);
  analysis::ModuleAnalysis Facts = analysis::ModuleAnalysis::compute(M);
  TraceVM VM(PM, VmOptions());
  VM.run();
  OptStats NoFacts, WithFacts;
  bool SawSeeded = false;
  uint64_t Seed = 8000;
  for (const Trace &T : VM.traceCache().traces()) {
    if (!T.Alive)
      continue;
    optimizeTrace(PM, T, NoFacts, false);
    for (const LinearSegment &Seg : linearizeTrace(PM, T, false, &Facts)) {
      for (const auto &[L, C] : Seg.EntryConsts)
        SawSeeded |= L == 1 && C == 5;
      LinearSegment Opt = optimizeSegment(Seg, WithFacts);
      expectEquivalent(Seg, Opt, ++Seed);
    }
  }
  EXPECT_TRUE(SawSeeded) << "k=5 must be proved constant at the trace head";
  EXPECT_GT(WithFacts.ConstantsFolded, NoFacts.ConstantsFolded)
      << "seeded constants must enable folds the bare optimizer cannot see";
}

TEST(OptimizerTest, WorkloadSegmentsWithFactsStayEquivalentAtExits) {
  uint64_t Seed = 9000;
  unsigned ExitCompared = 0;
  for (const WorkloadInfo &W : allWorkloads()) {
    OptStats St;
    sweepWithFacts(W.Build(std::max(1u, W.DefaultScale / 100)), St,
                   ExitCompared, Seed += 500);
  }
  EXPECT_GT(ExitCompared, 0u);
}

//===----------------------------------------------------------------------===//
// Translation validation of every pass combination (src/validate)
//===----------------------------------------------------------------------===//

namespace {

/// The ablation grid: all passes stacked, none, each alone, and each
/// individually disabled.
std::vector<std::pair<std::string, OptConfig>> ablationConfigs() {
  auto Toggle = [](OptConfig &C, unsigned I, bool On) {
    switch (I) {
    case 0:
      C.FoldConstants = On;
      break;
    case 1:
      C.ForwardLoads = On;
      break;
    case 2:
      C.DeferStores = On;
      break;
    case 3:
      C.EliminateGuards = On;
      break;
    case 4:
      C.LivenessAtExits = On;
      break;
    case 5:
      C.ElimRedundantLoads = On;
      break;
    case 6:
      C.ElimDeadStores = On;
      break;
    case 7:
      C.SinkStores = On;
      break;
    }
  };
  const char *Names[] = {"fold",     "forward",   "defer",
                         "elim-guards", "liveness", "elim-loads",
                         "elim-dead-stores", "sink-stores"};
  std::vector<std::pair<std::string, OptConfig>> Out;
  Out.emplace_back("stacked", OptConfig());
  OptConfig AllOff;
  for (unsigned I = 0; I < 8; ++I)
    Toggle(AllOff, I, false);
  Out.emplace_back("none", AllOff);
  for (unsigned I = 0; I < 8; ++I) {
    OptConfig Alone = AllOff;
    Toggle(Alone, I, true);
    Out.emplace_back(std::string(Names[I]) + "-alone", Alone);
    OptConfig Without;
    Toggle(Without, I, false);
    Out.emplace_back(std::string("no-") + Names[I], Without);
  }
  return Out;
}

/// Optimizes every live-trace segment of an already-run \p VM under every
/// ablation config and demands the validator accepts each result.
unsigned expectAllConfigsValidate(const PreparedModule &PM, const TraceVM &VM,
                                  const analysis::ModuleAnalysis *Facts,
                                  const std::string &Tag) {
  unsigned Checked = 0;
  for (const auto &[Name, Cfg] : ablationConfigs()) {
    for (const Trace &T : VM.traceCache().traces()) {
      if (!T.Alive)
        continue;
      for (const LinearSegment &Seg : linearizeTrace(PM, T, false, Facts)) {
        OptStats St;
        LinearSegment Opt = optimizeSegment(Seg, St, Cfg);
        validate::Result R = validate::validateSegment(Seg, Opt);
        EXPECT_TRUE(R.Ok)
            << Tag << " [" << Name << "] trace " << T.Id << ": "
            << validate::reasonName(R.Why) << ": " << R.Detail;
        ++Checked;
      }
    }
  }
  return Checked;
}

} // namespace

TEST(ValidatorAblationTest, EveryPassAloneAndStackedValidatesOnAllWorkloads) {
  for (const WorkloadInfo &W : allWorkloads()) {
    Module M = W.Build(std::max(1u, W.DefaultScale / 100));
    PreparedModule PM(M);
    analysis::ModuleAnalysis Facts = analysis::ModuleAnalysis::compute(M);
    TraceVM VM(PM, VmOptions());
    VM.run();
    EXPECT_GT(expectAllConfigsValidate(PM, VM, &Facts, W.Name), 0u) << W.Name;
  }
}

TEST(ValidatorAblationTest, EveryPassValidatesOnFuzzCorpusRepros) {
  // The checked-in fuzz regression programs exercise shapes the workloads
  // do not (heap traffic, traps, deep dispatch); the optimizer must prove
  // through on their traces under every pass combination too.
  unsigned Checked = 0;
  for (const auto &Entry :
       std::filesystem::directory_iterator(JTC_OPT_CORPUS_DIR)) {
    if (Entry.path().extension() != ".jasm")
      continue;
    std::string Path = Entry.path().string();
    std::string Error;
    std::optional<Module> M = parseModuleFile(Path, Error);
    ASSERT_TRUE(M.has_value()) << Path << ": " << Error;
    PreparedModule PM(*M);
    analysis::ModuleAnalysis Facts = analysis::ModuleAnalysis::compute(*M);
    TraceVM VM(PM, VmOptions().startStateDelay(1).decayInterval(32));
    VM.run();
    Checked += expectAllConfigsValidate(PM, VM, &Facts, Path);
  }
  EXPECT_GT(Checked, 0u) << "corpus repros must produce validatable traces";
}
