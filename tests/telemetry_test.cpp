//===- tests/telemetry_test.cpp - Telemetry subsystem tests ---------------===//
///
/// Covers the event ring (overwrite-at-capacity, ordering), the
/// exporters (JSONL and Chrome trace golden output), the phase sampler's
/// delta arithmetic, the VmStats field table shared by print()/toJson(),
/// and -- when telemetry is compiled in -- the end-to-end lifecycle
/// events a real TraceVM run produces.
///
//===----------------------------------------------------------------------===//

#include "btrace/BtraceEncoder.h"
#include "telemetry/Export.h"
#include "telemetry/EventRing.h"
#include "telemetry/PhaseSampler.h"
#include "vm/ModuleFingerprint.h"
#include "vm/TraceVM.h"

#include "TestPrograms.h"
#include "gtest/gtest.h"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <map>
#include <sstream>
#include <string_view>

using namespace jtc;

namespace {

//===--- Minimal strict JSON validator ------------------------------------===//
//
// The exporters promise machine-readable output, so the tests validate it
// with a real recursive-descent parse, not just brace counting. Accepts
// exactly the JSON value grammar (RFC 8259); returns false on any excess
// or malformed input.

class JsonValidator {
public:
  explicit JsonValidator(std::string_view Text) : S(Text) {}

  bool validate() {
    skipWs();
    return value() && (skipWs(), Pos == S.size());
  }

private:
  std::string_view S;
  size_t Pos = 0;

  bool eof() const { return Pos >= S.size(); }
  char peek() const { return S[Pos]; }
  bool eat(char C) { return !eof() && S[Pos] == C && (++Pos, true); }
  void skipWs() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                      peek() == '\r'))
      ++Pos;
  }

  bool literal(std::string_view L) {
    if (S.substr(Pos, L.size()) != L)
      return false;
    Pos += L.size();
    return true;
  }

  bool string() {
    if (!eat('"'))
      return false;
    while (!eof() && peek() != '"') {
      if (peek() == '\\') {
        ++Pos;
        if (eof())
          return false;
        char E = peek();
        if (E == 'u') {
          for (int I = 0; I < 4; ++I)
            if (++Pos, eof() || !isxdigit(static_cast<unsigned char>(peek())))
              return false;
        } else if (!strchr("\"\\/bfnrt", E)) {
          return false;
        }
      } else if (static_cast<unsigned char>(peek()) < 0x20) {
        return false;
      }
      ++Pos;
    }
    return eat('"');
  }

  bool number() {
    size_t Start = Pos;
    eat('-');
    if (eof() || !isdigit(static_cast<unsigned char>(peek())))
      return false;
    if (peek() == '0') // no leading zeros on multi-digit integers
      ++Pos;
    else
      while (!eof() && isdigit(static_cast<unsigned char>(peek())))
        ++Pos;
    if (!eof() && isdigit(static_cast<unsigned char>(peek())))
      return false;
    if (eat('.')) {
      if (eof() || !isdigit(static_cast<unsigned char>(peek())))
        return false;
      while (!eof() && isdigit(static_cast<unsigned char>(peek())))
        ++Pos;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++Pos;
      if (!eof() && (peek() == '+' || peek() == '-'))
        ++Pos;
      if (eof() || !isdigit(static_cast<unsigned char>(peek())))
        return false;
      while (!eof() && isdigit(static_cast<unsigned char>(peek())))
        ++Pos;
    }
    return Pos > Start;
  }

  bool value() {
    skipWs();
    if (eof())
      return false;
    switch (peek()) {
    case '{': {
      ++Pos;
      skipWs();
      if (eat('}'))
        return true;
      do {
        skipWs();
        if (!string())
          return false;
        skipWs();
        if (!eat(':') || !value())
          return false;
        skipWs();
      } while (eat(','));
      return eat('}');
    }
    case '[': {
      ++Pos;
      skipWs();
      if (eat(']'))
        return true;
      do {
        if (!value())
          return false;
        skipWs();
      } while (eat(','));
      return eat(']');
    }
    case '"':
      return string();
    case 't':
      return literal("true");
    case 'f':
      return literal("false");
    case 'n':
      return literal("null");
    default:
      return number();
    }
  }
};

bool isValidJson(std::string_view Text) {
  return JsonValidator(Text).validate();
}

/// Every non-empty line must parse as a standalone JSON value.
::testing::AssertionResult jsonlLinesParse(const std::string &Text) {
  std::istringstream IS(Text);
  std::string Line;
  size_t N = 0;
  while (std::getline(IS, Line)) {
    ++N;
    if (Line.empty())
      continue;
    if (!isValidJson(Line))
      return ::testing::AssertionFailure()
             << "line " << N << " is not valid JSON: " << Line;
  }
  if (N == 0)
    return ::testing::AssertionFailure() << "no JSONL lines at all";
  return ::testing::AssertionSuccess();
}

//===--- EventRing --------------------------------------------------------===//

TEST(EventRingTest, DefaultConstructedIsDisabled) {
  EventRing R;
  EXPECT_FALSE(R.enabled());
  EXPECT_EQ(R.capacity(), 0u);
  R.record(EventKind::TraceConstructed, 1); // must not crash
  EXPECT_EQ(R.size(), 0u);
  EXPECT_EQ(R.totalRecorded(), 0u);
}

TEST(EventRingTest, RecordsUpToCapacityWithoutDropping) {
  EventRing R(4);
  for (uint32_t I = 0; I < 4; ++I)
    R.recordAt(I, EventKind::TraceDispatched, I);
  EXPECT_EQ(R.size(), 4u);
  EXPECT_EQ(R.totalRecorded(), 4u);
  EXPECT_EQ(R.dropped(), 0u);
  for (size_t I = 0; I < 4; ++I)
    EXPECT_EQ(R.event(I).Id, I);
}

TEST(EventRingTest, OverwritesOldestAtCapacity) {
  EventRing R(4);
  for (uint32_t I = 0; I < 10; ++I)
    R.recordAt(I, EventKind::TraceDispatched, I);
  EXPECT_EQ(R.size(), 4u);
  EXPECT_EQ(R.totalRecorded(), 10u);
  EXPECT_EQ(R.dropped(), 6u);
  // The four retained events are the newest four, oldest first.
  for (size_t I = 0; I < 4; ++I) {
    EXPECT_EQ(R.event(I).Id, 6u + I);
    EXPECT_EQ(R.event(I).Clock, 6u + I);
  }
}

TEST(EventRingTest, ClockIsReadThroughPointer) {
  uint64_t Clock = 0;
  EventRing R(8, &Clock);
  Clock = 41;
  R.record(EventKind::ProfilerSignal, 7, 2);
  Clock = 99;
  R.record(EventKind::DecayPass, 3);
  ASSERT_EQ(R.size(), 2u);
  EXPECT_EQ(R.event(0).Clock, 41u);
  EXPECT_EQ(R.event(1).Clock, 99u);
}

TEST(EventRingTest, EventsStayClockOrderedAfterWraparound) {
  uint64_t Clock = 0;
  EventRing R(16, &Clock);
  for (uint32_t I = 0; I < 100; ++I) {
    Clock += 3;
    R.record(EventKind::TraceDispatched, I % 5);
  }
  uint64_t Prev = 0;
  R.forEach([&Prev](const Event &E) {
    EXPECT_GE(E.Clock, Prev);
    Prev = E.Clock;
  });
  std::vector<Event> Snap = R.snapshot();
  EXPECT_EQ(Snap.size(), R.size());
  for (size_t I = 0; I < Snap.size(); ++I)
    EXPECT_EQ(Snap[I].Clock, R.event(I).Clock);
}

TEST(EventRingTest, ClearForgetsEventsButKeepsCapacity) {
  EventRing R(4);
  R.recordAt(1, EventKind::TraceRetired, 1);
  R.clear();
  EXPECT_TRUE(R.enabled());
  EXPECT_EQ(R.size(), 0u);
  R.recordAt(2, EventKind::TraceRetired, 2);
  EXPECT_EQ(R.size(), 1u);
}

TEST(EventKindTest, NamesAreDistinctAndLifecycleSplitIsRight) {
  for (unsigned I = 0; I < NumEventKinds; ++I)
    for (unsigned J = I + 1; J < NumEventKinds; ++J)
      EXPECT_STRNE(eventKindName(static_cast<EventKind>(I)),
                   eventKindName(static_cast<EventKind>(J)));
  Event E{};
  E.Kind = EventKind::TraceRetired;
  EXPECT_TRUE(E.isTraceLifecycle());
  E.Kind = EventKind::ProfilerSignal;
  EXPECT_FALSE(E.isTraceLifecycle());
  E.Kind = EventKind::DecayPass;
  EXPECT_FALSE(E.isTraceLifecycle());
}

//===--- Exporters --------------------------------------------------------===//

TEST(ExportTest, JsonlGoldenOutput) {
  EventRing R(8);
  R.recordAt(10, EventKind::TraceConstructed, 3, 9);
  R.recordAt(12, EventKind::TraceDispatched, 3);
  R.recordAt(21, EventKind::TraceCompleted, 3, 9);
  std::ostringstream OS;
  writeEventsJsonl(OS, R);
  EXPECT_EQ(OS.str(),
            "{\"clock\":10,\"kind\":\"trace-constructed\",\"id\":3,\"arg\":9}\n"
            "{\"clock\":12,\"kind\":\"trace-dispatched\",\"id\":3,\"arg\":0}\n"
            "{\"clock\":21,\"kind\":\"trace-completed\",\"id\":3,\"arg\":9}\n");
}

TEST(ExportTest, ChromeTraceShapesEventsByKind) {
  EventRing R(8);
  R.recordAt(10, EventKind::TraceConstructed, 3, 9);
  R.recordAt(12, EventKind::TraceDispatched, 3);
  R.recordAt(15, EventKind::ProfilerSignal, 44, 2);
  R.recordAt(30, EventKind::TraceReplaced, 3, 5);
  std::ostringstream OS;
  writeChromeTrace(OS, R);
  std::string S = OS.str();
  // Header bookkeeping.
  EXPECT_NE(S.find("\"clock\":\"blocks_executed\""), std::string::npos);
  EXPECT_NE(S.find("\"events_recorded\":4"), std::string::npos);
  EXPECT_NE(S.find("\"events_dropped\":0"), std::string::npos);
  // Construction opens an async span; dispatch is an instant on it;
  // replacement closes it; the profiler signal is a thread instant.
  EXPECT_NE(S.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(S.find("\"ph\":\"n\""), std::string::npos);
  EXPECT_NE(S.find("\"ph\":\"e\""), std::string::npos);
  EXPECT_NE(S.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(S.find("\"cat\":\"profiler\""), std::string::npos);
  EXPECT_NE(S.find("\"ts\":10"), std::string::npos);
  // Balanced document (cheap well-formedness check).
  EXPECT_EQ(std::count(S.begin(), S.end(), '{'),
            std::count(S.begin(), S.end(), '}'));
  EXPECT_EQ(std::count(S.begin(), S.end(), '['),
            std::count(S.begin(), S.end(), ']'));
}

TEST(ExportTest, ChromeTraceEmitsCounterTracksFromSampler) {
  EventRing R(4);
  PhaseSampler<VmStats> Sampler(100);
  VmStats A;
  A.BlocksExecuted = 100;
  A.TraceDispatches = 7;
  Sampler.sample(100, A);
  std::ostringstream OS;
  writeChromeTrace(OS, R, Sampler);
  std::string S = OS.str();
  EXPECT_NE(S.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(S.find("\"name\":\"trace_dispatches\""), std::string::npos);
  EXPECT_NE(S.find("\"value\":7"), std::string::npos);
}

TEST(ExportTest, BtraceEventsExportUnderBtraceCategory) {
  EventRing R(8);
  R.recordAt(5, EventKind::BtraceStarted, 0, 4096);
  R.recordAt(900, EventKind::BtraceFlushed, 0, 512);
  R.recordAt(1400, EventKind::BtraceDropped, 0, 64);

  std::ostringstream Jsonl;
  writeEventsJsonl(Jsonl, R);
  std::string L = Jsonl.str();
  EXPECT_NE(L.find("\"kind\":\"btrace-started\""), std::string::npos);
  EXPECT_NE(L.find("\"kind\":\"btrace-flushed\""), std::string::npos);
  EXPECT_NE(L.find("\"kind\":\"btrace-dropped\""), std::string::npos);
  EXPECT_NE(L.find("\"arg\":4096"), std::string::npos);
  EXPECT_TRUE(jsonlLinesParse(L));

  std::ostringstream Chrome;
  writeChromeTrace(Chrome, R);
  std::string C = Chrome.str();
  EXPECT_NE(C.find("\"cat\":\"btrace\""), std::string::npos);
  EXPECT_NE(C.find("\"name\":\"btrace-started\""), std::string::npos);
  EXPECT_TRUE(isValidJson(C)) << C;
}

TEST(ExportTest, ChromeTraceIsStrictlyValidJsonAcrossAllEventKinds) {
  // One event of every kind: the exporter must produce a single valid
  // JSON document no matter which switch arms fire.
  EventRing R(NumEventKinds + 1);
  for (unsigned I = 0; I < NumEventKinds; ++I)
    R.recordAt(10 * (I + 1), static_cast<EventKind>(I), I, I + 100);
  PhaseSampler<VmStats> Sampler(100);
  VmStats A;
  A.BlocksExecuted = 100;
  Sampler.sample(100, A);

  std::ostringstream Plain, WithSampler, Jsonl;
  writeChromeTrace(Plain, R);
  writeChromeTrace(WithSampler, R, Sampler);
  writeEventsJsonl(Jsonl, R);
  EXPECT_TRUE(isValidJson(Plain.str())) << Plain.str();
  EXPECT_TRUE(isValidJson(WithSampler.str())) << WithSampler.str();
  EXPECT_TRUE(jsonlLinesParse(Jsonl.str()));
}

TEST(ExportTest, ValidatorItselfRejectsMalformedJson) {
  // Guard the guard: the validator must not pass garbage, or every
  // well-formedness assertion above is vacuous.
  EXPECT_TRUE(isValidJson("{\"a\":[1,2.5e-3,\"x\\n\",true,null]}"));
  EXPECT_FALSE(isValidJson("{\"a\":1,}"));
  EXPECT_FALSE(isValidJson("{\"a\":01}"));
  EXPECT_FALSE(isValidJson("{'a':1}"));
  EXPECT_FALSE(isValidJson("{\"a\":1} trailing"));
  EXPECT_FALSE(isValidJson("{\"a\":[1,2}"));
  EXPECT_FALSE(isValidJson(""));
}

//===--- PhaseSampler -----------------------------------------------------===//

TEST(PhaseSamplerTest, DisabledByDefault) {
  PhaseSampler<VmStats> S;
  EXPECT_FALSE(S.enabled());
  PhaseSampler<VmStats> Zero(0);
  EXPECT_FALSE(Zero.enabled());
}

TEST(PhaseSamplerTest, DeltasAreDifferencesOfConsecutiveSamples) {
  PhaseSampler<VmStats> S(1000);
  EXPECT_EQ(S.nextSampleAt(), 1000u);

  VmStats First;
  First.BlocksExecuted = 1000;
  First.TraceDispatches = 40;
  First.Signals = 5;
  S.sample(1000, First);

  VmStats Second = First;
  Second.BlocksExecuted = 2000;
  Second.TraceDispatches = 90;
  Second.Signals = 5; // no new signals this window
  S.sample(2000, Second);

  ASSERT_EQ(S.samples().size(), 2u);
  // First delta is measured against the zero state.
  EXPECT_EQ(S.samples()[0].Delta.TraceDispatches, 40u);
  EXPECT_EQ(S.samples()[0].Cumulative.TraceDispatches, 40u);
  // Second delta only covers the second window.
  EXPECT_EQ(S.samples()[1].Delta.BlocksExecuted, 1000u);
  EXPECT_EQ(S.samples()[1].Delta.TraceDispatches, 50u);
  EXPECT_EQ(S.samples()[1].Delta.Signals, 0u);
  EXPECT_EQ(S.samples()[1].Cumulative.TraceDispatches, 90u);
  EXPECT_EQ(S.nextSampleAt(), 3000u);
}

//===--- VmStats field table ----------------------------------------------===//

TEST(VmStatsJsonTest, ToJsonContainsEveryField) {
  VmStats S;
  S.Instructions = 123;
  S.BlocksExecuted = 45;
  std::ostringstream OS;
  S.toJson(OS);
  std::string J = OS.str();
  for (const VmStats::FieldInfo &F : VmStats::fields())
    EXPECT_NE(J.find("\"" + std::string(F.Key) + "\":"), std::string::npos)
        << "missing JSON key " << F.Key;
  EXPECT_NE(J.find("\"instructions\":123"), std::string::npos);
  EXPECT_NE(J.find("\"blocks_executed\":45"), std::string::npos);
}

TEST(VmStatsJsonTest, PrintAndJsonShareTheFieldTable) {
  VmStats S;
  std::ostringstream Print;
  S.print(Print);
  std::string P = Print.str();
  // Every printed field's label comes from the same table as its JSON
  // key, so a renamed or removed stat cannot drift between the two.
  for (const VmStats::FieldInfo &F : VmStats::fields()) {
    if (F.InPrint)
      EXPECT_NE(P.find(F.Label), std::string::npos)
          << "missing print label " << F.Label;
    else
      EXPECT_EQ(P.find(F.Label), std::string::npos)
          << "JSON-only field leaked into print(): " << F.Label;
  }
}

//===--- TraceVM integration ----------------------------------------------===//

#ifdef JTC_TELEMETRY

VmOptions telemetryOptions() {
  // Capacity large enough that hotLoop(50000)'s full event stream is
  // retained -- the integration tests compare event counts against stats
  // counters.
  return VmOptions()
      .startStateDelay(64)
      .completionThreshold(0.97)
      .telemetry(true)
      .telemetryCapacity(1u << 17);
}

TEST(TelemetryVmTest, HotLoopEmitsLifecycleInOrder) {
  Module M = testprog::hotLoop(50000);
  PreparedModule PM(M);
  TraceVM VM(PM, telemetryOptions());
  RunResult R = VM.run();
  EXPECT_EQ(R.Status, RunStatus::Finished);

  const EventRing &Ring = VM.events();
  ASSERT_TRUE(Ring.enabled());
  ASSERT_GT(Ring.size(), 0u);

  // Clocks never decrease across the retained stream.
  uint64_t Prev = 0;
  Ring.forEach([&Prev](const Event &E) {
    EXPECT_GE(E.Clock, Prev);
    Prev = E.Clock;
  });

  // Some trace must run the canonical lifecycle: constructed, then
  // dispatched, then completed -- in that clock order. (Not necessarily
  // the first constructed trace; early traces can be replaced before
  // they ever complete.)
  struct Lifecycle {
    uint64_t ConstructedAt = 0, DispatchedAt = 0, CompletedAt = 0;
  };
  std::map<uint32_t, Lifecycle> ById;
  Ring.forEach([&](const Event &E) {
    Lifecycle &L = ById[E.Id];
    if (E.Kind == EventKind::TraceConstructed && !L.ConstructedAt) {
      L.ConstructedAt = E.Clock;
      EXPECT_GT(E.Arg, 1u) << "constructed trace must span >1 block";
    } else if (E.Kind == EventKind::TraceDispatched && !L.DispatchedAt) {
      L.DispatchedAt = E.Clock;
    } else if (E.Kind == EventKind::TraceCompleted && !L.CompletedAt) {
      L.CompletedAt = E.Clock;
    }
  });
  bool FoundFullLifecycle = false;
  for (const auto &[Id, L] : ById) {
    if (!L.ConstructedAt || !L.DispatchedAt || !L.CompletedAt)
      continue;
    FoundFullLifecycle = true;
    EXPECT_LE(L.ConstructedAt, L.DispatchedAt) << "trace " << Id;
    EXPECT_LE(L.DispatchedAt, L.CompletedAt) << "trace " << Id;
  }
  EXPECT_TRUE(FoundFullLifecycle)
      << "no trace was constructed, dispatched and completed";

  // Event counts agree with the statistics counters (ring is large
  // enough for this workload that nothing was dropped).
  ASSERT_EQ(Ring.dropped(), 0u);
  uint64_t Dispatches = 0, Signals = 0;
  Ring.forEach([&](const Event &E) {
    if (E.Kind == EventKind::TraceDispatched)
      ++Dispatches;
    else if (E.Kind == EventKind::ProfilerSignal)
      ++Signals;
  });
  EXPECT_EQ(Dispatches, VM.stats().TraceDispatches);
  EXPECT_EQ(Signals, VM.stats().Signals);
}

TEST(TelemetryVmTest, DisabledByDefaultAndStatsUnchanged) {
  Module M = testprog::hotLoop(50000);
  PreparedModule PM(M);

  TraceVM Off(PM, VmOptions().startStateDelay(64).completionThreshold(0.97));
  Off.run();
  EXPECT_FALSE(Off.events().enabled());
  EXPECT_EQ(Off.events().size(), 0u);

  TraceVM On(PM, telemetryOptions());
  On.run();
  // Telemetry must observe, not perturb: every statistic matches.
  for (const VmStats::FieldInfo &F : VmStats::fields())
    if (F.Counter)
      EXPECT_EQ(Off.stats().*(F.Counter), On.stats().*(F.Counter))
          << "telemetry changed counter " << F.Key;
}

TEST(TelemetryVmTest, SamplerProducesTimeline) {
  Module M = testprog::hotLoop(50000);
  PreparedModule PM(M);
  TraceVM VM(PM, telemetryOptions().sampleInterval(10000));
  VM.run();

  const PhaseSampler<VmStats> &S = VM.sampler();
  ASSERT_FALSE(S.empty());
  uint64_t TotalBlocks = 0;
  uint64_t PrevClock = 0;
  for (const PhaseSample<VmStats> &P : S.samples()) {
    EXPECT_GT(P.Clock, PrevClock);
    PrevClock = P.Clock;
    TotalBlocks += P.Delta.BlocksExecuted;
  }
  // The per-window deltas tile the run (up to the tail after the last
  // sample point).
  EXPECT_LE(TotalBlocks, VM.stats().BlocksExecuted);
  EXPECT_GE(TotalBlocks, VM.stats().BlocksExecuted - VM.options().sampleInterval());
}

TEST(TelemetryVmTest, BtraceCaptureEventsLandInRingAndExports) {
  Module M = testprog::hotLoop(50000);
  PreparedModule PM(M);
  TraceVM VM(PM, telemetryOptions());

  btrace::BtraceHeader H = btrace::BtraceHeader::fromOptions(VM.options());
  H.Fingerprint = moduleFingerprint(PM);
  H.Spec = "telemetry-test";
  btrace::SuccessorTable ST(PM);
  std::vector<uint8_t> Stream;
  btrace::BtraceEncoder Enc(PM, ST, std::move(H),
                            [&Stream](const uint8_t *Data, size_t Size) {
                              Stream.insert(Stream.end(), Data, Data + Size);
                              return true;
                            });
  Enc.setTelemetry(VM.telemetry());
  VM.setTransitionSink(&Enc);
  RunResult R = VM.run();
  EXPECT_EQ(R.Status, RunStatus::Finished);
  ASSERT_TRUE(Enc.ok());

  // The capture lifecycle shows up in the same ring as the VM's own
  // events: one start (arg = sync interval), at least one flush whose
  // byte args sum to the stream size, and no drop.
  uint64_t Started = 0, Flushed = 0, Dropped = 0, FlushedBytes = 0;
  VM.events().forEach([&](const Event &E) {
    if (E.Kind == EventKind::BtraceStarted) {
      ++Started;
      EXPECT_EQ(E.Arg, VM.options().btraceSyncInterval());
    } else if (E.Kind == EventKind::BtraceFlushed) {
      ++Flushed;
      FlushedBytes += E.Arg;
    } else if (E.Kind == EventKind::BtraceDropped) {
      ++Dropped;
    }
  });
  EXPECT_EQ(Started, 1u);
  EXPECT_GE(Flushed, 1u);
  EXPECT_EQ(Dropped, 0u);
  EXPECT_EQ(FlushedBytes, Stream.size());
  EXPECT_EQ(FlushedBytes, Enc.encoderStats().BytesWritten);

  // And the exporters carry them through as machine-readable output.
  std::ostringstream Chrome, Jsonl;
  writeChromeTrace(Chrome, VM.events(), VM.sampler());
  writeEventsJsonl(Jsonl, VM.events());
  EXPECT_TRUE(isValidJson(Chrome.str()));
  EXPECT_TRUE(jsonlLinesParse(Jsonl.str()));
  EXPECT_NE(Chrome.str().find("\"name\":\"btrace-started\""),
            std::string::npos);
  EXPECT_NE(Jsonl.str().find("\"kind\":\"btrace-flushed\""),
            std::string::npos);
}

#endif // JTC_TELEMETRY

} // namespace
