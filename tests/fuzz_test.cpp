//===- tests/fuzz_test.cpp - Differential fuzzing subsystem ---------------===//
///
/// Tests for src/fuzz/: the coverage-directed program generator, the
/// cross-engine oracle and its heap digest, the invariant checker (via
/// deliberate fault injection -- the oracle must catch a broken trace
/// cache), and the delta-debugging minimizer.
///
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzzer.h"
#include "fuzz/Invariants.h"
#include "fuzz/Minimizer.h"
#include "fuzz/Oracle.h"
#include "fuzz/ProgramGen.h"

#include "TestPrograms.h"
#include "bytecode/Verifier.h"
#include "interp/InstructionInterpreter.h"
#include "text/AsmParser.h"
#include "text/AsmWriter.h"
#include "vm/TraceVM.h"

#include <gtest/gtest.h>

using namespace jtc;
using namespace jtc::fuzz;

//===----------------------------------------------------------------------===//
// Program generator
//===----------------------------------------------------------------------===//

TEST(ProgramGenTest, GeneratedProgramsAlwaysVerify) {
  GenConfig Config;
  Config.Features.Traps = true;
  for (uint64_t Seed = 1; Seed <= 60; ++Seed) {
    RandomProgramBuilder Gen(Seed, Config);
    Module M = Gen.build();
    EXPECT_TRUE(isValid(M)) << "seed " << Seed << ":\n"
                            << formatErrors(verifyModule(M));
  }
}

TEST(ProgramGenTest, DeterministicForEqualSeedsAndCoverage) {
  GenConfig Config;
  Config.Features.Traps = true;
  RandomProgramBuilder A(99, Config), B(99, Config);
  EXPECT_EQ(moduleToString(A.build()), moduleToString(B.build()));
}

TEST(ProgramGenTest, TrapFreeProgramsAlwaysFinish) {
  // With Traps off the generator's construction guarantees totality:
  // every program terminates cleanly within a modest budget.
  for (uint64_t Seed = 1; Seed <= 30; ++Seed) {
    RandomProgramBuilder Gen(Seed);
    Module M = Gen.build();
    Machine Mach(M);
    RunResult R = runInstructions(Mach, 20'000'000);
    EXPECT_EQ(R.Status, RunStatus::Finished) << "seed " << Seed;
  }
}

TEST(ProgramGenTest, FeatureGatesAreRespected) {
  GenConfig Config;
  Config.Features.Switches = false;
  Config.Features.VirtualCalls = false;
  Config.Features.Fields = false;
  Config.Features.Arrays = false;
  for (uint64_t Seed = 1; Seed <= 10; ++Seed) {
    RandomProgramBuilder Gen(Seed, Config);
    Module M = Gen.build();
    EXPECT_TRUE(M.Classes.empty());
    for (const Method &Mth : M.Methods)
      for (const Instruction &I : Mth.Code) {
        EXPECT_NE(I.Op, Opcode::Tableswitch);
        EXPECT_NE(I.Op, Opcode::InvokeVirtual);
        EXPECT_NE(I.Op, Opcode::NewArray);
        EXPECT_NE(I.Op, Opcode::New);
      }
  }
}

TEST(ProgramGenTest, CoverageDirectionSpreadsStatementKinds) {
  GenConfig Config;
  Config.Features.Traps = true;
  FeatureCoverage Cov;
  for (uint64_t Seed = 1; Seed <= 150; ++Seed) {
    RandomProgramBuilder Gen(Seed, Config, &Cov);
    Gen.build();
  }
  uint64_t Min = ~0ull, Max = 0;
  for (unsigned I = 0; I < NumStmtKinds; ++I) {
    Min = std::min(Min, Cov.Counts[I]);
    Max = std::max(Max, Cov.Counts[I]);
  }
  EXPECT_GT(Min, 0u) << "every statement kind must be exercised";
  // Inverse-frequency weighting keeps the histogram roughly level; the
  // bound is loose because eligibility constraints skew the draw.
  EXPECT_LE(Max, 4 * Min) << "coverage direction failed to balance kinds";
}

//===----------------------------------------------------------------------===//
// Heap digest
//===----------------------------------------------------------------------===//

TEST(HeapDigestTest, EqualRunsProduceEqualDigests) {
  Module M = testprog::virtualDispatch();
  Machine A(M), B(M);
  runInstructions(A);
  runInstructions(B);
  EXPECT_EQ(fuzz::heapDigest(A.heap()), fuzz::heapDigest(B.heap()));
  EXPECT_NE(fuzz::heapDigest(A.heap()), fuzz::heapDigest(Machine(M).heap()));
}

TEST(HeapDigestTest, DistinguishesDifferentFinalHeaps) {
  Module M4 = testprog::arraySquares(4), M5 = testprog::arraySquares(5);
  Machine A(M4), B(M5);
  runInstructions(A);
  runInstructions(B);
  EXPECT_NE(fuzz::heapDigest(A.heap()), fuzz::heapDigest(B.heap()));
}

//===----------------------------------------------------------------------===//
// Oracle: agreement on correct engines
//===----------------------------------------------------------------------===//

TEST(OracleTest, GeneratedProgramsProduceNoFindings) {
  GenConfig GC;
  GC.Features.Traps = true;
  OracleConfig OC;
  for (uint64_t Seed = 1; Seed <= 40; ++Seed) {
    RandomProgramBuilder Gen(Seed, GC);
    Module M = Gen.build();
    OracleResult R = runOracle(M, OC);
    EXPECT_TRUE(R.Ok) << "seed " << Seed << ":\n" << formatFindings(R.Findings);
  }
}

TEST(OracleTest, HandBuiltProgramsProduceNoFindings) {
  OracleConfig OC;
  for (const Module &M :
       {testprog::countingLoop(5000), testprog::recursiveFactorial(12),
        testprog::virtualDispatch(), testprog::switchProgram(),
        testprog::arraySquares(64), testprog::hotLoop(100000),
        testprog::divideByZero()}) {
    OracleResult R = runOracle(M, OC);
    EXPECT_TRUE(R.Ok) << formatFindings(R.Findings);
  }
}

TEST(OracleTest, InvalidModuleIsRejectedNotExecuted) {
  Module M; // No entry method.
  M.EntryMethod = 7;
  OracleResult R = runOracle(M, OracleConfig{});
  ASSERT_FALSE(R.Ok);
  ASSERT_EQ(R.Findings.size(), 1u);
  EXPECT_EQ(R.Findings[0].Rule, "invalid-module");
}

TEST(OracleTest, BudgetExhaustedReferenceSkipsComparison) {
  OracleConfig OC;
  OC.MaxInstructions = 100; // hotLoop needs far more.
  OracleResult R = runOracle(testprog::hotLoop(100000), OC);
  EXPECT_TRUE(R.Skipped);
  EXPECT_TRUE(R.Ok);
  EXPECT_EQ(R.RefStatus, RunStatus::BudgetExhausted);
}

//===----------------------------------------------------------------------===//
// Fault injection: the oracle must catch a deliberately broken cache
//===----------------------------------------------------------------------===//

namespace {

/// Campaign tuned for the acceptance bound: the injected fault must be
/// detected within 200 iterations.
FuzzOptions faultCampaign(CacheFault Fault) {
  FuzzOptions Opts;
  Opts.Seed = 1;
  Opts.Iterations = 200;
  Opts.Minimize = false;
  Opts.MaxFailures = 1;
  Opts.Gen.Features.Traps = true;
  Opts.Oracle.Fault = Fault;
  return Opts;
}

bool anyFindingWithRule(const FuzzReport &R, const std::string &Rule) {
  for (const FuzzFailure &F : R.Failures)
    for (const OracleFinding &Fd : F.Findings)
      if (Fd.Rule == Rule)
        return true;
  return false;
}

} // namespace

TEST(FaultInjectionTest, SkipInvalidationIsCaughtWithin200Iterations) {
  FuzzReport R = runFuzzer(faultCampaign(CacheFault::SkipInvalidation));
  ASSERT_FALSE(R.Failures.empty())
      << "a cache that forgets entry-map erasure must be detected";
  EXPECT_LE(R.Failures[0].Iteration, 200u);
  EXPECT_TRUE(anyFindingWithRule(R, "entry-map-live"))
      << formatFindings(R.Failures[0].Findings);
}

// Retirement detection audits the telemetry event stream, so these two
// scenarios need the instrumentation compiled in.
#ifdef JTC_TELEMETRY

TEST(FaultInjectionTest, SkipRetirementIsCaughtWithin200Iterations) {
  FuzzReport R = runFuzzer(faultCampaign(CacheFault::SkipRetirement));
  ASSERT_FALSE(R.Failures.empty())
      << "a cache that never retires under-performing traces must be "
         "detected";
  EXPECT_LE(R.Failures[0].Iteration, 200u);
  EXPECT_TRUE(anyFindingWithRule(R, "retirement-law"))
      << formatFindings(R.Failures[0].Findings);
}

namespace {

/// A bounded loop inside a helper that straight-line code calls over and
/// over. At completion threshold 1.0 the unrolled loop trace is built
/// from counters that have only ever seen the back edge taken, yet it
/// fails once per call at the loop exit -- and because the divergent exit
/// transition is deliberately never profiled (and the caller is acyclic,
/// so no surrounding trace invalidates the fragment), rebuilds keep
/// reproducing the same trace. Observed-completion retirement is the only
/// mechanism that can adapt.
Module retirementProbe(int32_t Calls, int32_t Trip) {
  Assembler Asm;
  uint32_t Helper = Asm.declareMethod("helper", 0, 1, true);
  {
    MethodBuilder B = Asm.beginMethod(Helper);
    Label Loop = B.newLabel(), Done = B.newLabel();
    B.iconst(0);
    B.istore(0);
    B.bind(Loop);
    B.iload(0);
    B.iconst(Trip);
    B.branch(Opcode::IfIcmpGe, Done);
    B.iinc(0, 1);
    B.branch(Opcode::Goto, Loop);
    B.bind(Done);
    B.iload(0);
    B.iret();
    B.finish();
  }
  uint32_t Main = Asm.declareMethod("main", 0, 0, false);
  {
    MethodBuilder B = Asm.beginMethod(Main);
    for (int32_t I = 0; I < Calls; ++I) {
      B.invokestatic(Helper);
      B.emit(Opcode::Iprint);
    }
    B.halt();
    B.finish();
  }
  Asm.setEntry(Main);
  return Asm.build();
}

/// Runs \p M under an aggressive trace config with \p Fault injected.
TraceVM runProbe(const PreparedModule &PM, CacheFault Fault, RunStatus *S) {
  TraceVM VM(PM, VmOptions()
                     .completionThreshold(1.0)
                     .startStateDelay(1)
                     .decayInterval(32)
                     .telemetry(true)
                     .telemetryCapacity(1u << 18)
                     .cacheFault(Fault));
  *S = VM.run().Status;
  return VM;
}

} // namespace

/// The probe module and its prepared form are shared across every case:
/// SetUpTestSuite builds them once instead of each test rebuilding them,
/// and the determinism case below pins the property that makes the
/// sharing (and `ctest -j`) safe -- runs against the shared
/// PreparedModule do not influence one another.
class RetirementProbeTest : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    M = new Module(retirementProbe(16, 50));
    PM = new PreparedModule(*M);
  }
  static void TearDownTestSuite() {
    delete PM;
    PM = nullptr;
    delete M;
    M = nullptr;
  }

  static Module *M;
  static PreparedModule *PM;
};

Module *RetirementProbeTest::M = nullptr;
PreparedModule *RetirementProbeTest::PM = nullptr;

TEST_F(RetirementProbeTest, RetirementFiresOnBehaviourShift) {
  RunStatus S;
  TraceVM Good = runProbe(*PM, CacheFault::None, &S);
  EXPECT_GT(Good.stats().TracesRetired, 0u)
      << "the healthy cache must retire the warmup trace once its "
         "observed completion collapses";
  EXPECT_TRUE(checkTraceVm(Good, S).empty())
      << formatViolations(checkTraceVm(Good, S));
}

TEST_F(RetirementProbeTest, SkipRetirementFaultSuppressesItAndIsFlagged) {
  RunStatus S;
  TraceVM Bad = runProbe(*PM, CacheFault::SkipRetirement, &S);
  EXPECT_EQ(Bad.stats().TracesRetired, 0u);
  std::vector<Violation> Vs = checkTraceVm(Bad, S);
  bool SawRetirementLaw = false;
  for (const Violation &V : Vs)
    SawRetirementLaw |= V.Rule == "retirement-law";
  EXPECT_TRUE(SawRetirementLaw)
      << "the invariant audit must flag the surviving under-performer; "
         "violations were:\n"
      << formatViolations(Vs);
}

TEST_F(RetirementProbeTest, ProbeRunsAreDeterministic) {
  // A PreparedModule carries no mutable run state, so back-to-back runs
  // must agree bit-for-bit -- the invariant that lets this fixture share
  // one instance across cases and test binaries under `ctest -j`.
  RunStatus S1, S2;
  TraceVM A = runProbe(*PM, CacheFault::None, &S1);
  TraceVM B = runProbe(*PM, CacheFault::None, &S2);
  EXPECT_EQ(S1, S2);
  EXPECT_EQ(A.machine().output(), B.machine().output());
  EXPECT_EQ(A.stats().digest(), B.stats().digest());
  EXPECT_EQ(A.stats().TracesRetired, B.stats().TracesRetired);
}

#endif // JTC_TELEMETRY

//===----------------------------------------------------------------------===//
// Minimizer
//===----------------------------------------------------------------------===//

TEST(MinimizerTest, ShrinksWhilePreservingAStructuralPredicate) {
  GenConfig GC;
  RandomProgramBuilder Gen(7, GC);
  Module M = Gen.build();
  // Cheap stand-in for "still fails": the program still prints something.
  auto StillFails = [](const Module &Cand) {
    Machine Mach(Cand);
    runInstructions(Mach, 20'000'000);
    return !Mach.output().empty();
  };
  ASSERT_TRUE(StillFails(M));
  MinimizerStats Stats;
  Module Min = minimizeModule(M, StillFails, 8, &Stats);
  EXPECT_TRUE(isValid(Min)) << formatErrors(verifyModule(Min));
  EXPECT_TRUE(StillFails(Min));
  EXPECT_LT(moduleSize(Min), moduleSize(M));
  EXPECT_GT(Stats.CandidatesAccepted, 0u);
  // The property needs one Iprint and a path to it; the reduced program
  // should be close to that skeleton.
  EXPECT_LE(moduleSize(Min), 10u);
}

TEST(MinimizerTest, TargetRemapSurvivesSwitchDeletion) {
  // A switch-heavy program reduced under a "still has a switch and still
  // runs clean" predicate: every intermediate candidate is verifier
  // checked, so a bad remap of switch targets would surface as a failed
  // reduction, not a corrupt module.
  Module M = testprog::switchProgram();
  auto StillFails = [](const Module &Cand) {
    for (const Method &Mth : Cand.Methods)
      for (const Instruction &I : Mth.Code)
        if (I.Op == Opcode::Tableswitch)
          return true;
    return false;
  };
  Module Min = minimizeModule(M, StillFails);
  EXPECT_TRUE(isValid(Min)) << formatErrors(verifyModule(Min));
  EXPECT_TRUE(StillFails(Min));
  EXPECT_LT(moduleSize(Min), moduleSize(M));
}

TEST(MinimizerTest, MinimizedFaultReproducerStillTriggersTheOracle) {
  // End to end: fuzz with an injected fault and minimization on; the
  // reduced module must still fail the faulty oracle and parse back from
  // its textual form.
  FuzzOptions Opts = faultCampaign(CacheFault::SkipInvalidation);
  Opts.Minimize = true;
  FuzzReport R = runFuzzer(Opts);
  ASSERT_FALSE(R.Failures.empty());
  const FuzzFailure &F = R.Failures[0];
  EXPECT_FALSE(F.Findings.empty());

  std::string Error;
  std::optional<Module> Parsed = parseModule(F.ModuleText, Error);
  ASSERT_TRUE(Parsed.has_value()) << Error;
  EXPECT_TRUE(isValid(*Parsed));
  EXPECT_FALSE(runOracle(*Parsed, Opts.Oracle).Ok);
  // Replayed against a healthy cache, the reproducer runs clean: the bug
  // is in the cache, not the program.
  OracleConfig Healthy = Opts.Oracle;
  Healthy.Fault = CacheFault::None;
  EXPECT_TRUE(runOracle(*Parsed, Healthy).Ok);
}

//===----------------------------------------------------------------------===//
// Campaign loop
//===----------------------------------------------------------------------===//

TEST(FuzzerTest, CleanCampaignReportsAllIterations) {
  FuzzOptions Opts;
  Opts.Seed = 1234;
  Opts.Iterations = 60;
  Opts.Gen.Features.Traps = true;
  FuzzReport R = runFuzzer(Opts);
  EXPECT_TRUE(R.ok());
  EXPECT_EQ(R.Iterations, 60u);
  EXPECT_EQ(R.CleanRuns + R.SkippedRuns, 60u);
  EXPECT_GT(R.Coverage.total(), 0u);
}

TEST(FuzzerTest, CampaignIsDeterministic) {
  FuzzOptions Opts;
  Opts.Seed = 77;
  Opts.Iterations = 20;
  FuzzReport A = runFuzzer(Opts), B = runFuzzer(Opts);
  EXPECT_EQ(A.CleanRuns, B.CleanRuns);
  EXPECT_EQ(A.Coverage.Counts, B.Coverage.Counts);
}

TEST(FuzzerTest, MaxFailuresStopsTheCampaignEarly) {
  FuzzOptions Opts = faultCampaign(CacheFault::SkipInvalidation);
  Opts.MaxFailures = 1;
  FuzzReport R = runFuzzer(Opts);
  ASSERT_EQ(R.Failures.size(), 1u);
  EXPECT_EQ(R.Iterations, R.Failures[0].Iteration + 1)
      << "the campaign must stop at the first failure";
}
