//===- tests/analysis_test.cpp - Static dataflow analysis ------------------===//
///
/// Coverage for src/analysis: value analysis at merge points, loops,
/// switches and virtual calls; backward liveness (including the
/// worklist-seeding regression); the lint pass; effect summaries; the
/// typed verifier's rejection classes; and the dynamic-refines-static
/// property cross-checking facts against real interpreter executions.
///
//===----------------------------------------------------------------------===//

#include "analysis/Analysis.h"

#include "bytecode/Verifier.h"
#include "fuzz/ProgramGen.h"
#include "fuzz/Refinement.h"
#include "workloads/Workloads.h"

#include "TestPrograms.h"

#include <gtest/gtest.h>

using namespace jtc;
using analysis::AbstractValue;
using analysis::MethodAnalysis;
using analysis::ModuleAnalysis;

namespace {

bool hasErrorContaining(const Module &M, const std::string &Needle) {
  for (const VerifyError &E : verifyModule(M))
    if (E.Message.find(Needle) != std::string::npos)
      return true;
  return false;
}

/// First pc of \p Op in method 0 of \p M; asserts it exists.
uint32_t pcOf(const Module &M, uint32_t MethodId, Opcode Op) {
  const std::vector<Instruction> &Code = M.Methods[MethodId].Code;
  for (uint32_t Pc = 0; Pc < Code.size(); ++Pc)
    if (Code[Pc].Op == Op)
      return Pc;
  ADD_FAILURE() << "opcode not found in method " << MethodId;
  return 0;
}

/// One-method module: condition (an opaque value) selects between
/// storing \p A or \p B to local 0, then control merges and prints it.
Module mergeOfConstants(int64_t A, int64_t B) {
  Assembler Asm;
  uint32_t C = Asm.declareClass("C", 1);
  uint32_t Main = Asm.declareMethod("main", 0, 2, false);
  MethodBuilder Bld = Asm.beginMethod(Main);
  Label Else = Bld.newLabel(), Join = Bld.newLabel();
  // Opaque condition: a freshly allocated object's zeroed field is 0,
  // but a heap load is Top to the analysis.
  Bld.newobj(C);
  Bld.istore(1);
  Bld.iload(1);
  Bld.getfield(0);
  Bld.branch(Opcode::IfEq, Else);
  Bld.iconst(A);
  Bld.istore(0);
  Bld.branch(Opcode::Goto, Join);
  Bld.bind(Else);
  Bld.iconst(B);
  Bld.istore(0);
  Bld.bind(Join);
  Bld.iload(0);
  Bld.emit(Opcode::Iprint);
  Bld.halt();
  Bld.finish();
  Asm.setEntry(Main);
  return Asm.build();
}

} // namespace

//===----------------------------------------------------------------------===//
// Value analysis: merges, loops, switches, virtual calls
//===----------------------------------------------------------------------===//

TEST(ValueAnalysisTest, MergeJoinsConstantsIntoRange) {
  Module M = mergeOfConstants(3, 5);
  ASSERT_TRUE(isValid(M));
  ModuleAnalysis A = ModuleAnalysis::compute(M);
  const MethodAnalysis *MA = A.method(M.EntryMethod);
  ASSERT_NE(MA, nullptr);
  analysis::FrameState S = MA->Values.stateBefore(
      pcOf(M, M.EntryMethod, Opcode::Iprint));
  ASSERT_TRUE(S.Reachable);
  ASSERT_EQ(S.Stack.size(), 1u);
  EXPECT_TRUE(S.Stack[0].isInt());
  EXPECT_EQ(S.Stack[0].Lo, 3);
  EXPECT_EQ(S.Stack[0].Hi, 5);
}

TEST(ValueAnalysisTest, MergeOfEqualConstantsStaysConstant) {
  Module M = mergeOfConstants(7, 7);
  ModuleAnalysis A = ModuleAnalysis::compute(M);
  analysis::FrameState S = A.method(M.EntryMethod)
                               ->Values.stateBefore(
                                   pcOf(M, M.EntryMethod, Opcode::Iprint));
  ASSERT_TRUE(S.Reachable);
  ASSERT_EQ(S.Stack.size(), 1u);
  EXPECT_TRUE(S.Stack[0].isConst());
  EXPECT_EQ(S.Stack[0].Lo, 7);
}

TEST(ValueAnalysisTest, LoopCounterStaysIntegerAtHeader) {
  Module M = testprog::countingLoop(10);
  ModuleAnalysis A = ModuleAnalysis::compute(M);
  const MethodAnalysis *MA = A.method(M.EntryMethod);
  // At the backward branch's target (the loop header), i has been joined
  // from {0} and the widened loop-carried value. Widening gives up the
  // bounds (the increment can overflow), but must preserve the *type*:
  // an Int that never decays to Top or Conflict through the loop join.
  uint32_t Header = static_cast<uint32_t>(
      M.Methods[M.EntryMethod].Code[pcOf(M, M.EntryMethod, Opcode::Goto)].A);
  analysis::FrameState S = MA->Values.stateBefore(Header);
  ASSERT_TRUE(S.Reachable);
  EXPECT_TRUE(S.Locals[0].isInt());
  // The loop's exit condition depends on the widened counter, so neither
  // edge may be pruned: the back branch must stay a real decision.
  uint32_t BranchPc = 0;
  const std::vector<Instruction> &Code = M.Methods[M.EntryMethod].Code;
  for (uint32_t Pc = 0; Pc < Code.size(); ++Pc)
    if (Code[Pc].Op == Opcode::IfIcmpLt || Code[Pc].Op == Opcode::IfIcmpGe ||
        Code[Pc].Op == Opcode::IfIcmpLe || Code[Pc].Op == Opcode::IfIcmpGt)
      BranchPc = Pc;
  EXPECT_EQ(MA->Values.decisionAt(BranchPc),
            analysis::BranchDecision::Unknown);
}

TEST(ValueAnalysisTest, ConstantSwitchSelectorPrunesOtherArms) {
  Assembler Asm;
  uint32_t Main = Asm.declareMethod("main", 0, 1, false);
  MethodBuilder B = Asm.beginMethod(Main);
  Label C0 = B.newLabel(), C1 = B.newLabel(), Def = B.newLabel(),
        End = B.newLabel();
  B.iconst(1);
  B.tableswitch(0, {C0, C1}, Def);
  B.bind(C0);
  B.iconst(100);
  B.istore(0);
  B.branch(Opcode::Goto, End);
  B.bind(C1);
  B.iconst(101);
  B.istore(0);
  B.branch(Opcode::Goto, End);
  B.bind(Def);
  B.iconst(102);
  B.istore(0);
  B.bind(End);
  B.iload(0);
  B.emit(Opcode::Iprint);
  B.halt();
  B.finish();
  Asm.setEntry(Main);
  Module M = Asm.build();
  ASSERT_TRUE(isValid(M));

  ModuleAnalysis A = ModuleAnalysis::compute(M);
  const MethodAnalysis *MA = A.method(M.EntryMethod);
  uint32_t SwitchPc = pcOf(M, M.EntryMethod, Opcode::Tableswitch);
  EXPECT_EQ(MA->Values.decisionAt(SwitchPc),
            analysis::BranchDecision::AlwaysTaken);
  // Only the selected case is reachable; at the print, the merged value
  // is exactly its constant.
  analysis::FrameState S = MA->Values.stateBefore(
      pcOf(M, M.EntryMethod, Opcode::Iprint));
  ASSERT_TRUE(S.Reachable);
  EXPECT_TRUE(S.Stack[0].isConst());
  EXPECT_EQ(S.Stack[0].Lo, 101);
}

TEST(ValueAnalysisTest, VirtualReceiverCarriesClassMaySet) {
  Module M = testprog::virtualDispatch();
  ModuleAnalysis A = ModuleAnalysis::compute(M);
  const MethodAnalysis *MA = A.method(M.EntryMethod);
  uint32_t CallPc = pcOf(M, M.EntryMethod, Opcode::InvokeVirtual);
  analysis::FrameState S = MA->Values.stateBefore(CallPc);
  ASSERT_TRUE(S.Reachable);
  ASSERT_FALSE(S.Stack.empty());
  const AbstractValue &Recv = S.Stack.back();
  ASSERT_TRUE(Recv.isRef());
  EXPECT_TRUE(Recv.isNonNullRef());
  // First call site: the receiver is exactly class A (id 0), not B.
  EXPECT_TRUE(Recv.Classes.mayContain(0));
  EXPECT_FALSE(Recv.Classes.mayContain(1));
}

//===----------------------------------------------------------------------===//
// Liveness
//===----------------------------------------------------------------------===//

TEST(LivenessTest, SeesUsesAcrossNestedLoops) {
  // Regression: the backward solver used to seed its worklist with exit
  // blocks only. This method's lone exit is a bare `halt` whose live-in
  // set is empty, so the first join into its predecessors changed
  // nothing and no other block was ever processed -- every cross-block
  // use was invisible and all stores looked dead.
  Assembler Asm;
  uint32_t Main = Asm.declareMethod("main", 0, 3, false);
  MethodBuilder B = Asm.beginMethod(Main);
  Label Outer = B.newLabel(), OuterEnd = B.newLabel();
  Label Inner = B.newLabel(), InnerEnd = B.newLabel();
  B.iconst(12345);
  B.istore(0); // seed: read only inside the inner loop
  B.iconst(0);
  B.istore(1); // j
  B.bind(Outer);
  B.iload(1);
  B.iconst(4);
  B.branch(Opcode::IfIcmpGe, OuterEnd);
  B.iconst(0);
  B.istore(2); // i
  B.bind(Inner);
  B.iload(2);
  B.iconst(8);
  B.branch(Opcode::IfIcmpGe, InnerEnd);
  B.iload(0);
  B.iconst(1);
  B.emit(Opcode::Iadd);
  B.istore(0);
  B.iinc(2, 1);
  B.branch(Opcode::Goto, Inner);
  B.bind(InnerEnd);
  B.iinc(1, 1);
  B.branch(Opcode::Goto, Outer);
  B.bind(OuterEnd);
  B.halt();
  B.finish();
  Asm.setEntry(Main);
  Module M = Asm.build();
  ASSERT_TRUE(isValid(M));

  ModuleAnalysis A = ModuleAnalysis::compute(M);
  const MethodAnalysis *MA = A.method(M.EntryMethod);
  // The seed store at pc 1 is live (read at the inner loop's iload), and
  // both loop counters are live after their increments.
  EXPECT_TRUE(MA->Liveness.isLiveIn(2, 0));
  for (const analysis::LintFinding &F :
       analysis::lintMethod(MA->Values, MA->Liveness))
    EXPECT_NE(F.K, analysis::LintFinding::Kind::DeadStore) << F.Message;
}

TEST(LivenessTest, OverwrittenStoreIsDead) {
  Assembler Asm;
  uint32_t Main = Asm.declareMethod("main", 0, 1, false);
  MethodBuilder B = Asm.beginMethod(Main);
  B.iconst(1);
  B.istore(0); // dead: overwritten below without a read
  B.iconst(2);
  B.istore(0);
  B.iload(0);
  B.emit(Opcode::Iprint);
  B.halt();
  B.finish();
  Asm.setEntry(Main);
  Module M = Asm.build();

  ModuleAnalysis A = ModuleAnalysis::compute(M);
  const MethodAnalysis *MA = A.method(M.EntryMethod);
  EXPECT_FALSE(MA->Liveness.isLiveIn(2, 0));
  EXPECT_TRUE(MA->Liveness.isLiveIn(4, 0));

  bool SawDeadStore = false;
  for (const analysis::LintFinding &F :
       analysis::lintMethod(MA->Values, MA->Liveness))
    if (F.K == analysis::LintFinding::Kind::DeadStore && F.Pc == 1)
      SawDeadStore = true;
  EXPECT_TRUE(SawDeadStore);
}

TEST(LivenessTest, PastEndOfCodeIsEmpty) {
  Module M = testprog::countingLoop(3);
  ModuleAnalysis A = ModuleAnalysis::compute(M);
  const analysis::LocalSet &Live = A.method(M.EntryMethod)
                                       ->Liveness.liveIn(static_cast<uint32_t>(
                                           M.Methods[M.EntryMethod].Code.size()));
  EXPECT_EQ(Live.count(), 0u);
}

//===----------------------------------------------------------------------===//
// Lints
//===----------------------------------------------------------------------===//

TEST(LintTest, FlagsDeadBranchAndUnreachableArm) {
  Assembler Asm;
  uint32_t Main = Asm.declareMethod("main", 0, 1, false);
  MethodBuilder B = Asm.beginMethod(Main);
  Label Taken = B.newLabel();
  B.iconst(1);
  B.branch(Opcode::IfNe, Taken); // always taken
  B.iconst(0);                   // unreachable arm
  B.emit(Opcode::Iprint);
  B.bind(Taken);
  B.halt();
  B.finish();
  Asm.setEntry(Main);
  Module M = Asm.build();
  ASSERT_TRUE(isValid(M));

  ModuleAnalysis A = ModuleAnalysis::compute(M);
  const MethodAnalysis *MA = A.method(M.EntryMethod);
  bool SawDeadBranch = false, SawUnreachable = false;
  for (const analysis::LintFinding &F :
       analysis::lintMethod(MA->Values, MA->Liveness)) {
    SawDeadBranch |= F.K == analysis::LintFinding::Kind::DeadBranch;
    SawUnreachable |= F.K == analysis::LintFinding::Kind::UnreachableBlock;
  }
  EXPECT_TRUE(SawDeadBranch);
  EXPECT_TRUE(SawUnreachable);
}

TEST(LintTest, FlagsUnusedLocalAndStackNeutralLoop) {
  Assembler Asm;
  uint32_t Main = Asm.declareMethod("main", 0, 2, false);
  MethodBuilder B = Asm.beginMethod(Main);
  Label Spin = B.newLabel();
  B.iconst(9);
  B.istore(0); // written, never read
  B.bind(Spin);
  B.branch(Opcode::Goto, Spin); // effect-free self loop
  B.finish();
  Asm.setEntry(Main);
  Module M = Asm.build();
  ASSERT_TRUE(isValid(M));

  ModuleAnalysis A = ModuleAnalysis::compute(M);
  const MethodAnalysis *MA = A.method(M.EntryMethod);
  bool SawUnused = false, SawNeutralLoop = false;
  for (const analysis::LintFinding &F :
       analysis::lintMethod(MA->Values, MA->Liveness)) {
    SawUnused |= F.K == analysis::LintFinding::Kind::UnusedLocal;
    SawNeutralLoop |= F.K == analysis::LintFinding::Kind::StackNeutralLoop;
  }
  EXPECT_TRUE(SawUnused);
  EXPECT_TRUE(SawNeutralLoop);
}

//===----------------------------------------------------------------------===//
// Effect summaries
//===----------------------------------------------------------------------===//

TEST(SummariesTest, ClassifiesPureAndEffectfulMethods) {
  Assembler Asm;
  uint32_t Pure = Asm.declareMethod("double", 1, 1, true);
  {
    MethodBuilder B = Asm.beginMethod(Pure);
    B.iload(0);
    B.iconst(2);
    B.emit(Opcode::Imul);
    B.iret();
    B.finish();
  }
  uint32_t Main = Asm.declareMethod("main", 0, 1, false);
  {
    MethodBuilder B = Asm.beginMethod(Main);
    B.iconst(21);
    B.invokestatic(Pure);
    B.emit(Opcode::Iprint);
    B.halt();
    B.finish();
  }
  Asm.setEntry(Main);
  Module M = Asm.build();
  ASSERT_TRUE(isValid(M));

  ModuleAnalysis A = ModuleAnalysis::compute(M);
  EXPECT_TRUE(A.summaries().method(Pure).pure());
  const analysis::EffectSummary &MainSum = A.summaries().method(Main);
  EXPECT_TRUE(MainSum.Prints);
  EXPECT_TRUE(MainSum.MayHalt);
  EXPECT_FALSE(MainSum.WritesHeap);
}

TEST(SummariesTest, RecursionIsMayTrap) {
  Module M = testprog::recursiveFactorial(5);
  ModuleAnalysis A = ModuleAnalysis::compute(M);
  uint32_t Fact = 0; // declared first in the fixture
  EXPECT_TRUE(A.summaries().isRecursive(Fact));
  EXPECT_TRUE(A.summaries().method(Fact).MayTrap);
}

TEST(SummariesTest, HeapTrafficPropagatesToCallers) {
  Module M = testprog::arraySquares(4);
  ModuleAnalysis A = ModuleAnalysis::compute(M);
  const analysis::EffectSummary &S = A.summaries().method(M.EntryMethod);
  EXPECT_TRUE(S.Allocates);
  EXPECT_TRUE(S.WritesHeap);
  EXPECT_TRUE(S.ReadsHeap);
}

/// Regression for the per-trace-op query: a call instruction's facts are
/// those of its possible targets, not of the enclosing method. The static
/// call resolves to its one pure callee even though main itself prints
/// and halts; the virtual call merges every implementation of the slot
/// and is may-trap by dispatch alone.
TEST(SummariesTest, CallSiteQueryResolvesPerTraceOpDispatch) {
  Assembler Asm;
  uint32_t Slot = Asm.declareSlot("act", 1, true);
  uint32_t CA = Asm.declareClass("A", 1);
  uint32_t CB = Asm.declareClass("B", 1);
  uint32_t Reader = Asm.declareMethod("A.act", 1, 1, true);
  {
    MethodBuilder B = Asm.beginMethod(Reader);
    B.iload(0);
    B.getfield(0);
    B.iret();
    B.finish();
  }
  uint32_t Writer = Asm.declareMethod("B.act", 1, 1, true);
  {
    MethodBuilder B = Asm.beginMethod(Writer);
    B.iload(0);
    B.iconst(5);
    B.putfield(0);
    B.iconst(0);
    B.iret();
    B.finish();
  }
  Asm.setVtableEntry(CA, Slot, Reader);
  Asm.setVtableEntry(CB, Slot, Writer);
  uint32_t Pure = Asm.declareMethod("pure", 1, 1, true);
  {
    MethodBuilder B = Asm.beginMethod(Pure);
    B.iload(0);
    B.iconst(2);
    B.emit(Opcode::Imul);
    B.iret();
    B.finish();
  }
  uint32_t Main = Asm.declareMethod("main", 0, 1, false);
  {
    MethodBuilder B = Asm.beginMethod(Main);
    B.iconst(21);
    B.invokestatic(Pure);
    B.emit(Opcode::Iprint);
    B.newobj(CA);
    B.invokevirtual(Slot);
    B.emit(Opcode::Iprint);
    B.halt();
    B.finish();
  }
  Asm.setEntry(Main);
  Module M = Asm.build();
  ASSERT_TRUE(isValid(M));

  const analysis::ModuleSummaries S = analysis::ModuleSummaries::compute(M);
  const std::vector<Instruction> &Code = M.Methods[Main].Code;

  auto Static = S.callSite(M, Code[pcOf(M, Main, Opcode::InvokeStatic)]);
  ASSERT_TRUE(Static.has_value());
  EXPECT_TRUE(Static->pure()); // Callee facts, not main's print/halt.

  auto Virtual = S.callSite(M, Code[pcOf(M, Main, Opcode::InvokeVirtual)]);
  ASSERT_TRUE(Virtual.has_value());
  EXPECT_TRUE(Virtual->MayTrap); // Dispatch can fail on its own.
  EXPECT_TRUE(Virtual->ReadsHeap);  // From A.act.
  EXPECT_TRUE(Virtual->WritesHeap); // From B.act.
  EXPECT_FALSE(Virtual->Prints);

  // Non-call trace ops and unimplemented slots have no call-site facts.
  EXPECT_FALSE(S.callSite(M, Instruction(Opcode::Iadd)).has_value());
  EXPECT_FALSE(
      S.callSite(M, Instruction(Opcode::InvokeVirtual, 99)).has_value());
}

//===----------------------------------------------------------------------===//
// Alias & escape analysis
//===----------------------------------------------------------------------===//

TEST(AliasTest, EscapeLatticeClassifiesAllocationSites) {
  Assembler Asm;
  uint32_t C = Asm.declareClass("C", 1);
  uint32_t Pure = Asm.declareMethod("pure", 1, 1, true);
  {
    MethodBuilder B = Asm.beginMethod(Pure);
    B.iconst(7);
    B.iret();
    B.finish();
  }
  uint32_t Writer = Asm.declareMethod("writer", 1, 1, true);
  {
    MethodBuilder B = Asm.beginMethod(Writer);
    B.iload(0);
    B.iconst(5);
    B.putfield(0);
    B.iconst(0);
    B.iret();
    B.finish();
  }
  uint32_t Main = Asm.declareMethod("main", 0, 1, false);
  {
    MethodBuilder B = Asm.beginMethod(Main);
    // Site 0: read locally, never leaves the frame.
    B.newobj(C);
    B.istore(0);
    B.iload(0);
    B.getfield(0);
    B.emit(Opcode::Iprint);
    // Site 1: passed to a heap-free callee.
    B.newobj(C);
    B.invokestatic(Pure);
    B.emit(Opcode::Iprint);
    // Site 2: passed to a callee that may write the heap.
    B.newobj(C);
    B.invokestatic(Writer);
    B.emit(Opcode::Iprint);
    B.halt();
    B.finish();
  }
  Asm.setEntry(Main);
  Module M = Asm.build();
  ASSERT_TRUE(isValid(M));

  ModuleAnalysis A = ModuleAnalysis::compute(M);
  const MethodAnalysis *MA = A.method(Main);
  ASSERT_NE(MA, nullptr);
  analysis::MethodEscapeFacts F =
      analysis::analyzeMethodEscapes(MA->Cfg, MA->Values, A.summaries());
  ASSERT_EQ(F.Sites.size(), 3u);
  EXPECT_FALSE(F.Overflowed);
  EXPECT_EQ(F.Sites[0].Escape, analysis::EscapeClass::NoEscape);
  EXPECT_EQ(F.Sites[1].Escape, analysis::EscapeClass::ArgEscape);
  EXPECT_EQ(F.Sites[2].Escape, analysis::EscapeClass::GlobalEscape);
}

/// The trace walk proves accesses through a fresh allocation: array
/// element traffic keeps only the bounds check (NullOnly), while length
/// reads and known-class field traffic shed every check (Full).
TEST(AliasTest, TraceMemoryWalkProvesFreshAllocationAccesses) {
  Assembler Asm;
  uint32_t C = Asm.declareClass("C", 1);
  uint32_t Main = Asm.declareMethod("main", 0, 2, false);
  {
    MethodBuilder B = Asm.beginMethod(Main);
    B.iconst(4);
    B.emit(Opcode::NewArray);
    B.istore(0);
    B.iload(0);
    B.iconst(0);
    B.iconst(9);
    B.emit(Opcode::Iastore); // NullOnly: the index is dynamic.
    B.iload(0);
    B.emit(Opcode::ArrayLength); // Full: no bounds check to keep.
    B.emit(Opcode::Iprint);
    B.iload(0);
    B.iconst(0);
    B.emit(Opcode::Iaload); // NullOnly.
    B.emit(Opcode::Iprint);
    B.newobj(C);
    B.istore(1);
    B.iload(1);
    B.iconst(3);
    B.putfield(0); // Full: class known, slot in range.
    B.iload(1);
    B.getfield(0); // Full.
    B.emit(Opcode::Iprint);
    B.halt();
    B.finish();
  }
  Asm.setEntry(Main);
  Module M = Asm.build();
  ASSERT_TRUE(isValid(M));

  ModuleAnalysis A = ModuleAnalysis::compute(M);
  analysis::ValueFactsFn Facts =
      [&](uint32_t F) -> const analysis::MethodValueFacts * {
    return A.method(F) ? &A.method(F)->Values : nullptr;
  };
  std::vector<analysis::TraceBlockSpan> Blocks = {
      {Main, 0, static_cast<uint32_t>(M.Methods[Main].Code.size())}};
  analysis::AliasStats Stats;
  std::vector<analysis::TraceMemFact> Elidable =
      analysis::analyzeTraceMemory(M, Facts, Blocks, &Stats);

  EXPECT_EQ(Stats.MemOps, 5u);
  EXPECT_EQ(Stats.ElidedNull, 2u);
  EXPECT_EQ(Stats.ElidedFull, 3u);
  EXPECT_EQ(Stats.MayNullBase, 0u);
  EXPECT_EQ(Stats.UnknownBase, 0u);
  ASSERT_EQ(Elidable.size(), 5u);
  EXPECT_EQ(Elidable[0].Pc, pcOf(M, Main, Opcode::Iastore));
  EXPECT_EQ(Elidable[0].Elide, analysis::MemElide::NullOnly);
  EXPECT_EQ(Elidable[1].Pc, pcOf(M, Main, Opcode::ArrayLength));
  EXPECT_EQ(Elidable[1].Elide, analysis::MemElide::Full);
  EXPECT_EQ(Elidable[3].Pc, pcOf(M, Main, Opcode::PutField));
  EXPECT_EQ(Elidable[3].Elide, analysis::MemElide::Full);
}

/// The module-wide report aggregates both passes and names the pattern
/// that blocked each unproven access.
TEST(AliasTest, ModuleReportAggregatesStatsAndDiagnostics) {
  Assembler Asm;
  uint32_t C = Asm.declareClass("C", 1);
  uint32_t Opaque = Asm.declareMethod("opaque", 1, 1, true);
  {
    // The argument's shape is unknown to the intra-method analysis, so
    // this access is unsupported and must surface as a diagnostic.
    MethodBuilder B = Asm.beginMethod(Opaque);
    B.iload(0);
    B.getfield(0);
    B.iret();
    B.finish();
  }
  uint32_t Main = Asm.declareMethod("main", 0, 1, false);
  {
    MethodBuilder B = Asm.beginMethod(Main);
    B.newobj(C);
    B.istore(0);
    B.iload(0);
    B.iconst(3);
    B.putfield(0); // Provable: fresh known-class base.
    B.iload(0);
    B.invokestatic(Opaque);
    B.emit(Opcode::Iprint);
    B.halt();
    B.finish();
  }
  Asm.setEntry(Main);
  Module M = Asm.build();
  ASSERT_TRUE(isValid(M));

  ModuleAnalysis A = ModuleAnalysis::compute(M);
  analysis::ValueFactsFn Facts =
      [&](uint32_t F) -> const analysis::MethodValueFacts * {
    return A.method(F) ? &A.method(F)->Values : nullptr;
  };
  analysis::ModuleAliasReport R =
      analysis::analyzeModuleAliasing(M, Facts, A.summaries());

  EXPECT_EQ(R.Stats.AllocSites, 1u);
  EXPECT_EQ(R.Stats.MemOps, 2u);
  EXPECT_GE(R.Stats.ElidedFull, 1u); // main's putfield.
  EXPECT_EQ(R.Stats.UnknownBase, 1u); // opaque's getfield.
  ASSERT_EQ(R.Diagnostics.size(), 1u);
  EXPECT_NE(R.Diagnostics[0].find("opaque"), std::string::npos);
  EXPECT_NE(R.Diagnostics[0].find("base shape unknown"), std::string::npos);
  ASSERT_EQ(R.Escapes.size(), M.Methods.size());
  ASSERT_EQ(R.Escapes[Main].Sites.size(), 1u);
  // The object rides into a heap-reading (but heap-free-writing) callee.
  EXPECT_EQ(R.Escapes[Main].Sites[0].Escape, analysis::EscapeClass::ArgEscape);
}

//===----------------------------------------------------------------------===//
// Typed verifier rejection classes
//===----------------------------------------------------------------------===//

TEST(TypedVerifierTest, RejectsRefUsedAsInteger) {
  Assembler Asm;
  Asm.declareClass("C", 1);
  uint32_t Main = Asm.declareMethod("main", 0, 1, false);
  MethodBuilder B = Asm.beginMethod(Main);
  B.newobj(0);
  B.iconst(1);
  B.emit(Opcode::Iadd); // ref + int
  B.emit(Opcode::Iprint);
  B.halt();
  B.finish();
  Asm.setEntry(Main);
  EXPECT_TRUE(hasErrorContaining(Asm.build(), "reference value"));
}

TEST(TypedVerifierTest, RejectsAlwaysNullReceiver) {
  Assembler Asm;
  Asm.declareClass("C", 1);
  uint32_t Main = Asm.declareMethod("main", 0, 1, false);
  MethodBuilder B = Asm.beginMethod(Main);
  B.iconst(0); // null
  B.getfield(0);
  B.emit(Opcode::Iprint);
  B.halt();
  B.finish();
  Asm.setEntry(Main);
  EXPECT_TRUE(hasErrorContaining(Asm.build(), "receiver is always null"));
}

TEST(TypedVerifierTest, RejectsTypeInconsistentMerge) {
  Assembler Asm;
  uint32_t C = Asm.declareClass("C", 1);
  uint32_t Main = Asm.declareMethod("main", 0, 2, false);
  MethodBuilder B = Asm.beginMethod(Main);
  Label Else = B.newLabel(), Join = B.newLabel();
  // Opaque condition via a heap load, so both arms stay feasible.
  B.newobj(C);
  B.istore(1);
  B.iload(1);
  B.getfield(0);
  B.branch(Opcode::IfEq, Else);
  B.newobj(C); // one arm: a reference
  B.istore(0);
  B.branch(Opcode::Goto, Join);
  B.bind(Else);
  B.iconst(7); // other arm: a nonzero integer
  B.istore(0);
  B.bind(Join);
  B.iload(0);
  B.getfield(0); // consuming the conflict is the error
  B.emit(Opcode::Iprint);
  B.halt();
  B.finish();
  Asm.setEntry(Main);
  EXPECT_TRUE(hasErrorContaining(Asm.build(), "type-inconsistent merge"));
}

TEST(TypedVerifierTest, RejectsFalloffOnStaticallyDeadPath) {
  // The never-taken fallthrough still must not run off the end: edge
  // pruning is an analysis refinement, not a license for malformed code.
  Module M;
  Method Main;
  Main.Name = "main";
  Main.NumLocals = 1;
  Main.Code = {Instruction(Opcode::Iconst, 1), Instruction(Opcode::IfNe, 4),
               Instruction(Opcode::Iconst, 5), Instruction(Opcode::Istore, 0),
               Instruction(Opcode::Halt)};
  // Truncate the halt so the dead fallthrough falls off the end.
  Main.Code.pop_back();
  Main.Code[1].A = 3;
  M.Methods.push_back(std::move(Main));
  M.EntryMethod = 0;
  // pc3 (the IfNe target) is now istore; the taken path also ends
  // without a terminator, but the message that matters is the falloff.
  EXPECT_TRUE(hasErrorContaining(M, "fall off the end"));
}

TEST(TypedVerifierTest, RejectsWrongTypedReturns) {
  {
    // Declared ref, returns an integer.
    Assembler Asm;
    uint32_t F = Asm.declareMethod("f", 0, 0, true, TypeTag::Ref);
    {
      MethodBuilder B = Asm.beginMethod(F);
      B.iconst(7);
      B.iret();
      B.finish();
    }
    uint32_t Main = Asm.declareMethod("main", 0, 0, false);
    {
      MethodBuilder B = Asm.beginMethod(Main);
      B.invokestatic(F);
      B.emit(Opcode::Pop);
      B.halt();
      B.finish();
    }
    Asm.setEntry(Main);
    EXPECT_TRUE(hasErrorContaining(Asm.build(), "return type mismatch"));
  }
  {
    // Declared int, returns a reference.
    Assembler Asm;
    uint32_t C = Asm.declareClass("C", 1);
    uint32_t F = Asm.declareMethod("g", 0, 0, true, TypeTag::Int);
    {
      MethodBuilder B = Asm.beginMethod(F);
      B.newobj(C);
      B.iret();
      B.finish();
    }
    uint32_t Main = Asm.declareMethod("main", 0, 0, false);
    {
      MethodBuilder B = Asm.beginMethod(Main);
      B.invokestatic(F);
      B.emit(Opcode::Pop);
      B.halt();
      B.finish();
    }
    Asm.setEntry(Main);
    EXPECT_TRUE(
        hasErrorContaining(Asm.build(), "return type mismatch: returns"));
  }
}

TEST(TypedVerifierTest, StillAcceptsEveryHandBuiltProgram) {
  EXPECT_TRUE(isValid(testprog::countingLoop(10)));
  EXPECT_TRUE(isValid(testprog::recursiveFactorial(5)));
  EXPECT_TRUE(isValid(testprog::virtualDispatch()));
  EXPECT_TRUE(isValid(testprog::switchProgram()));
  EXPECT_TRUE(isValid(testprog::arraySquares(8)));
  EXPECT_TRUE(isValid(testprog::divideByZero()));
}

TEST(TypedVerifierTest, AcceptsAllWorkloadsWithZeroLintFindings) {
  for (const WorkloadInfo &W : allWorkloads()) {
    Module M = W.Build(W.DefaultScale);
    EXPECT_TRUE(verifyModule(M).empty()) << W.Name;
    ModuleAnalysis A = ModuleAnalysis::compute(M);
    size_t Findings = 0;
    for (uint32_t F = 0; F < A.numMethods(); ++F)
      if (const MethodAnalysis *MA = A.method(F))
        Findings += analysis::lintMethod(MA->Values, MA->Liveness).size();
    EXPECT_EQ(Findings, 0u) << W.Name;
  }
}

//===----------------------------------------------------------------------===//
// Dynamic facts refine static facts
//===----------------------------------------------------------------------===//

TEST(RefinementTest, GeneratedProgramsRefineTheirStaticFacts) {
  // The property test tying the whole framework to the interpreter:
  // execute generated programs and require every observed local at every
  // block leader to be inside its static may-set (ranges contain the
  // value, non-null refs are live handles of a may-set class, executed
  // blocks are statically reachable).
  fuzz::GenConfig Cfg;
  Cfg.Features.Traps = true;
  for (uint64_t Seed = 1; Seed <= 60; ++Seed) {
    Module M = fuzz::RandomProgramBuilder(Seed, Cfg).build();
    ASSERT_TRUE(verifyModule(M).empty()) << "seed " << Seed;
    std::vector<fuzz::Violation> Vs = fuzz::checkRefinement(M, 2'000'000);
    EXPECT_TRUE(Vs.empty()) << "seed " << Seed << "\n"
                            << fuzz::formatViolations(Vs);
  }
}

TEST(RefinementTest, HandBuiltProgramsRefineTheirStaticFacts) {
  for (const Module &M :
       {testprog::countingLoop(10), testprog::recursiveFactorial(6),
        testprog::virtualDispatch(), testprog::switchProgram(),
        testprog::arraySquares(8), testprog::divideByZero()}) {
    std::vector<fuzz::Violation> Vs = fuzz::checkRefinement(M, 2'000'000);
    EXPECT_TRUE(Vs.empty()) << fuzz::formatViolations(Vs);
  }
}

TEST(RefinementTest, AuditFiresOnUnsoundFacts) {
  // Sensitivity: facts computed over a program where local 0 is the
  // constant 5, applied to an otherwise identical execution where it is
  // 50. A silent pass here would mean the audit can never catch a real
  // soundness bug.
  auto build = [](int64_t C) {
    Assembler Asm;
    uint32_t Main = Asm.declareMethod("main", 0, 1, false);
    MethodBuilder B = Asm.beginMethod(Main);
    Label L = B.newLabel();
    B.iconst(C);
    B.istore(0);
    B.branch(Opcode::Goto, L);
    B.bind(L); // block leader: the audit checks local 0 here
    B.iload(0);
    B.emit(Opcode::Iprint);
    B.halt();
    B.finish();
    Asm.setEntry(Main);
    return Asm.build();
  };
  Module Claimed = build(5), Actual = build(50);
  ModuleAnalysis WrongFacts = ModuleAnalysis::compute(Claimed);
  std::vector<fuzz::Violation> Vs =
      fuzz::checkRefinement(Actual, WrongFacts, 10'000);
  ASSERT_FALSE(Vs.empty());
  EXPECT_EQ(Vs[0].Rule, "refinement-range");
}
