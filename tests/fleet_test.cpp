//===- tests/fleet_test.cpp - Sharded serving fleet end to end ------------===//
///
/// Two layers of the fleet, pinned:
///
///  - the consistent-hash ring in isolation: deterministic routing,
///    reasonable balance across virtual nodes, and minimal remapping
///    when a node leaves (only the departed node's keys move);
///  - the fleet itself, over real sockets and real forked shard
///    processes: sessions route and retire with digests matching a
///    local single-process reference, admission control answers a flood
///    with typed Backpressure carrying the configured bound, and a
///    SIGKILLed shard is reaped, restarted on the same port, and
///    warm-boots from the fleet aggregate (checkpoints-loaded > 0,
///    zero load rejects, WarmStart flagged on the next session).
///
/// The shard side runs JTC_FLEET_BIN --shard, exactly as production
/// does -- fd inheritance, execv and all.
///
//===----------------------------------------------------------------------===//

#include "fleet/ConsistentHash.h"
#include "fleet/Supervisor.h"
#include "net/Client.h"
#include "net/Protocol.h"
#include "server/VmService.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <map>
#include <string>

#include <csignal>
#include <sys/types.h>

#ifndef JTC_FLEET_BIN
#error "fleet_test requires JTC_FLEET_BIN (path to the jtc-fleet binary)"
#endif

using namespace jtc;
using namespace jtc::fleet;
using namespace jtc::net;

namespace {

/// Fresh per-test scratch directory under the system temp dir.
std::filesystem::path scratchDir(const char *Name) {
  std::filesystem::path Dir =
      std::filesystem::temp_directory_path() / "jtc-fleet-test" / Name;
  std::filesystem::remove_all(Dir);
  std::filesystem::create_directories(Dir);
  return Dir;
}

//===--- Consistent-hash ring ---------------------------------------------===//

TEST(HashRing, EmptyRingRoutesNothing) {
  HashRing R;
  uint32_t Node = 99;
  EXPECT_FALSE(R.route("anything", Node));
  EXPECT_EQ(R.size(), 0u);
}

TEST(HashRing, RoutingIsDeterministicAcrossInstances) {
  HashRing A, B;
  for (uint32_t N = 0; N < 4; ++N) {
    A.add(N);
    B.add(N);
  }
  for (int I = 0; I < 500; ++I) {
    std::string Key = "session-" + std::to_string(I);
    uint32_t NA = ~0u, NB = ~0u;
    ASSERT_TRUE(A.route(Key, NA));
    ASSERT_TRUE(B.route(Key, NB));
    EXPECT_EQ(NA, NB); // ringHash is stable, not std::hash.
    uint32_t Again = ~0u;
    ASSERT_TRUE(A.route(Key, Again));
    EXPECT_EQ(NA, Again);
  }
}

TEST(HashRing, VirtualNodesSpreadLoad) {
  HashRing R;
  for (uint32_t N = 0; N < 3; ++N)
    R.add(N);
  std::map<uint32_t, unsigned> Share;
  const int Keys = 3000;
  for (int I = 0; I < Keys; ++I) {
    uint32_t Node = ~0u;
    ASSERT_TRUE(R.route("tenant-" + std::to_string(I * 7919), Node));
    ASSERT_LT(Node, 3u);
    ++Share[Node];
  }
  // With 64 vnodes each, no shard owns less than a tenth or more than
  // two thirds of the key space.
  for (uint32_t N = 0; N < 3; ++N) {
    EXPECT_GT(Share[N], Keys / 10u) << "node " << N;
    EXPECT_LT(Share[N], Keys * 2u / 3u) << "node " << N;
  }
}

TEST(HashRing, RemovalOnlyMovesTheDepartedNodesKeys) {
  HashRing R;
  for (uint32_t N = 0; N < 3; ++N)
    R.add(N);
  std::map<std::string, uint32_t> Before;
  for (int I = 0; I < 2000; ++I) {
    std::string Key = "k" + std::to_string(I);
    uint32_t Node = ~0u;
    ASSERT_TRUE(R.route(Key, Node));
    Before[Key] = Node;
  }
  R.remove(1);
  EXPECT_FALSE(R.contains(1));
  EXPECT_EQ(R.size(), 2u);
  for (const auto &[Key, Owner] : Before) {
    uint32_t Node = ~0u;
    ASSERT_TRUE(R.route(Key, Node));
    if (Owner != 1)
      EXPECT_EQ(Node, Owner) << Key; // Survivors keep their sessions.
    else
      EXPECT_NE(Node, 1u) << Key; // Departed keys land elsewhere.
  }
  // Re-adding restores the exact original assignment (points are
  // deterministic), so a restarted shard gets its old sessions back.
  R.add(1);
  for (const auto &[Key, Owner] : Before) {
    uint32_t Node = ~0u;
    ASSERT_TRUE(R.route(Key, Node));
    EXPECT_EQ(Node, Owner) << Key;
  }
}

TEST(HashRing, AddAndRemoveAreIdempotent) {
  HashRing R;
  R.add(5);
  R.add(5);
  EXPECT_EQ(R.size(), 1u);
  R.remove(5);
  R.remove(5);
  EXPECT_EQ(R.size(), 0u);
}

//===--- The fleet over real sockets and processes ------------------------===//

FleetOptions baseOptions(unsigned Shards, const std::string &StateDir = "") {
  FleetOptions O;
  O.Shards = Shards;
  O.Workers = 1;
  O.StateDir = StateDir;
  O.ShardBinary = JTC_FLEET_BIN;
  O.Workloads = {{"compress", 0}}; // 0: the registry default scale.
  return O;
}

/// Sends one RunSession and drives the supervisor loop until the reply
/// for that request lands (replies to other requests are a test bug).
bool driveSession(FleetSupervisor &Fleet, BlockingClient &C,
                  const std::string &Key, const std::string &Module,
                  Frame &Out, double TimeoutSeconds = 60) {
  RunSessionMsg Run;
  Run.SessionKey = Key;
  Run.Module = Module;
  uint64_t Id = C.nextRequestId();
  if (!C.send(MessageType::RunSession, Id, Run.encode()))
    return false;
  auto End = std::chrono::steady_clock::now() +
             std::chrono::duration<double>(TimeoutSeconds);
  while (std::chrono::steady_clock::now() < End) {
    Fleet.poll(1);
    NetError Err;
    if (C.recv(Out, Err, 0.001)) {
      EXPECT_EQ(Out.RequestId, Id);
      return true;
    }
  }
  return false;
}

/// Digest reference from a local single-process VmService run.
struct Reference {
  uint64_t HeapDigest = 0;
  uint64_t OutputDigest = 0;

  explicit Reference(const char *Workload) {
    VmService Svc;
    Svc.registerWorkload(*findWorkload(Workload));
    SessionResult R = Svc.run({Workload});
    EXPECT_EQ(R.Run.Status, RunStatus::Finished);
    HeapDigest = R.HeapDigest;
    OutputDigest = outputDigest(R.Output);
  }
};

TEST(Fleet, SessionsRetireDigestMatchedAgainstLocalReference) {
  Reference Ref("compress");

  FleetSupervisor Fleet(baseOptions(2));
  std::string Err;
  ASSERT_TRUE(Fleet.start(Err)) << Err;
  auto Client = BlockingClient::connect(Fleet.frontPort(), Err);
  ASSERT_TRUE(Client) << Err;

  for (int I = 0; I < 6; ++I) {
    Frame F;
    ASSERT_TRUE(driveSession(Fleet, *Client, "session-" + std::to_string(I),
                             "compress", F));
    ASSERT_EQ(F.Type, MessageType::SessionDone);
    SessionDoneMsg D;
    NetError NErr;
    ASSERT_TRUE(D.decode(F.Payload, NErr)) << NErr.message();
    EXPECT_EQ(static_cast<RunStatus>(D.Status), RunStatus::Finished);
    // Remote execution is observationally identical to local.
    EXPECT_EQ(D.HeapDigest, Ref.HeapDigest) << "session " << I;
    EXPECT_EQ(D.OutputDigest, Ref.OutputDigest) << "session " << I;
    EXPECT_LT(D.Shard, 2u);
  }
  EXPECT_EQ(Fleet.stats().SessionsRouted, 6u);
  EXPECT_EQ(Fleet.stats().RoutedShardDown, 0u);
  Fleet.shutdown();
}

TEST(Fleet, UnknownModuleIsATypedError) {
  FleetSupervisor Fleet(baseOptions(1));
  std::string Err;
  ASSERT_TRUE(Fleet.start(Err)) << Err;
  auto Client = BlockingClient::connect(Fleet.frontPort(), Err);
  ASSERT_TRUE(Client) << Err;

  Frame F;
  ASSERT_TRUE(driveSession(Fleet, *Client, "k", "no-such-module", F));
  ASSERT_EQ(F.Type, MessageType::Error);
  ErrorMsg E;
  NetError NErr;
  ASSERT_TRUE(E.decode(F.Payload, NErr));
  EXPECT_EQ(E.Code, static_cast<uint32_t>(RequestErrorCode::UnknownModule));
  Fleet.shutdown();
}

TEST(Fleet, FloodAnswersWithTypedBackpressure) {
  FleetOptions O = baseOptions(1);
  O.MaxQueueDepth = 1; // Admit one session; reject the pile-up.
  FleetSupervisor Fleet(O);
  std::string Err;
  ASSERT_TRUE(Fleet.start(Err)) << Err;
  auto Client = BlockingClient::connect(Fleet.frontPort(), Err);
  ASSERT_TRUE(Client) << Err;

  // Pipeline a burst far past the bound before reading a single reply.
  const int Burst = 12;
  for (int I = 0; I < Burst; ++I) {
    RunSessionMsg Run;
    Run.SessionKey = "flood"; // Same key: all hit the one shard.
    Run.Module = "compress";
    ASSERT_TRUE(Client->send(MessageType::RunSession, Client->nextRequestId(),
                             Run.encode()));
  }

  int DoneCount = 0, RejectCount = 0;
  auto End = std::chrono::steady_clock::now() + std::chrono::seconds(120);
  while (DoneCount + RejectCount < Burst &&
         std::chrono::steady_clock::now() < End) {
    Fleet.poll(1);
    Frame F;
    NetError NErr;
    if (!Client->recv(F, NErr, 0.001))
      continue;
    if (F.Type == MessageType::SessionDone) {
      ++DoneCount;
    } else {
      ASSERT_EQ(F.Type, MessageType::Backpressure);
      BackpressureMsg B;
      ASSERT_TRUE(B.decode(F.Payload, NErr));
      EXPECT_EQ(B.Bound, 1u);
      EXPECT_GE(B.QueueDepth, B.Bound);
      ++RejectCount;
    }
  }
  // Every request got exactly one typed answer; the burst outran a
  // single-session queue, so at least one rejection must have fired,
  // and at least one session was admitted and retired.
  EXPECT_EQ(DoneCount + RejectCount, Burst);
  EXPECT_GE(DoneCount, 1);
  EXPECT_GE(RejectCount, 1);
  Fleet.shutdown();
}

TEST(Fleet, CrashedShardRestartsAndWarmBootsFromAggregate) {
  std::filesystem::path Dir = scratchDir("crash-restart");
  FleetOptions O = baseOptions(1, Dir.string());
  FleetSupervisor Fleet(O);
  std::string Err;
  ASSERT_TRUE(Fleet.start(Err)) << Err;
  auto Client = BlockingClient::connect(Fleet.frontPort(), Err);
  ASSERT_TRUE(Client) << Err;

  // Cold generation: enough sessions for the shard to publish a mature
  // snapshot worth checkpointing.
  for (int I = 0; I < 3; ++I) {
    Frame F;
    ASSERT_TRUE(
        driveSession(Fleet, *Client, "warmup-" + std::to_string(I),
                     "compress", F));
    ASSERT_EQ(F.Type, MessageType::SessionDone);
  }

  // Aggregate: checkpoint the shard and merge into <state>/fleet/.
  ASSERT_TRUE(Fleet.aggregateNow(Err)) << Err;
  EXPECT_GE(Fleet.stats().AggregatesMerged, 1u);
  EXPECT_TRUE(std::filesystem::exists(Dir / "fleet" / "compress.jtcp"));

  // Kill the shard the way production shards die.
  pid_t Victim = Fleet.shardPid(0);
  ASSERT_GT(Victim, 0);
  ASSERT_EQ(::kill(Victim, SIGKILL), 0);

  auto End = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while ((Fleet.stats().ShardRestarts < 1 || !Fleet.shardConnected(0)) &&
         std::chrono::steady_clock::now() < End)
    Fleet.poll(10);
  ASSERT_GE(Fleet.stats().ShardRestarts, 1u);
  ASSERT_TRUE(Fleet.shardConnected(0));
  EXPECT_NE(Fleet.shardPid(0), Victim);

  // The restarted shard pre-published the fleet aggregate at register
  // time, so its very first session runs warm.
  Frame F;
  ASSERT_TRUE(driveSession(Fleet, *Client, "after-crash", "compress", F));
  ASSERT_EQ(F.Type, MessageType::SessionDone);
  SessionDoneMsg D;
  NetError NErr;
  ASSERT_TRUE(D.decode(F.Payload, NErr));
  EXPECT_EQ(static_cast<RunStatus>(D.Status), RunStatus::Finished);
  EXPECT_TRUE(D.WarmStart);

  // And its counters prove the disk path: the aggregate loaded cleanly.
  std::vector<ShardStatsReport> Reports;
  ASSERT_TRUE(Fleet.fetchStats(Reports, Err)) << Err;
  ASSERT_EQ(Reports.size(), 1u);
  uint64_t Loaded = 0, LoadRejects = 1;
  for (const auto &[Key, Value] : Reports[0].Counters) {
    if (Key == "checkpoints-loaded")
      Loaded = Value;
    else if (Key == "checkpoint-load-rejects")
      LoadRejects = Value;
  }
  EXPECT_GE(Loaded, 1u);
  EXPECT_EQ(LoadRejects, 0u);
  Fleet.shutdown();
}

} // namespace
