//===- tests/blockdiscovery_test.cpp - Basic-block preparation ------------===//

#include "interp/PreparedModule.h"

#include "TestPrograms.h"
#include "bytecode/Assembler.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace jtc;

namespace {

Module singleMethod(std::vector<Instruction> Code, uint32_t Locals = 2) {
  Module M;
  Method Main;
  Main.Name = "main";
  Main.NumLocals = Locals;
  Main.Code = std::move(Code);
  M.Methods.push_back(std::move(Main));
  return M;
}

} // namespace

TEST(BlockDiscoveryTest, StraightLineIsOneBlock) {
  Module M = singleMethod({Instruction(Opcode::Iconst, 1),
                           Instruction(Opcode::Iconst, 2),
                           Instruction(Opcode::Iadd),
                           Instruction(Opcode::Pop),
                           Instruction(Opcode::Halt)});
  PreparedModule PM(M);
  EXPECT_EQ(PM.numBlocks(), 1u);
  EXPECT_EQ(PM.block(0).StartPc, 0u);
  EXPECT_EQ(PM.block(0).EndPc, 5u);
  EXPECT_EQ(PM.blockSize(0), 5u);
}

TEST(BlockDiscoveryTest, ConditionalBranchMakesThreeBlocks) {
  // 0: iconst, 1: ifeq ->4, 2: nop, 3: halt, 4: halt
  Module M = singleMethod({Instruction(Opcode::Iconst, 0),
                           Instruction(Opcode::IfEq, 4),
                           Instruction(Opcode::Nop),
                           Instruction(Opcode::Halt),
                           Instruction(Opcode::Halt)});
  PreparedModule PM(M);
  EXPECT_EQ(PM.numBlocks(), 3u);
  EXPECT_EQ(PM.block(0).EndPc, 2u);       // [0, 2): ends at the branch
  EXPECT_EQ(PM.blockStartingAt(0, 2), 1u); // fallthrough leader
  EXPECT_EQ(PM.blockStartingAt(0, 4), 2u); // branch target leader
}

TEST(BlockDiscoveryTest, CallEndsBlockAndContinuationLeads) {
  Module M = singleMethod({Instruction(Opcode::InvokeStatic, 1),
                           Instruction(Opcode::Halt)});
  Method F;
  F.Name = "f";
  F.Code = {Instruction(Opcode::Return)};
  M.Methods.push_back(std::move(F));
  PreparedModule PM(M);
  // main: [invoke], [halt]; f: [return]
  EXPECT_EQ(PM.numBlocks(), 3u);
  EXPECT_EQ(PM.block(0).EndPc, 1u);
  EXPECT_EQ(PM.blockStartingAt(0, 1), 1u);
  EXPECT_EQ(PM.methodEntryBlock(1), 2u);
}

TEST(BlockDiscoveryTest, FallthroughIntoBranchTargetSplitsBlock) {
  // A backward-branch target in the middle of straight-line code forces a
  // block boundary even though no control transfer precedes it.
  // 0: nop, 1: nop (target), 2: iconst, 3: ifeq -> 1, 4: halt
  Module M = singleMethod({Instruction(Opcode::Nop), Instruction(Opcode::Nop),
                           Instruction(Opcode::Iconst, 0),
                           Instruction(Opcode::IfEq, 1),
                           Instruction(Opcode::Halt)});
  PreparedModule PM(M);
  EXPECT_EQ(PM.numBlocks(), 3u);
  EXPECT_EQ(PM.block(0).EndPc, 1u) << "block falls through into the leader";
  EXPECT_EQ(PM.block(1).StartPc, 1u);
  EXPECT_EQ(PM.block(1).EndPc, 4u);
}

TEST(BlockDiscoveryTest, SwitchTargetsAllLead) {
  Module M = singleMethod({Instruction(Opcode::Iconst, 0),
                           Instruction(Opcode::Tableswitch, 0),
                           Instruction(Opcode::Halt),
                           Instruction(Opcode::Halt),
                           Instruction(Opcode::Halt)});
  SwitchTable T;
  T.Low = 0;
  T.Targets = {2, 3};
  T.DefaultTarget = 4;
  M.Methods[0].SwitchTables.push_back(T);
  PreparedModule PM(M);
  EXPECT_EQ(PM.numBlocks(), 4u);
  EXPECT_EQ(PM.blockStartingAt(0, 2), 1u);
  EXPECT_EQ(PM.blockStartingAt(0, 3), 2u);
  EXPECT_EQ(PM.blockStartingAt(0, 4), 3u);
}

TEST(BlockDiscoveryTest, BlocksPartitionEveryMethod) {
  // Property: blocks tile each method's code exactly, in order, with no
  // gaps or overlaps, and only the last instruction may transfer control.
  for (uint64_t Seed = 1; Seed <= 20; ++Seed) {
    testprog::RandomProgramBuilder Gen(Seed);
    Module M = Gen.build();
    PreparedModule PM(M);
    std::vector<uint32_t> NextStart(M.Methods.size(), 0);
    for (BlockId B = 0; B < PM.numBlocks(); ++B) {
      const BasicBlock &BB = PM.block(B);
      EXPECT_EQ(BB.StartPc, NextStart[BB.MethodId])
          << "seed " << Seed << " block " << B;
      EXPECT_GT(BB.EndPc, BB.StartPc);
      NextStart[BB.MethodId] = BB.EndPc;
      const Method &Mth = M.Methods[BB.MethodId];
      for (uint32_t Pc = BB.StartPc; Pc + 1 < BB.EndPc; ++Pc)
        EXPECT_FALSE(endsBlock(Mth.Code[Pc].Op))
            << "control transfer mid-block at pc " << Pc;
    }
    for (size_t I = 0; I < M.Methods.size(); ++I)
      EXPECT_EQ(NextStart[I], M.Methods[I].Code.size())
          << "method " << I << " not fully tiled";
  }
}

TEST(BlockDiscoveryTest, EntryBlockMatchesEntryMethod) {
  Module M = testprog::countingLoop(3);
  PreparedModule PM(M);
  EXPECT_EQ(PM.entryBlock(), PM.methodEntryBlock(M.EntryMethod));
  EXPECT_EQ(PM.block(PM.entryBlock()).StartPc, 0u);
}

TEST(BlockDiscoveryTest, DumpListsAllBlocks) {
  Module M = testprog::countingLoop(3);
  PreparedModule PM(M);
  std::ostringstream OS;
  PM.dump(OS);
  std::string Out = OS.str();
  EXPECT_NE(Out.find("prepared module"), std::string::npos);
  for (BlockId B = 0; B < PM.numBlocks(); ++B)
    EXPECT_NE(Out.find("block " + std::to_string(B)), std::string::npos);
}
