//===- tests/workloads_test.cpp - The six benchmark programs --------------===//

#include "workloads/Workloads.h"

#include "bytecode/Verifier.h"
#include "interp/BlockStepper.h"
#include "interp/InstructionInterpreter.h"

#include <gtest/gtest.h>

using namespace jtc;

namespace {

/// Small scales keep each differential run under a few hundred thousand
/// instructions.
uint32_t smallScale(const WorkloadInfo &W) {
  return std::max(1u, W.DefaultScale / 100);
}

} // namespace

TEST(WorkloadsTest, RegistryHasThePaperSuite) {
  const std::vector<WorkloadInfo> &All = allWorkloads();
  ASSERT_EQ(All.size(), 6u);
  EXPECT_STREQ(All[0].Name, "compress");
  EXPECT_STREQ(All[1].Name, "javac");
  EXPECT_STREQ(All[2].Name, "raytrace");
  EXPECT_STREQ(All[3].Name, "mpegaudio");
  EXPECT_STREQ(All[4].Name, "soot");
  EXPECT_STREQ(All[5].Name, "scimark");
}

TEST(WorkloadsTest, FindWorkloadByName) {
  EXPECT_NE(findWorkload("soot"), nullptr);
  EXPECT_EQ(findWorkload("fortran"), nullptr);
  EXPECT_STREQ(findWorkload("compress")->Name, "compress");
}

TEST(WorkloadsTest, AllVerify) {
  for (const WorkloadInfo &W : allWorkloads()) {
    Module M = W.Build(smallScale(W));
    std::vector<VerifyError> Errors = verifyModule(M);
    EXPECT_TRUE(Errors.empty())
        << W.Name << ":\n"
        << formatErrors(Errors);
  }
}

TEST(WorkloadsTest, AllRunToCompletion) {
  for (const WorkloadInfo &W : allWorkloads()) {
    Module M = W.Build(smallScale(W));
    Machine Mach(M);
    RunResult R = runInstructions(Mach, 100000000);
    EXPECT_EQ(R.Status, RunStatus::Finished) << W.Name;
    EXPECT_FALSE(Mach.output().empty())
        << W.Name << " must produce observable output";
  }
}

TEST(WorkloadsTest, DeterministicAcrossBuilds) {
  for (const WorkloadInfo &W : allWorkloads()) {
    Module M1 = W.Build(smallScale(W));
    Module M2 = W.Build(smallScale(W));
    Machine A(M1), B(M2);
    runInstructions(A, 100000000);
    runInstructions(B, 100000000);
    EXPECT_EQ(A.output(), B.output()) << W.Name;
  }
}

TEST(WorkloadsTest, DispatchModelsAgree) {
  for (const WorkloadInfo &W : allWorkloads()) {
    Module M = W.Build(smallScale(W));
    Machine M1(M);
    RunResult R1 = runInstructions(M1, 100000000);
    PreparedModule PM(M);
    Machine M2(M);
    BlockStepper Stepper(PM, M2);
    RunResult R2 = runBlocks(Stepper, 100000000);
    EXPECT_EQ(M1.output(), M2.output()) << W.Name;
    EXPECT_EQ(R1.Instructions, R2.Instructions) << W.Name;
  }
}

TEST(WorkloadsTest, ScaleGrowsTheRun) {
  for (const WorkloadInfo &W : allWorkloads()) {
    Module MS = W.Build(smallScale(W));
    Module ML = W.Build(smallScale(W) * 3);
    Machine Small(MS);
    Machine Large(ML);
    RunResult RS = runInstructions(Small, 100000000);
    RunResult RL = runInstructions(Large, 100000000);
    EXPECT_GT(RL.Instructions, RS.Instructions) << W.Name;
  }
}

TEST(WorkloadsTest, SuiteHasPolymorphicAndMonomorphicMembers) {
  // javac and soot carry virtual slots; compress and scimark are purely
  // static -- the structural difference behind their table rows.
  EXPECT_FALSE(buildJavac(1).Slots.empty());
  EXPECT_FALSE(buildSoot(1).Slots.empty());
  EXPECT_TRUE(buildCompress(1).Slots.empty());
  EXPECT_TRUE(buildScimark(1).Slots.empty());
}

TEST(WorkloadsTest, FootprintsDifferAsDesigned) {
  // javac's static code footprint (the production tail) dwarfs
  // scimark's; this is what drives their coverage difference.
  Module Javac = buildJavac(280);
  Module Scimark = buildScimark(14000);
  EXPECT_GT(Javac.Methods.size(), 10 * Scimark.Methods.size());
}
