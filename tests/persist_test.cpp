//===- tests/persist_test.cpp - Durable snapshot round trips --------------===//
///
/// The persist subsystem's contract, from both sides:
///
///  - round trip: capture -> encode -> decode -> reinstall into a fresh
///    session yields bit-identical adaptive state (seedDigest), and a
///    session warm-started from disk runs with the donor's traces
///    installed instead of reconstructing them;
///  - strictness: every truncation of a valid .jtcp and every single-byte
///    corruption must be rejected with a typed PersistError -- never a
///    crash, never a partial install. The checked-in corpus fixtures pin
///    the rejection kinds for the canonical failure modes.
///
//===----------------------------------------------------------------------===//

#include "persist/Snapshot.h"
#include "persist/SnapshotFormat.h"

#include "TestPrograms.h"
#include "vm/ModuleFingerprint.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

using namespace jtc;
using namespace jtc::persist;

namespace {

/// A finished donor session plus everything the tests compare against.
/// Owns its Module: PreparedModule and TraceVM reference it.
struct Donor {
  Module M;
  PreparedModule PM;
  TraceVM VM;
  SnapshotData Snap;
  uint64_t Digest = 0;

  explicit Donor(Module Mod, VmOptions VO = VmOptions())
      : M(std::move(Mod)), PM(M), VM(PM, VO) {
    EXPECT_EQ(VM.run().Status, RunStatus::Finished);
    Snap = captureSnapshot(VM);
    Digest = seedDigest(Snap.Seed);
  }
};

/// Fresh per-test scratch directory under the system temp dir.
std::filesystem::path scratchDir(const char *Name) {
  std::filesystem::path Dir =
      std::filesystem::temp_directory_path() / "jtc-persist-test" / Name;
  std::filesystem::remove_all(Dir);
  std::filesystem::create_directories(Dir);
  return Dir;
}

} // namespace

//===----------------------------------------------------------------------===//
// Round trips
//===----------------------------------------------------------------------===//

TEST(PersistTest, EncodeDecodePreservesEverything) {
  Donor D(testprog::hotLoop(20000));
  ASSERT_FALSE(D.Snap.empty());
  ASSERT_GT(D.Snap.Seed.Traces.size(), 0u);

  std::vector<uint8_t> Bytes = encodeSnapshot(D.Snap);
  SnapshotData Back;
  PersistError Err;
  ASSERT_TRUE(decodeSnapshot(Bytes.data(), Bytes.size(), Back, Err))
      << Err.message();
  EXPECT_EQ(Back.Fingerprint, D.Snap.Fingerprint);
  EXPECT_EQ(Back.DonorBlocks, D.Snap.DonorBlocks);
  EXPECT_EQ(seedDigest(Back.Seed), D.Digest);
  // The digest excludes donor history; check those fields directly.
  ASSERT_EQ(Back.Seed.Traces.size(), D.Snap.Seed.Traces.size());
  for (size_t I = 0; I < Back.Seed.Traces.size(); ++I) {
    EXPECT_EQ(Back.Seed.Traces[I].Entered, D.Snap.Seed.Traces[I].Entered);
    EXPECT_EQ(Back.Seed.Traces[I].Completed, D.Snap.Seed.Traces[I].Completed);
  }
}

TEST(PersistTest, EncodingIsDeterministic) {
  Donor D(testprog::hotLoop(20000));
  EXPECT_EQ(encodeSnapshot(D.Snap), encodeSnapshot(D.Snap));
}

TEST(PersistTest, ReinstallIntoFreshSessionDigestsIdentically) {
  Donor D(testprog::hotLoop(20000));
  std::vector<uint8_t> Bytes = encodeSnapshot(D.Snap);
  SnapshotData Back;
  PersistError Err;
  ASSERT_TRUE(decodeSnapshot(Bytes.data(), Bytes.size(), Back, Err));
  ASSERT_TRUE(validateSeed(Back.Seed, D.PM, Err)) << Err.message();

  TraceVM Fresh(D.PM, VmOptions());
  Fresh.importSeed(Back.Seed);
  EXPECT_EQ(seedDigest(Fresh.exportSeed()), D.Digest);
}

TEST(PersistTest, FileRoundTripWarmRunSkipsConstruction) {
  Donor D(testprog::hotLoop(20000));
  std::filesystem::path Dir = scratchDir("file-round-trip");
  std::string Path = (Dir / "hot.jtcp").string();

  PersistError Err;
  ASSERT_TRUE(saveSnapshotFile(D.Snap, Path, Err)) << Err.message();

  TraceVM Warm(D.PM, VmOptions());
  LoadReport Report;
  ASSERT_TRUE(loadProfile(Warm, Path, Report, Err)) << Err.message();
  EXPECT_EQ(Report.Nodes, D.Snap.Seed.Nodes.size());
  EXPECT_EQ(Report.Traces, D.Snap.Seed.Traces.size());
  EXPECT_EQ(Report.TracesDroppedByCompletion, 0u);
  EXPECT_EQ(Report.DonorBlocks, D.Snap.DonorBlocks);

  ASSERT_EQ(Warm.run().Status, RunStatus::Finished);
  VmStats S = Warm.stats();
  EXPECT_GT(S.TracesSeeded, 0u);
  EXPECT_EQ(S.TracesSeeded, D.Snap.Seed.Traces.size());
  // The donor's traces serve the hot region; nothing is rebuilt and the
  // program's output is unchanged.
  EXPECT_EQ(S.TracesConstructed, 0u);
  EXPECT_EQ(Warm.machine().output(), D.VM.machine().output());
}

TEST(PersistTest, SaveProfileAndOptionHooks) {
  std::filesystem::path Dir = scratchDir("option-hooks");
  std::string Path = (Dir / "prof.jtcp").string();

  Module M = testprog::hotLoop(20000);
  PreparedModule PM(M);
  {
    TraceVM VM(PM, VmOptions().saveProfilePath(Path));
    LoadReport Report;
    PersistError Err;
    ASSERT_TRUE(applyProfileOptions(VM, Report, Err)); // Load path unset.
    ASSERT_EQ(VM.run().Status, RunStatus::Finished);
    ASSERT_TRUE(finishProfileOptions(VM, Err)) << Err.message();
    ASSERT_TRUE(std::filesystem::exists(Path));
  }
  {
    TraceVM VM(PM, VmOptions().loadProfilePath(Path));
    LoadReport Report;
    PersistError Err;
    ASSERT_TRUE(applyProfileOptions(VM, Report, Err)) << Err.message();
    EXPECT_GT(Report.Traces, 0u);
    ASSERT_EQ(VM.run().Status, RunStatus::Finished);
    EXPECT_GT(VM.stats().TracesSeeded, 0u);
    EXPECT_EQ(VM.stats().TracesConstructed, 0u);
  }
}

TEST(PersistTest, EmptySnapshotRoundTrips) {
  SnapshotData S;
  S.Fingerprint = 0x1234;
  std::vector<uint8_t> Bytes = encodeSnapshot(S);
  SnapshotData Back;
  PersistError Err;
  ASSERT_TRUE(decodeSnapshot(Bytes.data(), Bytes.size(), Back, Err))
      << Err.message();
  EXPECT_TRUE(Back.empty());
  EXPECT_EQ(Back.Fingerprint, 0x1234u);
}

//===----------------------------------------------------------------------===//
// Strict rejection of malformed input
//===----------------------------------------------------------------------===//

namespace {

/// Decodes \p Bytes expecting failure; returns the error kind.
PersistErrorKind expectReject(const std::vector<uint8_t> &Bytes) {
  SnapshotData Out;
  PersistError Err;
  EXPECT_FALSE(decodeSnapshot(Bytes.data(), Bytes.size(), Out, Err));
  EXPECT_NE(Err.Kind, PersistErrorKind::None);
  EXPECT_TRUE(Out.empty()); // Nothing may be partially installed.
  return Err.Kind;
}

/// A small valid snapshot to mutate (kept small so the exhaustive sweeps
/// stay fast even under sanitizers).
std::vector<uint8_t> smallSnapshotBytes() {
  Donor D(testprog::countingLoop(2000));
  return encodeSnapshot(D.Snap);
}

} // namespace

TEST(PersistTest, EveryTruncationIsRejected) {
  std::vector<uint8_t> Bytes = smallSnapshotBytes();
  for (size_t Len = 0; Len < Bytes.size(); ++Len) {
    std::vector<uint8_t> Cut(Bytes.begin(), Bytes.begin() + Len);
    SnapshotData Out;
    PersistError Err;
    EXPECT_FALSE(decodeSnapshot(Cut.data(), Cut.size(), Out, Err))
        << "prefix of length " << Len << " decoded";
  }
}

TEST(PersistTest, EverySingleByteCorruptionIsRejected) {
  std::vector<uint8_t> Bytes = smallSnapshotBytes();
  for (size_t I = 0; I < Bytes.size(); ++I) {
    std::vector<uint8_t> Mut = Bytes;
    Mut[I] ^= 0xff;
    SnapshotData Out;
    PersistError Err;
    EXPECT_FALSE(decodeSnapshot(Mut.data(), Mut.size(), Out, Err))
        << "byte " << I << " flipped, still decoded";
  }
}

TEST(PersistTest, TrailingGarbageIsRejected) {
  std::vector<uint8_t> Bytes = smallSnapshotBytes();
  Bytes.push_back(0);
  EXPECT_EQ(expectReject(Bytes), PersistErrorKind::Malformed);
}

TEST(PersistTest, HeaderFailureKindsAreTyped) {
  std::vector<uint8_t> Bytes = smallSnapshotBytes();
  {
    std::vector<uint8_t> Mut = Bytes;
    Mut[0] = 'X';
    EXPECT_EQ(expectReject(Mut), PersistErrorKind::BadMagic);
  }
  {
    std::vector<uint8_t> Mut = Bytes; // Version u16 little-endian at [4].
    Mut[4] = static_cast<uint8_t>(FormatVersion + 1);
    EXPECT_EQ(expectReject(Mut), PersistErrorKind::VersionSkew);
  }
  {
    std::vector<uint8_t> Mut = Bytes; // Layout u16 little-endian at [6].
    Mut[6] |= 0x80;
    EXPECT_EQ(expectReject(Mut), PersistErrorKind::LayoutUnsupported);
  }
  {
    std::vector<uint8_t> Mut = Bytes; // Section count u32 at [8].
    Mut[8] = NumSections + 1;
    EXPECT_EQ(expectReject(Mut), PersistErrorKind::Malformed);
  }
  {
    // A payload byte flip must surface as a checksum mismatch before the
    // payload is ever interpreted. The meta section's payload starts
    // after the header and its 5-byte section frame.
    std::vector<uint8_t> Mut = Bytes;
    Mut[HeaderSize + 5] ^= 0x01;
    EXPECT_EQ(expectReject(Mut), PersistErrorKind::ChecksumMismatch);
  }
}

TEST(PersistTest, LoadProfileRejectsWrongModule) {
  // A perfectly valid snapshot of one program is refused -- before any
  // state lands -- when loaded over a structurally different one.
  Donor D(testprog::hotLoop(20000));
  std::filesystem::path Dir = scratchDir("wrong-module");
  std::string Path = (Dir / "hot.jtcp").string();
  PersistError Err;
  ASSERT_TRUE(saveSnapshotFile(D.Snap, Path, Err));

  Module Other = testprog::switchProgram();
  PreparedModule OtherPM(Other);
  ASSERT_NE(moduleFingerprint(OtherPM), D.Snap.Fingerprint);
  TraceVM VM(OtherPM, VmOptions());
  LoadReport Report;
  EXPECT_FALSE(loadProfile(VM, Path, Report, Err));
  EXPECT_EQ(Err.Kind, PersistErrorKind::FingerprintMismatch);
  ASSERT_EQ(VM.run().Status, RunStatus::Finished);
  EXPECT_EQ(VM.stats().TracesSeeded, 0u);
}

TEST(PersistTest, LoadProfileReportsMissingFile) {
  Module M = testprog::countingLoop(100);
  PreparedModule PM(M);
  TraceVM VM(PM, VmOptions());
  LoadReport Report;
  PersistError Err;
  EXPECT_FALSE(loadProfile(VM, "/nonexistent/dir/none.jtcp", Report, Err));
  EXPECT_EQ(Err.Kind, PersistErrorKind::Io);
}

TEST(PersistTest, ValidateSeedRejectsForeignBlockIds) {
  Donor D(testprog::hotLoop(20000));
  PersistError Err;
  ASSERT_TRUE(validateSeed(D.Snap.Seed, D.PM, Err));

  {
    VmSeed Bad = D.Snap.Seed;
    ASSERT_FALSE(Bad.Nodes.empty());
    Bad.Nodes[0].From = static_cast<BlockId>(D.PM.numBlocks() + 7);
    EXPECT_FALSE(validateSeed(Bad, D.PM, Err));
    EXPECT_EQ(Err.Kind, PersistErrorKind::IncompatibleSeed);
  }
  {
    VmSeed Bad = D.Snap.Seed;
    ASSERT_FALSE(Bad.Traces.empty());
    Bad.Traces[0].Blocks.back() = static_cast<BlockId>(D.PM.numBlocks());
    EXPECT_FALSE(validateSeed(Bad, D.PM, Err));
    EXPECT_EQ(Err.Kind, PersistErrorKind::IncompatibleSeed);
  }
  {
    VmSeed Bad = D.Snap.Seed;
    ASSERT_GE(Bad.Nodes.size(), 2u);
    Bad.Nodes[1] = Bad.Nodes[0]; // Duplicate (From, To) pair.
    EXPECT_FALSE(validateSeed(Bad, D.PM, Err));
    EXPECT_EQ(Err.Kind, PersistErrorKind::IncompatibleSeed);
  }
}

TEST(PersistTest, CompletionFilterDropsTracesThatFailedRetirement) {
  Donor D(testprog::hotLoop(20000));
  ASSERT_FALSE(D.Snap.Seed.Traces.empty());

  // Forge a donor history in which the first trace had already failed
  // retirement: plenty of entries, almost no completions.
  SnapshotData Forged = D.Snap;
  Forged.Seed.Traces[0].Entered = 1000;
  Forged.Seed.Traces[0].Completed = 0;

  std::filesystem::path Dir = scratchDir("completion-filter");
  std::string Path = (Dir / "forged.jtcp").string();
  PersistError Err;
  ASSERT_TRUE(saveSnapshotFile(Forged, Path, Err));

  TraceVM VM(D.PM, VmOptions());
  LoadReport Report;
  ASSERT_TRUE(loadProfile(VM, Path, Report, Err)) << Err.message();
  EXPECT_EQ(Report.TracesDroppedByCompletion, 1u);
  EXPECT_EQ(Report.Traces, D.Snap.Seed.Traces.size() - 1);
}

//===----------------------------------------------------------------------===//
// Checked-in corpus fixtures
//===----------------------------------------------------------------------===//

namespace {

std::vector<uint8_t> readFileBytes(const std::filesystem::path &P) {
  std::ifstream IS(P, std::ios::binary);
  EXPECT_TRUE(IS.good()) << "missing fixture " << P;
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(IS),
                              std::istreambuf_iterator<char>());
}

} // namespace

TEST(PersistCorpusTest, FixturesRejectWithTypedErrors) {
  const std::filesystem::path Dir = JTC_PERSIST_CORPUS_DIR;
  const struct {
    const char *File;
    PersistErrorKind Want;
  } Cases[] = {
      {"bad-magic.jtcp", PersistErrorKind::BadMagic},
      {"truncated.jtcp", PersistErrorKind::Truncated},
      {"bit-flip.jtcp", PersistErrorKind::ChecksumMismatch},
      {"version-bump.jtcp", PersistErrorKind::VersionSkew},
  };
  for (const auto &C : Cases) {
    std::vector<uint8_t> Bytes = readFileBytes(Dir / C.File);
    ASSERT_FALSE(Bytes.empty()) << C.File;
    SnapshotData Out;
    PersistError Err;
    EXPECT_FALSE(decodeSnapshot(Bytes.data(), Bytes.size(), Out, Err))
        << C.File << " decoded";
    EXPECT_EQ(Err.Kind, C.Want)
        << C.File << " rejected as " << persistErrorKindName(Err.Kind);
  }
}

TEST(PersistCorpusTest, WrongModuleFixtureIsFingerprintGated) {
  // wrong-module.jtcp is a *valid* snapshot -- of a different program. It
  // must decode cleanly and then be refused at the fingerprint gate.
  const std::filesystem::path Dir = JTC_PERSIST_CORPUS_DIR;
  std::vector<uint8_t> Bytes = readFileBytes(Dir / "wrong-module.jtcp");
  ASSERT_FALSE(Bytes.empty());
  SnapshotData Out;
  PersistError Err;
  ASSERT_TRUE(decodeSnapshot(Bytes.data(), Bytes.size(), Out, Err))
      << Err.message();

  Module M = testprog::hotLoop(20000);
  PreparedModule PM(M);
  ASSERT_NE(Out.Fingerprint, moduleFingerprint(PM));
  TraceVM VM(PM, VmOptions());
  LoadReport Report;
  std::string Path = (scratchDir("corpus-wrong") / "wrong.jtcp").string();
  ASSERT_TRUE(saveSnapshotFile(Out, Path, Err));
  EXPECT_FALSE(loadProfile(VM, Path, Report, Err));
  EXPECT_EQ(Err.Kind, PersistErrorKind::FingerprintMismatch);
}
