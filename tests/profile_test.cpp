//===- tests/profile_test.cpp - Branch correlation graph ------------------===//

#include "profile/BranchCorrelationGraph.h"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

using namespace jtc;

namespace {

/// Records signalled node ids.
class RecordingSink : public SignalSink {
public:
  void onStateChange(NodeId Id) override { Signals.push_back(Id); }
  std::vector<NodeId> Signals;
};

ProfilerConfig config(uint32_t Delay = 1, double Threshold = 0.97,
                      uint32_t DecayInterval = 256) {
  ProfilerConfig C;
  C.StartStateDelay = Delay;
  C.CompletionThreshold = Threshold;
  C.DecayInterval = DecayInterval;
  return C;
}

/// Feeds the block sequence into the graph.
void feed(BranchCorrelationGraph &G, const std::vector<BlockId> &Stream) {
  for (BlockId B : Stream)
    G.onBlockDispatch(B);
}

/// Feeds \p Pattern repeatedly, \p Times times.
void feedRepeated(BranchCorrelationGraph &G,
                  const std::vector<BlockId> &Pattern, unsigned Times) {
  for (unsigned I = 0; I < Times; ++I)
    feed(G, Pattern);
}

} // namespace

//===----------------------------------------------------------------------===//
// Node and edge construction
//===----------------------------------------------------------------------===//

TEST(BcgTest, NoNodeUntilTwoBlocks) {
  BranchCorrelationGraph G(config());
  G.onBlockDispatch(1);
  EXPECT_EQ(G.numNodes(), 0u);
  G.onBlockDispatch(2);
  EXPECT_EQ(G.numNodes(), 1u);
  EXPECT_NE(G.findNode(1, 2), InvalidNodeId);
}

TEST(BcgTest, NodePerDistinctPair) {
  BranchCorrelationGraph G(config());
  feed(G, {1, 2, 3, 1, 2, 3});
  // Pairs: (1,2) (2,3) (3,1).
  EXPECT_EQ(G.numNodes(), 3u);
  EXPECT_NE(G.findNode(1, 2), InvalidNodeId);
  EXPECT_NE(G.findNode(2, 3), InvalidNodeId);
  EXPECT_NE(G.findNode(3, 1), InvalidNodeId);
  EXPECT_EQ(G.findNode(2, 1), InvalidNodeId);
}

TEST(BcgTest, CorrelationCountsFollowStream) {
  BranchCorrelationGraph G(config());
  // After pair (1,2): 3 then 3 then 4.
  feed(G, {1, 2, 3, 1, 2, 3, 1, 2, 4});
  const BranchNode &N = G.node(G.findNode(1, 2));
  ASSERT_EQ(N.correlations().size(), 2u);
  EXPECT_NEAR(N.probabilityOf(3), 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(N.probabilityOf(4), 1.0 / 3.0, 1e-9);
  EXPECT_EQ(N.probabilityOf(99), 0.0);
  EXPECT_EQ(N.totalWeight(), 3u);
}

TEST(BcgTest, ContextAdvancesThroughCorrelationTargets) {
  BranchCorrelationGraph G(config());
  feed(G, {1, 2, 3});
  EXPECT_EQ(G.currentContext(), G.findNode(2, 3));
  G.onBlockDispatch(4);
  EXPECT_EQ(G.currentContext(), G.findNode(3, 4));
}

TEST(BcgTest, PredecessorLinksRecorded) {
  BranchCorrelationGraph G(config());
  feed(G, {1, 2, 3});
  NodeId N12 = G.findNode(1, 2);
  NodeId N23 = G.findNode(2, 3);
  const std::vector<NodeId> &Preds = G.node(N23).predecessors();
  ASSERT_EQ(Preds.size(), 1u);
  EXPECT_EQ(Preds[0], N12);
}

TEST(BcgTest, InlineCacheHitsOnRepeatedSuccessor) {
  BranchCorrelationGraph G(config());
  feedRepeated(G, {1, 2}, 100);
  const auto &S = G.stats();
  EXPECT_GT(S.InlineCacheHits, 150u) << "steady pattern should mostly hit";
  EXPECT_LT(S.ListSearches, 10u);
}

TEST(BcgTest, ExecutionCountsAreUndecayed) {
  BranchCorrelationGraph G(config());
  feedRepeated(G, {1, 2}, 600); // 1200 dispatches
  NodeId N = G.findNode(1, 2);
  EXPECT_GT(G.node(N).executions(), 500u);
}

//===----------------------------------------------------------------------===//
// Start-state delay
//===----------------------------------------------------------------------===//

TEST(BcgTest, DelayGatesHotness) {
  BranchCorrelationGraph G(config(/*Delay=*/64));
  feedRepeated(G, {1, 2}, 30); // node (1,2) executes ~30 times, (2,1) ~29
  EXPECT_FALSE(G.node(G.findNode(1, 2)).hot());
  feedRepeated(G, {1, 2}, 40);
  EXPECT_TRUE(G.node(G.findNode(1, 2)).hot());
}

TEST(BcgTest, DelayOfOneIsHotAfterFirstExecution) {
  BranchCorrelationGraph G(config(/*Delay=*/1));
  feed(G, {1, 2, 1});
  EXPECT_TRUE(G.node(G.findNode(1, 2)).hot());
}

TEST(BcgTest, ColdNodesStayNewlyCreated) {
  BranchCorrelationGraph G(config(/*Delay=*/4096));
  feedRepeated(G, {1, 2}, 600); // past several decays but below the delay
  const BranchNode &N = G.node(G.findNode(1, 2));
  EXPECT_FALSE(N.hot());
  EXPECT_EQ(N.state(), NodeState::NewlyCreated);
}

//===----------------------------------------------------------------------===//
// Decay and state evaluation
//===----------------------------------------------------------------------===//

TEST(BcgTest, DecayHalvesCounters) {
  BranchCorrelationGraph G(config(1, 0.97, /*DecayInterval=*/256));
  feedRepeated(G, {1, 2}, 300);
  const BranchNode &N = G.node(G.findNode(1, 2));
  // Without decay the weight would be ~600; one decay pass caps it.
  EXPECT_LT(N.totalWeight(), 450u);
  EXPECT_GT(G.stats().DecayPasses, 0u);
}

TEST(BcgTest, StateNotEvaluatedBeforeFirstDecay) {
  // The paper re-derives state only "during the decay process": a hot
  // node that has not yet reached a decay boundary stays NewlyCreated and
  // emits no signal.
  RecordingSink Sink;
  BranchCorrelationGraph G(config(/*Delay=*/1), &Sink);
  feedRepeated(G, {1, 2}, 100); // 200 dispatches, below one interval
  EXPECT_EQ(G.node(G.findNode(1, 2)).state(), NodeState::NewlyCreated);
  EXPECT_TRUE(Sink.Signals.empty());
}

TEST(BcgTest, SingleSuccessorBecomesUnique) {
  RecordingSink Sink;
  BranchCorrelationGraph G(config(/*Delay=*/1), &Sink);
  feedRepeated(G, {1, 2}, 300);
  const BranchNode &N = G.node(G.findNode(1, 2));
  EXPECT_EQ(N.state(), NodeState::Unique);
  EXPECT_EQ(N.maxSucc(), 1u) << "after (1,2) the stream always returns to 1";
}

TEST(BcgTest, BiasedBranchBecomesStronglyCorrelated) {
  BranchCorrelationGraph G(config(/*Delay=*/1, /*Threshold=*/0.97));
  // Pattern: (1,2)->3 heavily, ->4 once per 100.
  for (unsigned I = 0; I < 3000; ++I) {
    G.onBlockDispatch(1);
    G.onBlockDispatch(2);
    G.onBlockDispatch(I % 100 == 0 ? 4 : 3);
  }
  const BranchNode &N = G.node(G.findNode(1, 2));
  EXPECT_EQ(N.state(), NodeState::StronglyCorrelated);
  EXPECT_EQ(N.maxSucc(), 3u);
  EXPECT_GT(N.maxProbability(), 0.97);
}

TEST(BcgTest, UnbiasedBranchBecomesWeaklyCorrelated) {
  BranchCorrelationGraph G(config(/*Delay=*/1));
  for (unsigned I = 0; I < 2000; ++I) {
    G.onBlockDispatch(1);
    G.onBlockDispatch(2);
    G.onBlockDispatch(I % 2 ? 3 : 4);
  }
  const BranchNode &N = G.node(G.findNode(1, 2));
  EXPECT_EQ(N.state(), NodeState::WeaklyCorrelated);
}

TEST(BcgTest, HundredPercentThresholdRejectsAnyMiss) {
  BranchCorrelationGraph G(config(/*Delay=*/1, /*Threshold=*/1.0,
                                  /*DecayInterval=*/64));
  for (unsigned I = 0; I < 640; ++I) {
    G.onBlockDispatch(1);
    G.onBlockDispatch(2);
    G.onBlockDispatch(I % 16 == 0 ? 4 : 3); // misses survive decay
  }
  const BranchNode &N = G.node(G.findNode(1, 2));
  EXPECT_EQ(N.state(), NodeState::WeaklyCorrelated)
      << "nothing below exactly 100% may be strong at threshold 1.0";
}

TEST(BcgTest, DecayAdaptsToPhaseChange) {
  BranchCorrelationGraph G(config(/*Delay=*/1, 0.97, /*DecayInterval=*/64));
  // Phase 1: (1,2) -> 3 exclusively.
  for (unsigned I = 0; I < 1000; ++I) {
    G.onBlockDispatch(1);
    G.onBlockDispatch(2);
    G.onBlockDispatch(3);
  }
  EXPECT_EQ(G.node(G.findNode(1, 2)).maxSucc(), 3u);
  // Phase 2: (1,2) -> 4 exclusively; decay must flip the maximum.
  for (unsigned I = 0; I < 1000; ++I) {
    G.onBlockDispatch(1);
    G.onBlockDispatch(2);
    G.onBlockDispatch(4);
  }
  EXPECT_EQ(G.node(G.findNode(1, 2)).maxSucc(), 4u)
      << "recent behaviour outweighs history";
}

//===----------------------------------------------------------------------===//
// Signals
//===----------------------------------------------------------------------===//

TEST(BcgTest, FirstEvaluationSignalsOnce) {
  RecordingSink Sink;
  BranchCorrelationGraph G(config(/*Delay=*/1, 0.97, /*DecayInterval=*/64),
                           &Sink);
  feedRepeated(G, {1, 2}, 200);
  NodeId N = G.findNode(1, 2);
  unsigned Count = 0;
  for (NodeId S : Sink.Signals)
    Count += S == N;
  EXPECT_EQ(Count, 1u) << "a stable node signals exactly once";
}

TEST(BcgTest, WeakNodeMaxFlapsAreSuppressed) {
  RecordingSink Sink;
  BranchCorrelationGraph G(config(/*Delay=*/1, 0.97, /*DecayInterval=*/64),
                           &Sink);
  // Alternate successors so the maximum keeps flapping while the state
  // stays weakly correlated.
  for (unsigned I = 0; I < 4000; ++I) {
    G.onBlockDispatch(1);
    G.onBlockDispatch(2);
    G.onBlockDispatch(3 + (I / 3) % 2);
  }
  NodeId N = G.findNode(1, 2);
  unsigned Count = 0;
  for (NodeId S : Sink.Signals)
    Count += S == N;
  EXPECT_LE(Count, 2u) << "weak max-successor churn must not signal";
}

TEST(BcgTest, StrongMaxChangeSignals) {
  RecordingSink Sink;
  BranchCorrelationGraph G(config(/*Delay=*/1, 0.9, /*DecayInterval=*/64),
                           &Sink);
  for (unsigned I = 0; I < 1500; ++I) {
    G.onBlockDispatch(1);
    G.onBlockDispatch(2);
    G.onBlockDispatch(3);
  }
  size_t Before = Sink.Signals.size();
  for (unsigned I = 0; I < 1500; ++I) {
    G.onBlockDispatch(1);
    G.onBlockDispatch(2);
    G.onBlockDispatch(4);
  }
  EXPECT_GT(Sink.Signals.size(), Before)
      << "a strong branch retargeting must signal the trace cache";
}

TEST(BcgTest, AcknowledgeSuppressesResignal) {
  RecordingSink Sink;
  BranchCorrelationGraph G(config(/*Delay=*/1, 0.97, /*DecayInterval=*/64),
                           &Sink);
  feedRepeated(G, {1, 2}, 200);
  NodeId N = G.findNode(1, 2);
  G.acknowledge(N);
  size_t Before = Sink.Signals.size();
  feedRepeated(G, {1, 2}, 2000); // many decays, no behaviour change
  size_t After = 0;
  for (size_t I = Before; I < Sink.Signals.size(); ++I)
    After += Sink.Signals[I] == N;
  EXPECT_EQ(After, 0u);
}

//===----------------------------------------------------------------------===//
// Context control
//===----------------------------------------------------------------------===//

TEST(BcgTest, ResetContextForgetsHistory) {
  BranchCorrelationGraph G(config());
  feed(G, {1, 2});
  G.resetContext();
  EXPECT_EQ(G.currentContext(), InvalidNodeId);
  // The next two dispatches re-establish a context without linking to the
  // pre-reset stream.
  feed(G, {7, 8});
  EXPECT_EQ(G.currentContext(), G.findNode(7, 8));
  EXPECT_EQ(G.node(G.findNode(7, 8)).totalWeight(), 0u)
      << "re-establishing a context records no successor";
}

TEST(BcgTest, ForceContextCreatesWithoutCounting) {
  BranchCorrelationGraph G(config());
  G.forceContext(5, 6);
  NodeId N = G.findNode(5, 6);
  ASSERT_NE(N, InvalidNodeId);
  EXPECT_EQ(G.node(N).executions(), 0u);
  EXPECT_EQ(G.currentContext(), N);
  // The next dispatch is attributed to the forced pair.
  G.onBlockDispatch(7);
  EXPECT_NEAR(G.node(N).probabilityOf(7), 1.0, 1e-9);
}

TEST(BcgTest, WideFanoutStillFindsAllSuccessors) {
  // Exercises the list search and the transpose heuristic with dozens of
  // successors behind one context.
  BranchCorrelationGraph G(config(/*Delay=*/1, 0.97, /*DecayInterval=*/64));
  for (unsigned Round = 0; Round < 50; ++Round)
    for (BlockId Succ = 10; Succ < 42; ++Succ) {
      G.onBlockDispatch(1);
      G.onBlockDispatch(2);
      G.onBlockDispatch(Succ);
    }
  const BranchNode &N = G.node(G.findNode(1, 2));
  EXPECT_EQ(N.correlations().size(), 32u);
  double Sum = 0;
  for (const Correlation &C : N.correlations())
    Sum += N.probabilityOf(C.Succ);
  EXPECT_NEAR(Sum, 1.0, 1e-9) << "probabilities over successors sum to 1";
}

TEST(BcgTest, DumpMentionsNodesAndStates) {
  BranchCorrelationGraph G(config(/*Delay=*/1, 0.97, /*DecayInterval=*/64));
  feedRepeated(G, {1, 2}, 200);
  std::ostringstream OS;
  G.dump(OS);
  std::string Out = OS.str();
  EXPECT_NE(Out.find("(1 -> 2)"), std::string::npos);
  EXPECT_NE(Out.find("unique"), std::string::npos);
}
