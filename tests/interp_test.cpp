//===- tests/interp_test.cpp - Both dispatch models -----------------------===//

#include "interp/BlockStepper.h"
#include "interp/InstructionInterpreter.h"

#include "TestPrograms.h"
#include "bytecode/Verifier.h"

#include <gtest/gtest.h>

using namespace jtc;

namespace {

std::vector<int64_t> runViaInstructions(const Module &M,
                                        RunStatus Expect = RunStatus::Finished) {
  Machine Mach(M);
  RunResult R = runInstructions(Mach);
  EXPECT_EQ(R.Status, Expect);
  return Mach.output();
}

std::vector<int64_t> runViaBlocks(const Module &M,
                                  RunStatus Expect = RunStatus::Finished) {
  PreparedModule PM(M);
  Machine Mach(M);
  BlockStepper Stepper(PM, Mach);
  RunResult R = runBlocks(Stepper);
  EXPECT_EQ(R.Status, Expect);
  return Mach.output();
}

} // namespace

//===----------------------------------------------------------------------===//
// Instruction interpreter semantics
//===----------------------------------------------------------------------===//

TEST(InstructionInterpreterTest, CountingLoop) {
  EXPECT_EQ(runViaInstructions(testprog::countingLoop(10)),
            (std::vector<int64_t>{45}));
}

TEST(InstructionInterpreterTest, RecursiveFactorial) {
  EXPECT_EQ(runViaInstructions(testprog::recursiveFactorial(6)),
            (std::vector<int64_t>{720}));
}

TEST(InstructionInterpreterTest, VirtualDispatch) {
  EXPECT_EQ(runViaInstructions(testprog::virtualDispatch()),
            (std::vector<int64_t>{15, 14}));
}

TEST(InstructionInterpreterTest, TableSwitchIncludingDefault) {
  EXPECT_EQ(runViaInstructions(testprog::switchProgram()),
            (std::vector<int64_t>{100, 101, 102, 999, 999, 999}));
}

TEST(InstructionInterpreterTest, Arrays) {
  // sum of squares 0..7 = 140
  EXPECT_EQ(runViaInstructions(testprog::arraySquares(8)),
            (std::vector<int64_t>{140}));
}

TEST(InstructionInterpreterTest, TrapSurfacesWithKind) {
  Module M = testprog::divideByZero();
  Machine Mach(M);
  RunResult R = runInstructions(Mach);
  EXPECT_EQ(R.Status, RunStatus::Trapped);
  EXPECT_EQ(R.Trap, TrapKind::DivideByZero);
  EXPECT_TRUE(Mach.output().empty());
}

TEST(InstructionInterpreterTest, DispatchesEqualInstructions) {
  Module M = testprog::countingLoop(10);
  Machine Mach(M);
  RunResult R = runInstructions(Mach);
  EXPECT_EQ(R.Dispatches, R.Instructions)
      << "Fig. 1 model: one dispatch per instruction";
  EXPECT_GT(R.Instructions, 0u);
}

TEST(InstructionInterpreterTest, BudgetStopsTheRun) {
  Module M = testprog::countingLoop(1000000);
  Machine Mach(M);
  RunResult R = runInstructions(Mach, /*MaxInstructions=*/100);
  EXPECT_EQ(R.Status, RunStatus::BudgetExhausted);
  EXPECT_GE(R.Instructions, 100u);
  EXPECT_LE(R.Instructions, 101u);
}

//===----------------------------------------------------------------------===//
// Block stepper
//===----------------------------------------------------------------------===//

TEST(BlockStepperTest, AgreesWithInstructionInterpreter) {
  const Module Programs[] = {
      testprog::countingLoop(50),    testprog::recursiveFactorial(8),
      testprog::virtualDispatch(),   testprog::switchProgram(),
      testprog::arraySquares(16),    testprog::hotLoop(1000),
  };
  for (const Module &M : Programs) {
    Machine M1(M);
    RunResult R1 = runInstructions(M1);
    PreparedModule PM(M);
    Machine M2(M);
    BlockStepper Stepper(PM, M2);
    RunResult R2 = runBlocks(Stepper);
    EXPECT_EQ(R1.Status, R2.Status);
    EXPECT_EQ(M1.output(), M2.output());
    EXPECT_EQ(R1.Instructions, R2.Instructions)
        << "both models execute the same instruction stream";
  }
}

TEST(BlockStepperTest, FewerDispatchesThanInstructions) {
  Module M = testprog::countingLoop(100);
  PreparedModule PM(M);
  Machine Mach(M);
  BlockStepper Stepper(PM, Mach);
  RunResult R = runBlocks(Stepper);
  EXPECT_LT(R.Dispatches, R.Instructions)
      << "Fig. 2 model: one dispatch per basic block";
  EXPECT_GT(R.Dispatches, 0u);
}

TEST(BlockStepperTest, TrapMidBlockStopsRun) {
  Module M = testprog::divideByZero();
  EXPECT_EQ(runViaBlocks(M, RunStatus::Trapped), (std::vector<int64_t>{}));
}

TEST(BlockStepperTest, HookSeesEveryExecutedBlockInOrder) {
  Module M = testprog::countingLoop(3);
  PreparedModule PM(M);
  Machine Mach(M);
  BlockStepper Stepper(PM, Mach);
  std::vector<BlockId> Dispatched;
  RunResult R = runBlocksWithHook(
      Stepper, [&Dispatched](BlockId B) { Dispatched.push_back(B); });
  EXPECT_EQ(Dispatched.size(), R.Dispatches);
  ASSERT_FALSE(Dispatched.empty());
  EXPECT_EQ(Dispatched.front(), PM.entryBlock());
  // Re-execute with a fresh machine, checking the stepper reports the
  // same sequence via currentBlock().
  Machine Mach2(M);
  BlockStepper S2(PM, Mach2);
  S2.start();
  size_t I = 0;
  while (true) {
    ASSERT_LT(I, Dispatched.size());
    EXPECT_EQ(S2.currentBlock(), Dispatched[I]);
    ++I;
    if (S2.step() != BlockStepper::StepStatus::Continue)
      break;
  }
  EXPECT_EQ(I, Dispatched.size());
}

TEST(BlockStepperTest, StepperStateWalksCallsAndReturns) {
  Module M = testprog::recursiveFactorial(3);
  PreparedModule PM(M);
  Machine Mach(M);
  BlockStepper Stepper(PM, Mach);
  Stepper.start();
  // The entry block belongs to main.
  EXPECT_EQ(PM.block(Stepper.currentBlock()).MethodId, M.EntryMethod);
  bool VisitedCallee = false;
  while (Stepper.step() == BlockStepper::StepStatus::Continue)
    if (Stepper.currentBlock() != InvalidBlockId &&
        PM.block(Stepper.currentBlock()).MethodId != M.EntryMethod)
      VisitedCallee = true;
  EXPECT_TRUE(VisitedCallee);
  EXPECT_EQ(Mach.output(), (std::vector<int64_t>{6}));
}

TEST(BlockStepperTest, InstructionCountMatchesBlockSizes) {
  Module M = testprog::switchProgram();
  PreparedModule PM(M);
  Machine Mach(M);
  BlockStepper Stepper(PM, Mach);
  uint64_t SizeSum = 0;
  RunResult R = runBlocksWithHook(
      Stepper, [&](BlockId B) { SizeSum += PM.blockSize(B); });
  EXPECT_EQ(SizeSum, R.Instructions)
      << "every dispatched block runs to its end";
}

TEST(BlockStepperTest, RandomProgramsAgreeAcrossModels) {
  for (uint64_t Seed = 100; Seed < 140; ++Seed) {
    testprog::RandomProgramBuilder Gen(Seed);
    Module M = Gen.build();
    ASSERT_TRUE(isValid(M)) << "seed " << Seed;
    Machine M1(M);
    RunResult R1 = runInstructions(M1, 10000000);
    PreparedModule PM(M);
    Machine M2(M);
    BlockStepper Stepper(PM, M2);
    RunResult R2 = runBlocks(Stepper, 10000000);
    EXPECT_EQ(R1.Status, R2.Status) << "seed " << Seed;
    EXPECT_EQ(M1.output(), M2.output()) << "seed " << Seed;
    EXPECT_EQ(R1.Instructions, R2.Instructions) << "seed " << Seed;
  }
}
