//===- tests/snapshot_merge_test.cpp - Profile snapshot merge laws --------===//
///
/// The algebra the fleet's aggregation tier depends on, pinned as laws:
///
///  - commutative: merging the same multiset of snapshots in any order is
///    byte-identical (the aggregator folds shard checkpoints in whatever
///    order the filesystem lists them);
///  - idempotent: merging a snapshot with itself is the identity up to
///    canonical ordering (shards double-report after a crashed round);
///  - decay-epoch reconciliation: the merged epoch is the max input
///    epoch, and per-node scalars reconcile toward the mature side;
///  - traces dedup by structural fingerprint keeping the max donor
///    history, and the donor-completion filter drops traces whose merged
///    history already failed the retirement bar;
///  - mismatched module fingerprints are a typed error, never a merge.
///
/// Laws are checked over hand-built synthetic snapshots (exact control of
/// every field) plus real donor captures merged through the file-level
/// entry point and reinstalled into a fresh session.
///
//===----------------------------------------------------------------------===//

#include "persist/Snapshot.h"
#include "persist/SnapshotMerge.h"

#include "TestPrograms.h"

#include <gtest/gtest.h>

#include <filesystem>

using namespace jtc;
using namespace jtc::persist;

namespace {

/// Fresh per-test scratch directory under the system temp dir.
std::filesystem::path scratchDir(const char *Name) {
  std::filesystem::path Dir =
      std::filesystem::temp_directory_path() / "jtc-merge-test" / Name;
  std::filesystem::remove_all(Dir);
  std::filesystem::create_directories(Dir);
  return Dir;
}

BcgNodeSnapshot makeNode(BlockId From, BlockId To, uint32_t StartDelayLeft,
                         uint32_t SinceDecay, uint64_t Execs,
                         std::vector<std::pair<BlockId, uint16_t>> Corrs) {
  BcgNodeSnapshot N;
  N.From = From;
  N.To = To;
  N.StartDelayLeft = StartDelayLeft;
  N.SinceDecay = SinceDecay;
  N.Execs = Execs;
  N.Corrs = std::move(Corrs);
  return N;
}

TraceCache::TraceSeed makeTrace(BlockId EntryFrom, std::vector<BlockId> Blocks,
                                uint64_t Entered, uint64_t Completed,
                                double ExpectedCompletion = 1.0) {
  TraceCache::TraceSeed T;
  T.EntryFrom = EntryFrom;
  T.Blocks = std::move(Blocks);
  T.ExpectedCompletion = ExpectedCompletion;
  T.Entered = Entered;
  T.Completed = Completed;
  return T;
}

SnapshotData makeSnap(uint64_t Fingerprint, uint64_t DonorBlocks,
                      std::vector<BcgNodeSnapshot> Nodes,
                      std::vector<TraceCache::TraceSeed> Traces) {
  SnapshotData S;
  S.Fingerprint = Fingerprint;
  S.DonorBlocks = DonorBlocks;
  S.Seed.Nodes = std::move(Nodes);
  S.Seed.Traces = std::move(Traces);
  return S;
}

SnapshotData merged(const std::vector<SnapshotData> &Inputs,
                    MergeReport *ReportOut = nullptr) {
  SnapshotData Out;
  MergeReport Report;
  PersistError Err;
  EXPECT_TRUE(mergeSnapshots(Inputs, TraceConfig(), Out, Report, Err))
      << Err.message();
  if (ReportOut)
    *ReportOut = Report;
  return Out;
}

} // namespace

//===----------------------------------------------------------------------===//
// Merge laws over synthetic snapshots
//===----------------------------------------------------------------------===//

TEST(SnapshotMerge, CommutativeByteIdentical) {
  SnapshotData A = makeSnap(
      42, 1000,
      {makeNode(1, 2, 0, 5, 100, {{3, 40}, {4, 7}}),
       makeNode(2, 3, 2, 0, 10, {{5, 9}})},
      {makeTrace(1, {2, 3, 4}, 30, 29), makeTrace(5, {6}, 4, 4)});
  SnapshotData B = makeSnap(
      42, 800,
      {makeNode(1, 2, 1, 9, 80, {{3, 55}, {7, 2}}),
       makeNode(9, 10, 0, 1, 3, {{11, 1}})},
      {makeTrace(1, {2, 3, 4}, 50, 48), makeTrace(8, {9, 10}, 2, 2)});

  EXPECT_EQ(encodeSnapshot(merged({A, B})), encodeSnapshot(merged({B, A})));
}

TEST(SnapshotMerge, SelfMergeIsIdentityUpToCanonical) {
  // Deliberately non-canonical input: nodes and corrs out of order.
  SnapshotData A = makeSnap(
      7, 500,
      {makeNode(4, 5, 0, 0, 9, {{8, 3}, {6, 12}}),
       makeNode(1, 2, 3, 4, 50, {{3, 20}})},
      {makeTrace(4, {5, 6}, 10, 10), makeTrace(1, {2, 3}, 8, 8)});

  MergeReport Report;
  SnapshotData M = merged({A, A}, &Report);
  EXPECT_EQ(encodeSnapshot(M), encodeSnapshot(canonicalSnapshot(A)));
  EXPECT_EQ(Report.TracesDeduped, 2u); // Both traces folded once each.
  EXPECT_EQ(Report.Nodes, 2u);
  EXPECT_EQ(Report.Traces, 2u);
}

TEST(SnapshotMerge, MergeOfOneCanonicalizes) {
  SnapshotData A = makeSnap(7, 500,
                            {makeNode(4, 5, 0, 0, 9, {{8, 3}, {6, 12}}),
                             makeNode(1, 2, 3, 4, 50, {{3, 20}})},
                            {makeTrace(4, {5, 6}, 1, 1)});
  EXPECT_EQ(encodeSnapshot(merged({A})),
            encodeSnapshot(canonicalSnapshot(A)));
  // Canonicalizing twice changes nothing.
  EXPECT_EQ(encodeSnapshot(canonicalSnapshot(canonicalSnapshot(A))),
            encodeSnapshot(canonicalSnapshot(A)));
}

TEST(SnapshotMerge, CountersMergeByElementWiseMax) {
  SnapshotData A = makeSnap(1, 0, {makeNode(1, 2, 0, 0, 5, {{3, 40}, {4, 7}})},
                            {});
  SnapshotData B = makeSnap(1, 0, {makeNode(1, 2, 0, 0, 5, {{3, 15}, {9, 6}})},
                            {});
  SnapshotData M = merged({A, B});
  ASSERT_EQ(M.Seed.Nodes.size(), 1u);
  const BcgNodeSnapshot &N = M.Seed.Nodes[0];
  // Union of targets, each at the max observed count, sorted by target.
  ASSERT_EQ(N.Corrs.size(), 3u);
  EXPECT_EQ(N.Corrs[0], (std::pair<BlockId, uint16_t>{3, 40}));
  EXPECT_EQ(N.Corrs[1], (std::pair<BlockId, uint16_t>{4, 7}));
  EXPECT_EQ(N.Corrs[2], (std::pair<BlockId, uint16_t>{9, 6}));

  // Max never double-counts: merging B in again is a no-op.
  EXPECT_EQ(encodeSnapshot(merged({A, B, B})), encodeSnapshot(M));
}

TEST(SnapshotMerge, DecayEpochReconciliation) {
  // A is the younger capture (lower epoch, start delay still pending);
  // B is more mature. The merge reconciles toward maturity.
  SnapshotData A = makeSnap(1, 300, {makeNode(1, 2, 8, 2, 40, {{3, 1}})}, {});
  SnapshotData B = makeSnap(1, 900, {makeNode(1, 2, 0, 6, 70, {{3, 2}})}, {});
  MergeReport Report;
  SnapshotData M = merged({A, B}, &Report);
  EXPECT_EQ(M.DonorBlocks, 900u); // Max epoch wins.
  EXPECT_EQ(Report.Epoch, 900u);
  ASSERT_EQ(M.Seed.Nodes.size(), 1u);
  EXPECT_EQ(M.Seed.Nodes[0].StartDelayLeft, 0u); // min
  EXPECT_EQ(M.Seed.Nodes[0].SinceDecay, 6u);     // max
  EXPECT_EQ(M.Seed.Nodes[0].Execs, 70u);         // max
}

TEST(SnapshotMerge, TraceDedupKeepsMaxHistory) {
  SnapshotData A = makeSnap(1, 0, {}, {makeTrace(1, {2, 3}, 30, 29, 0.99)});
  SnapshotData B = makeSnap(1, 0, {}, {makeTrace(1, {2, 3}, 50, 41, 0.98)});
  MergeReport Report;
  SnapshotData M = merged({A, B}, &Report);
  ASSERT_EQ(M.Seed.Traces.size(), 1u);
  EXPECT_EQ(M.Seed.Traces[0].Entered, 50u);
  EXPECT_EQ(M.Seed.Traces[0].Completed, 41u);
  EXPECT_EQ(Report.TracesDeduped, 1u);

  // A different block sequence is a different trace, not a duplicate.
  SnapshotData C = makeSnap(1, 0, {}, {makeTrace(1, {2, 4}, 5, 5)});
  MergeReport R2;
  SnapshotData M2 = merged({A, C}, &R2);
  EXPECT_EQ(M2.Seed.Traces.size(), 2u);
  EXPECT_EQ(R2.TracesDeduped, 0u);
}

TEST(SnapshotMerge, CompletionFilterDropsProvenRetirees) {
  TraceConfig TC;
  // Above the check threshold with completion far below bar: dropped.
  TraceCache::TraceSeed Bad =
      makeTrace(1, {2, 3}, TC.RetirementCheckEntries + 36, 50);
  // Same poor rate but too few donor entries to judge: kept.
  TraceCache::TraceSeed Young = makeTrace(4, {5}, 4, 2);
  // Healthy history: kept.
  TraceCache::TraceSeed Good = makeTrace(6, {7}, 200, 199);
  EXPECT_FALSE(passesCompletionFilter(Bad, TC));
  EXPECT_TRUE(passesCompletionFilter(Young, TC));
  EXPECT_TRUE(passesCompletionFilter(Good, TC));

  SnapshotData A = makeSnap(1, 0, {}, {Bad, Young, Good});
  MergeReport Report;
  SnapshotData M = merged({A}, &Report);
  EXPECT_EQ(M.Seed.Traces.size(), 2u);
  EXPECT_EQ(Report.TracesDroppedByCompletion, 1u);
  for (const auto &T : M.Seed.Traces)
    EXPECT_NE(T.EntryFrom, 1u);

  // Dedup can push a trace over the bar: two observations of the same
  // trace whose *combined* (max) history proves it a retiree.
  SnapshotData H1 = makeSnap(1, 0, {},
                             {makeTrace(9, {10}, TC.RetirementCheckEntries / 2,
                                        TC.RetirementCheckEntries / 4)});
  SnapshotData H2 = makeSnap(1, 0, {},
                             {makeTrace(9, {10}, TC.RetirementCheckEntries * 2,
                                        TC.RetirementCheckEntries / 2)});
  MergeReport R2;
  SnapshotData M2 = merged({H1, H2}, &R2);
  EXPECT_EQ(M2.Seed.Traces.size(), 0u);
  EXPECT_EQ(R2.TracesDroppedByCompletion, 1u);
}

TEST(SnapshotMerge, FingerprintMismatchIsTypedAndLeavesOutUntouched) {
  SnapshotData A = makeSnap(1, 0, {makeNode(1, 2, 0, 0, 1, {})}, {});
  SnapshotData B = makeSnap(2, 0, {}, {});
  SnapshotData Out = makeSnap(99, 7, {}, {makeTrace(1, {2}, 1, 1)});
  MergeReport Report;
  PersistError Err;
  EXPECT_FALSE(mergeSnapshots({A, B}, TraceConfig(), Out, Report, Err));
  EXPECT_EQ(Err.Kind, PersistErrorKind::FingerprintMismatch);
  EXPECT_EQ(Out.Fingerprint, 99u); // Untouched on failure.
  EXPECT_EQ(Out.Seed.Traces.size(), 1u);
}

TEST(SnapshotMerge, NoInputsIsMalformed) {
  SnapshotData Out;
  MergeReport Report;
  PersistError Err;
  EXPECT_FALSE(mergeSnapshots({}, TraceConfig(), Out, Report, Err));
  EXPECT_EQ(Err.Kind, PersistErrorKind::Malformed);
}

//===----------------------------------------------------------------------===//
// Real donors through the file-level path
//===----------------------------------------------------------------------===//

TEST(SnapshotMerge, FileMergeOfRealDonorsReinstalls) {
  // Two donor sessions over the same module; deterministic program, so
  // their snapshots describe the same traces.
  Module M1 = testprog::hotLoop(20000);
  PreparedModule PM(M1);
  TraceVM D1(PM, VmOptions());
  TraceVM D2(PM, VmOptions());
  ASSERT_EQ(D1.run().Status, RunStatus::Finished);
  ASSERT_EQ(D2.run().Status, RunStatus::Finished);

  std::filesystem::path Dir = scratchDir("file-merge");
  std::string PA = (Dir / "a.jtcp").string();
  std::string PB = (Dir / "b.jtcp").string();
  std::string POut = (Dir / "merged.jtcp").string();
  PersistError Err;
  ASSERT_TRUE(saveSnapshotFile(captureSnapshot(D1), PA, Err));
  ASSERT_TRUE(saveSnapshotFile(captureSnapshot(D2), PB, Err));

  MergeReport Report;
  ASSERT_TRUE(mergeSnapshotFiles({PA, PB}, POut, TraceConfig(), Report, Err))
      << Err.message();
  EXPECT_EQ(Report.Inputs, 2u);
  EXPECT_GT(Report.Nodes, 0u);
  EXPECT_GT(Report.Traces, 0u);

  // The merged file loads into a fresh session through the strict
  // pipeline and serves the donors' traces.
  TraceVM Warm(PM, VmOptions());
  LoadReport LR;
  ASSERT_TRUE(loadProfile(Warm, POut, LR, Err)) << Err.message();
  EXPECT_EQ(LR.Traces, Report.Traces);
  ASSERT_EQ(Warm.run().Status, RunStatus::Finished);
  EXPECT_GT(Warm.stats().TracesSeeded, 0u);
  EXPECT_EQ(Warm.machine().output(), D1.machine().output());

  // Re-merging the merged file with an original input is byte-stable:
  // the aggregation tier can fold the same checkpoint forever.
  std::string PAgain = (Dir / "again.jtcp").string();
  ASSERT_TRUE(
      mergeSnapshotFiles({POut, PA}, PAgain, TraceConfig(), Report, Err));
  SnapshotData SOut, SAgain;
  ASSERT_TRUE(loadSnapshotFile(POut, SOut, Err));
  ASSERT_TRUE(loadSnapshotFile(PAgain, SAgain, Err));
  EXPECT_EQ(encodeSnapshot(SAgain), encodeSnapshot(SOut));
}

TEST(SnapshotMerge, FileMergeMissingInputNamesThePath) {
  std::filesystem::path Dir = scratchDir("missing-input");
  std::string PA = (Dir / "a.jtcp").string();
  PersistError Err;
  ASSERT_TRUE(saveSnapshotFile(
      makeSnap(1, 0, {makeNode(1, 2, 0, 0, 1, {})}, {}), PA, Err));
  std::string Missing = (Dir / "nope.jtcp").string();
  MergeReport Report;
  EXPECT_FALSE(mergeSnapshotFiles({PA, Missing}, (Dir / "out.jtcp").string(),
                                  TraceConfig(), Report, Err));
  EXPECT_EQ(Err.Kind, PersistErrorKind::Io);
  EXPECT_NE(Err.Detail.find("nope.jtcp"), std::string::npos);
}
