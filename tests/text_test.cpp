//===- tests/text_test.cpp - Assembly parser and writer -------------------===//

#include "text/AsmParser.h"
#include "text/AsmWriter.h"

#include "TestPrograms.h"
#include "bytecode/Verifier.h"
#include "interp/InstructionInterpreter.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace jtc;

namespace {

/// Structural module equality (names, signatures, code, tables, vtables).
void expectModulesEqual(const Module &A, const Module &B) {
  ASSERT_EQ(A.Methods.size(), B.Methods.size());
  ASSERT_EQ(A.Classes.size(), B.Classes.size());
  ASSERT_EQ(A.Slots.size(), B.Slots.size());
  EXPECT_EQ(A.EntryMethod, B.EntryMethod);
  for (size_t I = 0; I < A.Methods.size(); ++I) {
    const Method &MA = A.Methods[I], &MB = B.Methods[I];
    EXPECT_EQ(MA.Name, MB.Name);
    EXPECT_EQ(MA.NumArgs, MB.NumArgs);
    EXPECT_EQ(MA.NumLocals, MB.NumLocals);
    EXPECT_EQ(MA.ReturnsValue, MB.ReturnsValue);
    ASSERT_EQ(MA.Code.size(), MB.Code.size()) << MA.Name;
    for (size_t Pc = 0; Pc < MA.Code.size(); ++Pc)
      EXPECT_EQ(MA.Code[Pc], MB.Code[Pc]) << MA.Name << " @" << Pc;
    ASSERT_EQ(MA.SwitchTables.size(), MB.SwitchTables.size());
    for (size_t T = 0; T < MA.SwitchTables.size(); ++T) {
      EXPECT_EQ(MA.SwitchTables[T].Low, MB.SwitchTables[T].Low);
      EXPECT_EQ(MA.SwitchTables[T].Targets, MB.SwitchTables[T].Targets);
      EXPECT_EQ(MA.SwitchTables[T].DefaultTarget,
                MB.SwitchTables[T].DefaultTarget);
    }
  }
  for (size_t I = 0; I < A.Classes.size(); ++I) {
    EXPECT_EQ(A.Classes[I].Name, B.Classes[I].Name);
    EXPECT_EQ(A.Classes[I].NumFields, B.Classes[I].NumFields);
    EXPECT_EQ(A.Classes[I].Vtable, B.Classes[I].Vtable);
  }
  for (size_t I = 0; I < A.Slots.size(); ++I) {
    EXPECT_EQ(A.Slots[I].Name, B.Slots[I].Name);
    EXPECT_EQ(A.Slots[I].ArgCount, B.Slots[I].ArgCount);
    EXPECT_EQ(A.Slots[I].ReturnsValue, B.Slots[I].ReturnsValue);
  }
}

void expectRoundTrip(const Module &M) {
  std::string Text = moduleToString(M);
  std::string Error;
  std::optional<Module> Parsed = parseModule(Text, Error);
  ASSERT_TRUE(Parsed.has_value()) << Error << "\n--- text was:\n" << Text;
  expectModulesEqual(M, *Parsed);
}

} // namespace

//===----------------------------------------------------------------------===//
// Round trips
//===----------------------------------------------------------------------===//

TEST(TextRoundTrip, HandBuiltPrograms) {
  expectRoundTrip(testprog::countingLoop(10));
  expectRoundTrip(testprog::recursiveFactorial(5));
  expectRoundTrip(testprog::virtualDispatch());
  expectRoundTrip(testprog::switchProgram());
  expectRoundTrip(testprog::arraySquares(8));
  expectRoundTrip(testprog::hotLoop(100));
}

TEST(TextRoundTrip, RandomPrograms) {
  for (uint64_t Seed = 900; Seed < 930; ++Seed) {
    testprog::RandomProgramBuilder Gen(Seed);
    Module M = Gen.build();
    SCOPED_TRACE("seed " + std::to_string(Seed));
    expectRoundTrip(M);
  }
}

TEST(TextRoundTrip, WorkloadModules) {
  // The full workloads are large (hundreds of generated methods); the
  // round trip must still be exact.
  for (const WorkloadInfo &W : allWorkloads()) {
    SCOPED_TRACE(W.Name);
    expectRoundTrip(W.Build(std::max(1u, W.DefaultScale / 100)));
  }
}

TEST(TextRoundTrip, ParsedProgramRunsIdentically) {
  Module M = testprog::switchProgram();
  std::string Error;
  std::optional<Module> P = parseModule(moduleToString(M), Error);
  ASSERT_TRUE(P.has_value()) << Error;
  Machine M1(M), M2(*P);
  runInstructions(M1);
  runInstructions(M2);
  EXPECT_EQ(M1.output(), M2.output());
}

//===----------------------------------------------------------------------===//
// Direct parsing
//===----------------------------------------------------------------------===//

TEST(AsmParserTest, MinimalProgram) {
  std::string Error;
  std::optional<Module> M = parseModule(R"(
; smallest valid program
.method main args=0 locals=0 returns=void
  iconst 42
  iprint
  halt
.end
.entry main
)",
                                        Error);
  ASSERT_TRUE(M.has_value()) << Error;
  EXPECT_TRUE(isValid(*M));
  Machine Mach(*M);
  runInstructions(Mach);
  EXPECT_EQ(Mach.output(), (std::vector<int64_t>{42}));
}

TEST(AsmParserTest, ForwardMethodReference) {
  std::string Error;
  std::optional<Module> M = parseModule(R"(
.method main args=0 locals=0 returns=void
  invokestatic late
  iprint
  halt
.end
.method late args=0 locals=0 returns=int
  iconst 7
  ireturn
.end
.entry main
)",
                                        Error);
  ASSERT_TRUE(M.has_value()) << Error;
  Machine Mach(*M);
  runInstructions(Mach);
  EXPECT_EQ(Mach.output(), (std::vector<int64_t>{7}));
}

TEST(AsmParserTest, CommentsAndBlankLinesIgnored) {
  std::string Error;
  std::optional<Module> M = parseModule(R"(
; leading comment

.method main args=0 locals=1 returns=void   ; trailing comment
  iconst 1   ; push
  iprint

  halt
.end
.entry main
)",
                                        Error);
  ASSERT_TRUE(M.has_value()) << Error;
}

//===----------------------------------------------------------------------===//
// Error diagnostics
//===----------------------------------------------------------------------===//

namespace {

std::string errorFor(const std::string &Text) {
  std::string Error;
  std::optional<Module> M = parseModule(Text, Error);
  EXPECT_FALSE(M.has_value()) << "expected a parse error";
  return Error;
}

} // namespace

TEST(AsmParserTest, UnknownInstructionDiagnosed) {
  std::string E = errorFor(".method m args=0 locals=0 returns=void\n"
                           "  frobnicate\n.end\n.entry m\n");
  EXPECT_NE(E.find("line 2"), std::string::npos) << E;
  EXPECT_NE(E.find("frobnicate"), std::string::npos) << E;
}

TEST(AsmParserTest, UnboundLabelDiagnosed) {
  std::string E = errorFor(".method m args=0 locals=0 returns=void\n"
                           "  goto nowhere\n  halt\n.end\n.entry m\n");
  EXPECT_NE(E.find("nowhere"), std::string::npos) << E;
}

TEST(AsmParserTest, DuplicateLabelDiagnosed) {
  std::string E = errorFor(".method m args=0 locals=0 returns=void\n"
                           "x:\n  halt\nx:\n  halt\n.end\n.entry m\n");
  EXPECT_NE(E.find("bound twice"), std::string::npos) << E;
}

TEST(AsmParserTest, MissingEntryDiagnosed) {
  std::string E =
      errorFor(".method m args=0 locals=0 returns=void\n  halt\n.end\n");
  EXPECT_NE(E.find(".entry"), std::string::npos) << E;
}

TEST(AsmParserTest, UnknownCalleeDiagnosed) {
  std::string E = errorFor(".method m args=0 locals=0 returns=void\n"
                           "  invokestatic ghost\n  halt\n.end\n.entry m\n");
  EXPECT_NE(E.find("ghost"), std::string::npos) << E;
}

TEST(AsmParserTest, MissingEndDiagnosed) {
  std::string E =
      errorFor(".method m args=0 locals=0 returns=void\n  halt\n.entry m\n");
  EXPECT_NE(E.find(".end"), std::string::npos) << E;
}

TEST(AsmParserTest, BadOperandCountDiagnosed) {
  std::string E = errorFor(".method m args=0 locals=0 returns=void\n"
                           "  iconst\n  halt\n.end\n.entry m\n");
  EXPECT_NE(E.find("operand"), std::string::npos) << E;
}

TEST(AsmParserTest, WrongReturnKindDiagnosed) {
  std::string E = errorFor(".method m args=0 locals=0 returns=float\n"
                           "  halt\n.end\n.entry m\n");
  EXPECT_NE(E.find("'int', 'ref' or 'void'"), std::string::npos) << E;
}

TEST(AsmParserTest, DuplicateMethodDiagnosed) {
  std::string E = errorFor(".method m args=0 locals=0 returns=void\n"
                           "  halt\n.end\n"
                           ".method m args=0 locals=0 returns=void\n"
                           "  halt\n.end\n.entry m\n");
  EXPECT_NE(E.find("duplicate method"), std::string::npos) << E;
}

TEST(AsmParserTest, MissingFileDiagnosed) {
  std::string Error;
  std::optional<Module> M =
      parseModuleFile("/nonexistent/path/x.jasm", Error);
  EXPECT_FALSE(M.has_value());
  EXPECT_NE(Error.find("cannot open"), std::string::npos);
}

TEST(AsmParserTest, TableswitchParses) {
  std::string Error;
  std::optional<Module> M = parseModule(R"(
.method main args=0 locals=1 returns=void
  iconst 1
  tableswitch low=0 targets=[a, b] default=c
a:
  iconst 10
  iprint
  halt
b:
  iconst 11
  iprint
  halt
c:
  iconst 12
  iprint
  halt
.end
.entry main
)",
                                        Error);
  ASSERT_TRUE(M.has_value()) << Error;
  Machine Mach(*M);
  runInstructions(Mach);
  EXPECT_EQ(Mach.output(), (std::vector<int64_t>{11}));
}
