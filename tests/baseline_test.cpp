//===- tests/baseline_test.cpp - Dynamo-style NET baseline ----------------===//

#include "baseline/NetTraceVm.h"

#include "TestPrograms.h"
#include "interp/InstructionInterpreter.h"
#include "vm/TraceVM.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace jtc;

TEST(NetBaselineTest, SemanticsUnchanged) {
  const Module Programs[] = {
      testprog::countingLoop(5000), testprog::recursiveFactorial(10),
      testprog::virtualDispatch(),  testprog::switchProgram(),
      testprog::arraySquares(64),   testprog::hotLoop(50000),
  };
  for (const Module &M : Programs) {
    Machine Plain(M);
    RunResult R1 = runInstructions(Plain);
    PreparedModule PM(M);
    NetTraceVm VM(PM, NetConfig());
    RunResult R2 = VM.run();
    EXPECT_EQ(R1.Status, R2.Status);
    EXPECT_EQ(Plain.output(), VM.machine().output());
    EXPECT_EQ(R1.Instructions, R2.Instructions);
  }
}

TEST(NetBaselineTest, HotLoopGetsTraced) {
  Module M = testprog::hotLoop(50000);
  PreparedModule PM(M);
  NetTraceVm VM(PM, NetConfig());
  VM.run();
  const VmStats &S = VM.stats();
  EXPECT_GT(S.TracesConstructed, 0u);
  EXPECT_GT(S.TraceDispatches, 0u);
  EXPECT_GT(S.completedCoverage(), 0.5)
      << "NET covers a hot biased loop well (the paper concedes this)";
}

TEST(NetBaselineTest, StatsIdentitiesHold) {
  Module M = testprog::hotLoop(50000);
  PreparedModule PM(M);
  NetTraceVm VM(PM, NetConfig());
  RunResult R = VM.run();
  const VmStats &S = VM.stats();
  EXPECT_EQ(S.BlocksExecuted, S.BlockDispatches + S.BlocksInTraces);
  EXPECT_LE(S.TracesCompleted, S.TraceDispatches);
  EXPECT_LE(S.InstructionsInCompletedTraces, S.InstructionsInTraces);
  EXPECT_LE(S.InstructionsInTraces, S.Instructions);
  EXPECT_EQ(R.Dispatches, S.BlockDispatches + S.TraceDispatches);
  EXPECT_EQ(S.Signals, 0u) << "NET has no correlation profiler";
}

TEST(NetBaselineTest, HotThresholdGatesRecording) {
  Module M = testprog::hotLoop(20000);
  PreparedModule PM(M);
  NetConfig C;
  C.HotThreshold = 1000000; // unreachable
  NetTraceVm VM(PM, C);
  VM.run();
  EXPECT_EQ(VM.stats().TracesConstructed, 0u);
  EXPECT_EQ(VM.stats().TraceDispatches, 0u);
  EXPECT_GT(VM.netStats().HeadCandidates, 0u)
      << "counters still accumulate on loop headers";
}

TEST(NetBaselineTest, TracesEndAtBackwardBranches) {
  Module M = testprog::hotLoop(50000);
  PreparedModule PM(M);
  NetTraceVm VM(PM, NetConfig());
  VM.run();
  ASSERT_FALSE(VM.traces().empty());
  for (const NetTrace &T : VM.traces()) {
    EXPECT_GE(T.Blocks.size(), 2u);
    EXPECT_LE(T.Blocks.size(), NetConfig().MaxTraceBlocks);
  }
}

TEST(NetBaselineTest, CachePressureFlushes) {
  // A phase-per-iteration program that keeps minting new hot heads: a
  // tiny flush limit must trigger at least one whole-cache flush.
  Module M = testprog::switchProgram();
  // switchProgram is too small; use a workload with a wide footprint.
  const WorkloadInfo &W = *findWorkload("javac");
  Module M2 = W.Build(std::max(1u, W.DefaultScale / 20));
  PreparedModule PM(M2);
  NetConfig C;
  C.HotThreshold = 8;
  C.FlushWindow = 1 << 14;
  C.FlushLimit = 4;
  NetTraceVm VM(PM, C);
  VM.run();
  EXPECT_GT(VM.netStats().Flushes, 0u);
  (void)M;
}

TEST(NetBaselineTest, RandomProgramsKeepSemantics) {
  for (uint64_t Seed = 7000; Seed < 7030; ++Seed) {
    testprog::RandomProgramBuilder Gen(Seed);
    Module M = Gen.build();
    Machine Plain(M);
    RunResult R1 = runInstructions(Plain, 10000000);
    PreparedModule PM(M);
    NetConfig C;
    C.HotThreshold = 4; // trace aggressively
    C.MaxInstructions = 10000000;
    NetTraceVm VM(PM, C);
    RunResult R2 = VM.run();
    EXPECT_EQ(R1.Status, R2.Status) << "seed " << Seed;
    EXPECT_EQ(Plain.output(), VM.machine().output()) << "seed " << Seed;
    EXPECT_EQ(R1.Instructions, R2.Instructions) << "seed " << Seed;
  }
}

TEST(NetBaselineTest, WorkloadsKeepSemantics) {
  for (const WorkloadInfo &W : allWorkloads()) {
    Module M = W.Build(std::max(1u, W.DefaultScale / 100));
    Machine Plain(M);
    RunResult R1 = runInstructions(Plain, 100000000);
    PreparedModule PM(M);
    NetTraceVm VM(PM, NetConfig());
    RunResult R2 = VM.run();
    EXPECT_EQ(Plain.output(), VM.machine().output()) << W.Name;
    EXPECT_EQ(R1.Instructions, R2.Instructions) << W.Name;
  }
}

TEST(NetBaselineTest, BcgCompletesMoreOftenOnIrregularCode) {
  // The paper's core comparative claim (sections 2-3): BCG traces are
  // verified to complete; NET's tails are assumed. On a benchmark with
  // data-dependent branches the BCG completion rate must be at least as
  // good.
  const WorkloadInfo &W = *findWorkload("raytrace");
  uint32_t Scale = std::max(1u, W.DefaultScale / 10);
  Module M = W.Build(Scale);
  PreparedModule PM(M);

  NetTraceVm Net(PM, NetConfig());
  Net.run();

  TraceVM Bcg(PM, VmOptions().completionThreshold(0.97).startStateDelay(64));
  Bcg.run();

  ASSERT_GT(Net.stats().TraceDispatches, 1000u);
  ASSERT_GT(Bcg.stats().TraceDispatches, 1000u);
  EXPECT_GE(Bcg.stats().completionRate() + 1e-9,
            Net.stats().completionRate());
}
