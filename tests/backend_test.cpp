//===- tests/backend_test.cpp - TraceBackend tiers and equivalence --------===//
///
/// \file
/// The trace-execution seam: interp/JIT bit-equivalence, guard side-exit
/// state materialization, compile-failure fallback, and tier-promotion
/// accounting. Everything here runs against the contract in
/// backend/TraceBackend.h -- which backend executes a dispatched trace
/// must be unobservable except through the digest-excluded tier counters.
///
//===----------------------------------------------------------------------===//

#include "backend/TraceBackend.h"

#include "TestPrograms.h"
#include "interp/InstructionInterpreter.h"
#include "runtime/Heap.h"
#include "vm/TraceVM.h"

#include <gtest/gtest.h>

using namespace jtc;

namespace {

/// main: a hot loop where every RareEvery-th iteration takes the cold
/// branch direction, so the hot trace's guard keeps firing mid-trace and
/// the side exit must materialize interpreter-exact state (locals i, sum
/// and the countdown are all live across the exit).
Module biasedBranchLoop(int32_t N, int32_t RareEvery) {
  Assembler Asm;
  uint32_t Main = Asm.declareMethod("main", 0, 3, false);
  MethodBuilder B = Asm.beginMethod(Main);
  Label Loop = B.newLabel(), Rare = B.newLabel(), Cont = B.newLabel(),
        Done = B.newLabel();
  B.iconst(0);
  B.istore(0); // i
  B.iconst(0);
  B.istore(1); // sum
  B.iconst(RareEvery);
  B.istore(2); // countdown to the rare direction
  B.bind(Loop);
  B.iload(0);
  B.iconst(N);
  B.branch(Opcode::IfIcmpGe, Done);
  B.iload(2);
  B.iconst(1);
  B.emit(Opcode::Isub);
  B.istore(2);
  B.iload(2);
  B.iconst(0);
  B.branch(Opcode::IfIcmpLe, Rare);
  B.iload(1);
  B.iconst(1);
  B.emit(Opcode::Iadd);
  B.istore(1);
  B.branch(Opcode::Goto, Cont);
  B.bind(Rare);
  B.iconst(RareEvery);
  B.istore(2);
  B.iload(1);
  B.iconst(100);
  B.emit(Opcode::Iadd);
  B.istore(1);
  B.bind(Cont);
  B.iinc(0, 1);
  B.branch(Opcode::Goto, Loop);
  B.bind(Done);
  B.iload(1);
  B.emit(Opcode::Iprint);
  B.halt();
  B.finish();
  Asm.setEntry(Main);
  return Asm.build();
}

/// main: a hot loop over a virtual call whose receiver alternates between
/// two classes, so a trace through the call sees the "wrong" resolved
/// callee on every other iteration (the DivergeCallee exit path).
Module polymorphicCallLoop(int32_t N) {
  Assembler Asm;
  uint32_t Slot = Asm.declareSlot("val", 1, true);
  uint32_t CA = Asm.declareClass("A", 1);
  uint32_t CB = Asm.declareClass("B", 1);
  uint32_t MA = Asm.declareMethod("A.val", 1, 1, true);
  {
    MethodBuilder B = Asm.beginMethod(MA);
    B.iload(0);
    B.getfield(0);
    B.iconst(1);
    B.emit(Opcode::Iadd);
    B.iret();
    B.finish();
  }
  uint32_t MB = Asm.declareMethod("B.val", 1, 1, true);
  {
    MethodBuilder B = Asm.beginMethod(MB);
    B.iload(0);
    B.getfield(0);
    B.iconst(2);
    B.emit(Opcode::Imul);
    B.iret();
    B.finish();
  }
  Asm.setVtableEntry(CA, Slot, MA);
  Asm.setVtableEntry(CB, Slot, MB);

  uint32_t Main = Asm.declareMethod("main", 0, 5, false);
  {
    MethodBuilder B = Asm.beginMethod(Main);
    Label Loop = B.newLabel(), UseA = B.newLabel(), Acc = B.newLabel(),
          Done = B.newLabel();
    B.newobj(CA);
    B.emit(Opcode::Dup);
    B.iconst(3);
    B.putfield(0);
    B.istore(0); // a
    B.newobj(CB);
    B.emit(Opcode::Dup);
    B.iconst(4);
    B.putfield(0);
    B.istore(1); // b
    B.iconst(0);
    B.istore(2); // i
    B.iconst(0);
    B.istore(3); // sum
    B.iconst(0);
    B.istore(4); // toggle
    B.bind(Loop);
    B.iload(2);
    B.iconst(N);
    B.branch(Opcode::IfIcmpGe, Done);
    B.iload(4);
    B.iconst(0);
    B.branch(Opcode::IfIcmpEq, UseA);
    B.iload(1);
    B.invokevirtual(Slot);
    B.branch(Opcode::Goto, Acc);
    B.bind(UseA);
    B.iload(0);
    B.invokevirtual(Slot);
    B.bind(Acc);
    B.iload(3);
    B.emit(Opcode::Iadd);
    B.istore(3);
    B.iconst(1);
    B.iload(4);
    B.emit(Opcode::Isub);
    B.istore(4); // toggle = 1 - toggle
    B.iinc(2, 1);
    B.branch(Opcode::Goto, Loop);
    B.bind(Done);
    B.iload(3);
    B.emit(Opcode::Iprint);
    B.halt();
    B.finish();
  }
  Asm.setEntry(Main);
  return Asm.build();
}

VmOptions baseOptions() {
  return VmOptions().startStateDelay(8).completionThreshold(0.9);
}

VmOptions interpOptions() {
  return baseOptions().backend(backend::BackendKind::Interp);
}

VmOptions jitOptions() {
  // Promotion threshold 0: every dispatched trace compiles immediately,
  // maximizing native coverage in short test runs.
  return baseOptions().backend(backend::BackendKind::Jit).jitPromoteAfter(0);
}

bool hostHasJit() { return backend::jitSupportedHost(); }

} // namespace

//===----------------------------------------------------------------------===//
// Interp/JIT equivalence
//===----------------------------------------------------------------------===//

TEST(BackendTest, InterpJitBitEquivalence) {
  if (!hostHasJit())
    GTEST_SKIP() << "no template-JIT support on this host";
  const Module Programs[] = {
      testprog::countingLoop(20000),
      testprog::hotLoop(20000),
      testprog::recursiveFactorial(12),
      testprog::arraySquares(256),
      biasedBranchLoop(20000, 7),
      polymorphicCallLoop(20000),
  };
  for (const Module &M : Programs) {
    PreparedModule PM(M);
    TraceVM VI(PM, interpOptions());
    RunResult RI = VI.run();
    TraceVM VJ(PM, jitOptions());
    RunResult RJ = VJ.run();
    EXPECT_EQ(RI.Status, RJ.Status);
    EXPECT_EQ(RI.Instructions, RJ.Instructions);
    EXPECT_EQ(RI.Dispatches, RJ.Dispatches);
    EXPECT_EQ(VI.machine().output(), VJ.machine().output());
    EXPECT_EQ(heapDigest(VI.machine().heap()), heapDigest(VJ.machine().heap()));
    // The adaptive bookkeeping is replayed identically: the full folded
    // stats digest (which excludes the tier counters) must match.
    EXPECT_EQ(VI.currentStats().digest(), VJ.currentStats().digest());
  }
}

TEST(BackendTest, GuardSideExitMaterializesState) {
  if (!hostHasJit())
    GTEST_SKIP() << "no template-JIT support on this host";
  // The rare branch direction fires the compiled trace's guard over and
  // over; every exit must leave exactly the interpreter's state, or sum
  // drifts and the printed output diverges from the plain interpreter.
  Module M = biasedBranchLoop(30000, 5);
  Machine Plain(M);
  RunResult RP = runInstructions(Plain);
  PreparedModule PM(M);
  TraceVM VM(PM, jitOptions());
  RunResult R = VM.run();
  EXPECT_EQ(RP.Status, R.Status);
  EXPECT_EQ(RP.Instructions, R.Instructions);
  EXPECT_EQ(Plain.output(), VM.machine().output());
  // The JIT tier actually ran: traces compiled and dispatched natively.
  const VmStats S = VM.currentStats();
  EXPECT_GT(S.TracesJitCompiled, 0u);
  EXPECT_GT(S.TraceDispatchesJit, 0u);
}

TEST(BackendTest, CallAndReturnDivergenceExitsAreExact) {
  if (!hostHasJit())
    GTEST_SKIP() << "no template-JIT support on this host";
  // Alternating receivers force the virtual-call guard to diverge on
  // every other trace entry; the frame helper has already pushed the
  // real callee frame when the exit fires, so any state error shows up
  // in the sum immediately.
  Module M = polymorphicCallLoop(30000);
  Machine Plain(M);
  RunResult RP = runInstructions(Plain);
  PreparedModule PM(M);
  TraceVM VM(PM, jitOptions());
  RunResult R = VM.run();
  EXPECT_EQ(RP.Status, R.Status);
  EXPECT_EQ(RP.Instructions, R.Instructions);
  EXPECT_EQ(Plain.output(), VM.machine().output());
  EXPECT_GT(VM.currentStats().TraceDispatchesJit, 0u);
}

//===----------------------------------------------------------------------===//
// Fallback and tiering accounting
//===----------------------------------------------------------------------===//

TEST(BackendTest, CompileFailureFallsBackToInterpreter) {
  // Simulated unsupported host: every promotion attempt records a
  // HostUnsupported fallback and the run is served entirely by the
  // embedded interpreter tier, with unchanged semantics.
  Module M = testprog::hotLoop(20000);
  Machine Plain(M);
  runInstructions(Plain);
  PreparedModule PM(M);
  TraceVM VM(PM, jitOptions().simulateUnsupportedHost(true));
  RunResult R = VM.run();
  EXPECT_EQ(RunStatus::Finished, R.Status);
  EXPECT_EQ(Plain.output(), VM.machine().output());
  const VmStats S = VM.currentStats();
  EXPECT_EQ(0u, S.TracesJitCompiled);
  EXPECT_EQ(0u, S.TraceDispatchesJit);
  EXPECT_EQ(0u, S.JitCodeBytes);
  EXPECT_GT(S.TraceCompileFallbacks, 0u);
  EXPECT_GT(S.TraceDispatchesInterp, 0u);
  EXPECT_EQ(S.TraceDispatches, S.TraceDispatchesInterp);
}

TEST(BackendTest, AutoResolvesPerHostSupport) {
  Module M = testprog::hotLoop(100);
  PreparedModule PM(M);
  backend::BackendConfig Unsupported;
  Unsupported.SimulateUnsupportedHost = true;
  std::unique_ptr<backend::TraceBackend> B = backend::makeBackend(
      backend::BackendKind::Auto, PM, Unsupported);
  EXPECT_STREQ("interp", B->name());
  if (hostHasJit()) {
    std::unique_ptr<backend::TraceBackend> J = backend::makeBackend(
        backend::BackendKind::Auto, PM, backend::BackendConfig());
    EXPECT_STREQ("jit", J->name());
  }
}

TEST(BackendTest, TierPromotionAccounting) {
  if (!hostHasJit())
    GTEST_SKIP() << "no template-JIT support on this host";
  // Promotion threshold 3: the first three completed dispatches of the
  // hot trace run on the interpreter tier, everything after compiles.
  Module M = testprog::hotLoop(50000);
  PreparedModule PM(M);
  TraceVM VM(PM, baseOptions()
                     .backend(backend::BackendKind::Jit)
                     .jitPromoteAfter(3));
  VM.run();
  const VmStats S = VM.currentStats();
  EXPECT_GT(S.TracesJitCompiled, 0u);
  EXPECT_GT(S.JitCodeBytes, 0u);
  EXPECT_GT(S.TraceDispatchesJit, 0u);
  // Pre-promotion dispatches of the compiled trace ran on the
  // interpreter tier.
  EXPECT_GE(S.TraceDispatchesInterp, 3u);
  // Every trace dispatch was served by exactly one tier.
  EXPECT_EQ(S.TraceDispatches, S.TraceDispatchesJit + S.TraceDispatchesInterp);
}

TEST(BackendTest, TierCountersAreDigestExcluded) {
  if (!hostHasJit())
    GTEST_SKIP() << "no template-JIT support on this host";
  // Which tier ran is configuration, not semantics: digests must match
  // across backends even though the tier counters differ wildly.
  Module M = testprog::hotLoop(30000);
  PreparedModule PM(M);
  TraceVM VI(PM, interpOptions());
  VI.run();
  TraceVM VJ(PM, jitOptions());
  VJ.run();
  const VmStats SI = VI.currentStats(), SJ = VJ.currentStats();
  EXPECT_NE(SI.TraceDispatchesJit, SJ.TraceDispatchesJit);
  EXPECT_EQ(SI.digest(), SJ.digest());
}

TEST(BackendTest, CompileFallbackNamesAreStable) {
  // Fallback codes surface in telemetry and --json; their names are part
  // of the public vocabulary, rendered through the shared TypedError
  // domain like every other taxonomy.
  using backend::CompileFallback;
  EXPECT_STREQ("host-unsupported",
               compileFallbackName(CompileFallback::HostUnsupported));
  EXPECT_STREQ("trace-shape",
               compileFallbackName(CompileFallback::TraceShape));
  TypedError E(backend::compileFallbackDomain(),
               static_cast<uint32_t>(CompileFallback::SwitchGuard),
               "trace 7");
  EXPECT_EQ("backend/switch-guard: trace 7", E.qualifiedMessage());
}
