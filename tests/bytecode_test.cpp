//===- tests/bytecode_test.cpp - Opcodes, assembler, disassembler ---------===//

#include "bytecode/Assembler.h"
#include "bytecode/Disassembler.h"
#include "bytecode/Opcode.h"

#include <gtest/gtest.h>

#include <set>
#include <sstream>

using namespace jtc;

//===----------------------------------------------------------------------===//
// Opcode metadata
//===----------------------------------------------------------------------===//

TEST(OpcodeTest, MnemonicsAreUniqueAndNonEmpty) {
  std::set<std::string> Seen;
  for (unsigned I = 0; I < numOpcodes(); ++I) {
    std::string M = mnemonic(static_cast<Opcode>(I));
    EXPECT_FALSE(M.empty());
    EXPECT_TRUE(Seen.insert(M).second) << "duplicate mnemonic " << M;
  }
}

TEST(OpcodeTest, StackEffectsResolvedExceptCalls) {
  for (unsigned I = 0; I < numOpcodes(); ++I) {
    auto Op = static_cast<Opcode>(I);
    if (Op == Opcode::InvokeStatic || Op == Opcode::InvokeVirtual) {
      EXPECT_EQ(opPops(Op), -1);
      EXPECT_EQ(opPushes(Op), -1);
    } else {
      EXPECT_GE(opPops(Op), 0);
      EXPECT_GE(opPushes(Op), 0);
    }
  }
}

TEST(OpcodeTest, ControlKindClassification) {
  EXPECT_EQ(opKind(Opcode::Iadd), OpKind::Normal);
  EXPECT_EQ(opKind(Opcode::Goto), OpKind::Jump);
  EXPECT_EQ(opKind(Opcode::IfIcmpLt), OpKind::Branch);
  EXPECT_EQ(opKind(Opcode::Tableswitch), OpKind::Switch);
  EXPECT_EQ(opKind(Opcode::InvokeStatic), OpKind::Call);
  EXPECT_EQ(opKind(Opcode::InvokeVirtual), OpKind::Call);
  EXPECT_EQ(opKind(Opcode::Return), OpKind::Ret);
  EXPECT_EQ(opKind(Opcode::Ireturn), OpKind::Ret);
  EXPECT_EQ(opKind(Opcode::Halt), OpKind::End);
}

TEST(OpcodeTest, EndsBlockMatchesKind) {
  EXPECT_FALSE(endsBlock(Opcode::Iconst));
  EXPECT_FALSE(endsBlock(Opcode::Iaload));
  EXPECT_TRUE(endsBlock(Opcode::Goto));
  EXPECT_TRUE(endsBlock(Opcode::IfEq));
  EXPECT_TRUE(endsBlock(Opcode::InvokeStatic));
  EXPECT_TRUE(endsBlock(Opcode::Return));
  EXPECT_TRUE(endsBlock(Opcode::Halt));
}

TEST(OpcodeTest, BranchOpcodesPopAsDocumented) {
  EXPECT_EQ(opPops(Opcode::IfEq), 1);
  EXPECT_EQ(opPops(Opcode::IfIcmpEq), 2);
  EXPECT_EQ(opPops(Opcode::Tableswitch), 1);
  EXPECT_EQ(opPops(Opcode::Iastore), 3);
}

//===----------------------------------------------------------------------===//
// Assembler
//===----------------------------------------------------------------------===//

TEST(AssemblerTest, BackwardBranchResolves) {
  Assembler Asm;
  uint32_t M = Asm.declareMethod("m", 0, 1, false);
  MethodBuilder B = Asm.beginMethod(M);
  Label Top = B.newLabel();
  B.bind(Top);                 // marks the next emitted instruction: pc 0
  B.emit(Opcode::Nop);         // pc 0
  B.branch(Opcode::Goto, Top); // pc 1
  B.finish();
  Asm.setEntry(M);
  Module Mod = Asm.build();
  EXPECT_EQ(Mod.Methods[M].Code[1].Op, Opcode::Goto);
  EXPECT_EQ(Mod.Methods[M].Code[1].A, 0);
}

TEST(AssemblerTest, ForwardBranchResolves) {
  Assembler Asm;
  uint32_t M = Asm.declareMethod("m", 0, 1, false);
  MethodBuilder B = Asm.beginMethod(M);
  Label End = B.newLabel();
  B.iconst(1);                 // pc 0
  B.branch(Opcode::IfEq, End); // pc 1
  B.emit(Opcode::Nop);         // pc 2
  B.bind(End);
  B.halt(); // pc 3
  B.finish();
  Module Mod = Asm.build();
  EXPECT_EQ(Mod.Methods[M].Code[1].A, 3);
}

TEST(AssemblerTest, TableswitchTargetsResolve) {
  Assembler Asm;
  uint32_t M = Asm.declareMethod("m", 0, 1, false);
  MethodBuilder B = Asm.beginMethod(M);
  Label C0 = B.newLabel(), C1 = B.newLabel(), Def = B.newLabel();
  B.iconst(0);                     // pc 0
  B.tableswitch(5, {C0, C1}, Def); // pc 1
  B.bind(C0);
  B.halt(); // pc 2
  B.bind(C1);
  B.halt(); // pc 3
  B.bind(Def);
  B.halt(); // pc 4
  B.finish();
  Module Mod = Asm.build();
  const Method &Mth = Mod.Methods[M];
  ASSERT_EQ(Mth.SwitchTables.size(), 1u);
  const SwitchTable &T = Mth.SwitchTables[0];
  EXPECT_EQ(T.Low, 5);
  ASSERT_EQ(T.Targets.size(), 2u);
  EXPECT_EQ(T.Targets[0], 2u);
  EXPECT_EQ(T.Targets[1], 3u);
  EXPECT_EQ(T.DefaultTarget, 4u);
}

TEST(AssemblerTest, NextPcTracksEmission) {
  Assembler Asm;
  uint32_t M = Asm.declareMethod("m", 0, 1, false);
  MethodBuilder B = Asm.beginMethod(M);
  EXPECT_EQ(B.nextPc(), 0u);
  B.iconst(1);
  EXPECT_EQ(B.nextPc(), 1u);
  B.emit(Opcode::Pop);
  B.halt();
  EXPECT_EQ(B.nextPc(), 3u);
  B.finish();
}

TEST(AssemblerTest, VtablePaddedToSlotCountAtBuild) {
  Assembler Asm;
  // Class declared before the slots exist.
  uint32_t C = Asm.declareClass("Early", 0);
  Asm.declareSlot("s0", 1, false);
  Asm.declareSlot("s1", 1, false);
  uint32_t M = Asm.declareMethod("m", 0, 0, false);
  MethodBuilder B = Asm.beginMethod(M);
  B.halt();
  B.finish();
  Module Mod = Asm.build();
  ASSERT_EQ(Mod.Classes[C].Vtable.size(), 2u);
  EXPECT_EQ(Mod.Classes[C].Vtable[0], InvalidMethod);
  EXPECT_EQ(Mod.Classes[C].Vtable[1], InvalidMethod);
}

TEST(AssemblerTest, SetVtableEntryGrowsVtable) {
  Assembler Asm;
  uint32_t C = Asm.declareClass("C", 0);
  uint32_t S = Asm.declareSlot("s", 1, true);
  uint32_t M = Asm.declareMethod("impl", 1, 1, true);
  {
    MethodBuilder B = Asm.beginMethod(M);
    B.iconst(0);
    B.iret();
    B.finish();
  }
  Asm.setVtableEntry(C, S, M);
  Module Mod = Asm.build();
  EXPECT_EQ(Mod.Classes[C].Vtable[S], M);
}

TEST(AssemblerTest, BuildLeavesAssemblerEmpty) {
  Assembler Asm;
  uint32_t M = Asm.declareMethod("m", 0, 0, false);
  {
    MethodBuilder B = Asm.beginMethod(M);
    B.halt();
    B.finish();
  }
  Module First = Asm.build();
  EXPECT_EQ(First.Methods.size(), 1u);
  Module Second = Asm.build();
  EXPECT_TRUE(Second.Methods.empty());
}

TEST(AssemblerTest, DeclarationOrderAssignsIds) {
  Assembler Asm;
  EXPECT_EQ(Asm.declareMethod("a", 0, 0, false), 0u);
  EXPECT_EQ(Asm.declareMethod("b", 0, 0, false), 1u);
  EXPECT_EQ(Asm.declareClass("C", 1), 0u);
  EXPECT_EQ(Asm.declareClass("D", 1), 1u);
  EXPECT_EQ(Asm.declareSlot("s", 1, false), 0u);
}

//===----------------------------------------------------------------------===//
// Disassembler
//===----------------------------------------------------------------------===//

TEST(DisassemblerTest, SimpleOperands) {
  EXPECT_EQ(disassemble(Instruction(Opcode::Iconst, 42)), "iconst 42");
  EXPECT_EQ(disassemble(Instruction(Opcode::Iload, 3)), "iload 3");
  EXPECT_EQ(disassemble(Instruction(Opcode::Iinc, 2, -1)), "iinc 2 by -1");
  EXPECT_EQ(disassemble(Instruction(Opcode::Goto, 7)), "goto -> 7");
  EXPECT_EQ(disassemble(Instruction(Opcode::Iadd)), "iadd");
}

TEST(DisassemblerTest, CallsNameTargetsWithModule) {
  Assembler Asm;
  uint32_t Callee = Asm.declareMethod("helper", 0, 0, false);
  {
    MethodBuilder B = Asm.beginMethod(Callee);
    B.ret();
    B.finish();
  }
  uint32_t Main = Asm.declareMethod("main", 0, 0, false);
  {
    MethodBuilder B = Asm.beginMethod(Main);
    B.invokestatic(Callee);
    B.halt();
    B.finish();
  }
  Module Mod = Asm.build();
  std::string S =
      disassemble(Mod.Methods[Main].Code[0], &Mod, &Mod.Methods[Main]);
  EXPECT_NE(S.find("helper"), std::string::npos) << S;
}

TEST(DisassemblerTest, ModuleDumpMentionsEverything) {
  Assembler Asm;
  Asm.declareSlot("visit", 2, true);
  Asm.declareClass("Node", 3);
  uint32_t M = Asm.declareMethod("work", 0, 1, false);
  {
    MethodBuilder B = Asm.beginMethod(M);
    B.iconst(9);
    B.emit(Opcode::Iprint);
    B.halt();
    B.finish();
  }
  Module Mod = Asm.build();
  std::ostringstream OS;
  disassembleModule(OS, Mod);
  std::string Out = OS.str();
  EXPECT_NE(Out.find("work"), std::string::npos);
  EXPECT_NE(Out.find("Node"), std::string::npos);
  EXPECT_NE(Out.find("visit"), std::string::npos);
  EXPECT_NE(Out.find("iconst 9"), std::string::npos);
}
