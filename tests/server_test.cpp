//===- tests/server_test.cpp - Concurrent VM service ----------------------===//
///
/// The serving layer's contract: concurrent sessions are bit-identical to
/// a single-threaded reference run, warm handoff installs the donor's
/// traces without re-signaling, and the service-level aggregates
/// reconcile with the per-session results.
///
//===----------------------------------------------------------------------===//

#include "server/VmService.h"

#include "TestPrograms.h"
#include "runtime/Heap.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <thread>

using namespace jtc;

namespace {

/// The single-threaded reference: one cold TraceVM session.
struct Reference {
  RunResult Run;
  VmStats Stats;
  std::vector<int64_t> Output;
  uint64_t HeapDigest = 0;
};

Reference referenceRun(const Module &M, const VmOptions &VO = VmOptions()) {
  PreparedModule PM(M);
  TraceVM VM(PM, VO);
  Reference R;
  R.Run = VM.run();
  R.Stats = VM.stats();
  R.Output = VM.machine().output();
  R.HeapDigest = heapDigest(VM.machine().heap());
  return R;
}

} // namespace

//===----------------------------------------------------------------------===//
// Determinism under concurrency
//===----------------------------------------------------------------------===//

TEST(VmServiceTest, ConcurrentSessionsMatchSingleThreadedReference) {
  // With warm handoff off, every session is a cold run: all of them --
  // and the single-threaded reference -- must agree bit for bit, down to
  // the dispatch counts.
  Module M = testprog::hotLoop(20000);
  Reference Ref = referenceRun(M);

  VmService Svc(ServiceOptions().workers(8).warmHandoff(false));
  Svc.registerModule("hot", testprog::hotLoop(20000));

  std::vector<std::future<SessionResult>> Fs;
  for (int I = 0; I < 32; ++I)
    Fs.push_back(Svc.submit({"hot"}));
  for (std::future<SessionResult> &F : Fs) {
    SessionResult R = F.get();
    ASSERT_FALSE(R.Rejected);
    EXPECT_EQ(R.Run.Status, Ref.Run.Status);
    EXPECT_EQ(R.Run.Trap, Ref.Run.Trap);
    EXPECT_EQ(R.Run.Instructions, Ref.Run.Instructions);
    EXPECT_EQ(R.Run.Dispatches, Ref.Run.Dispatches);
    EXPECT_EQ(R.Output, Ref.Output);
    EXPECT_EQ(R.HeapDigest, Ref.HeapDigest);
    EXPECT_EQ(R.Stats.Signals, Ref.Stats.Signals);
    EXPECT_EQ(R.Stats.TracesConstructed, Ref.Stats.TracesConstructed);
    EXPECT_FALSE(R.WarmStart);
  }
}

TEST(VmServiceTest, WarmSessionsPreserveSemantics) {
  // Warm handoff changes how the work is executed (traces from the
  // first transition), never what it computes: output, heap and
  // instruction count stay identical to the reference.
  Module M = testprog::hotLoop(20000);
  Reference Ref = referenceRun(M);

  VmService Svc(ServiceOptions().workers(4));
  Svc.registerModule("hot", testprog::hotLoop(20000));

  std::vector<std::future<SessionResult>> Fs;
  for (int I = 0; I < 24; ++I)
    Fs.push_back(Svc.submit({"hot"}));
  unsigned WarmSeen = 0;
  for (std::future<SessionResult> &F : Fs) {
    SessionResult R = F.get();
    ASSERT_FALSE(R.Rejected);
    EXPECT_EQ(R.Run.Status, Ref.Run.Status);
    EXPECT_EQ(R.Run.Instructions, Ref.Run.Instructions);
    EXPECT_EQ(R.Output, Ref.Output);
    EXPECT_EQ(R.HeapDigest, Ref.HeapDigest);
    WarmSeen += R.WarmStart;
  }
  // The donor publishes early in the batch; most of it runs warm.
  EXPECT_GT(WarmSeen, 0u);
}

//===----------------------------------------------------------------------===//
// Warm handoff
//===----------------------------------------------------------------------===//

TEST(VmServiceTest, WarmHandoffSeedsWithoutResignaling) {
  VmService Svc(ServiceOptions().workers(1));
  Svc.registerModule("hot", testprog::hotLoop(50000));

  SessionResult Cold = Svc.run({"hot"});
  ASSERT_FALSE(Cold.WarmStart);
  ASSERT_GT(Cold.Stats.TracesConstructed, 0u);
  ASSERT_GT(Cold.Stats.Signals, 0u);

  SessionResult Warm = Svc.run({"hot"});
  ASSERT_TRUE(Warm.WarmStart);
  // The donor's traces arrive installed, not re-derived from signals.
  EXPECT_GT(Warm.Stats.TracesSeeded, 0u);
  EXPECT_EQ(Warm.Stats.TracesConstructed, 0u);
  EXPECT_GT(Warm.Stats.TraceDispatches, 0u);
  EXPECT_LT(Warm.Stats.Signals, Cold.Stats.Signals);
  // Steady-state coverage from the first session: at least what the cold
  // session reached while also paying the warmup.
  EXPECT_GE(Warm.Stats.traceCoverage(), Cold.Stats.traceCoverage());

  ServiceStats S = Svc.stats();
  EXPECT_EQ(S.WarmStarts, 1u);
  EXPECT_EQ(S.ColdStarts, 1u);
  EXPECT_EQ(S.SnapshotsPublished, 1u);
}

TEST(VmServiceTest, SnapshotRequiresMaturity) {
  // A session below the maturity bar must not publish its profile.
  VmService Svc(ServiceOptions().workers(1).snapshotMinBlocks(1ull << 40));
  Svc.registerModule("hot", testprog::hotLoop(50000));
  Svc.run({"hot"});
  Svc.run({"hot"});
  ServiceStats S = Svc.stats();
  EXPECT_EQ(S.SnapshotsPublished, 0u);
  EXPECT_EQ(S.WarmStarts, 0u);
  EXPECT_EQ(S.ColdStarts, 2u);
  EXPECT_TRUE(Svc.snapshotFor("hot").empty());
}

TEST(VmServiceTest, WarmHandoffDisabledNeverSeeds) {
  VmService Svc(ServiceOptions().workers(2).warmHandoff(false));
  Svc.registerModule("hot", testprog::hotLoop(50000));
  for (int I = 0; I < 4; ++I) {
    SessionResult R = Svc.run({"hot"});
    EXPECT_FALSE(R.WarmStart);
    EXPECT_EQ(R.Stats.TracesSeeded, 0u);
  }
  EXPECT_EQ(Svc.stats().SnapshotsPublished, 0u);
}

//===----------------------------------------------------------------------===//
// Durable checkpointing
//===----------------------------------------------------------------------===//

namespace {

/// Fresh scratch directory under the system temp dir.
std::filesystem::path checkpointScratch(const char *Name) {
  std::filesystem::path Dir =
      std::filesystem::temp_directory_path() / "jtc-server-test" / Name;
  std::filesystem::remove_all(Dir);
  std::filesystem::create_directories(Dir);
  return Dir;
}

} // namespace

TEST(VmServiceTest, CheckpointOnDrainThenColdRestartRunsWarm) {
  // The cross-process mirror of WarmHandoffSeedsWithoutResignaling: the
  // first service learns the profile and checkpoints it on drain; a
  // brand-new service -- a restarted process, as far as the state is
  // concerned -- loads it at registration and its very first session
  // runs warm, traces installed instead of re-signaled.
  std::filesystem::path Dir = checkpointScratch("drain-restart");

  uint64_t ColdSignals = 0;
  {
    VmService Svc(ServiceOptions().workers(1).checkpointDir(Dir.string()));
    Svc.registerModule("hot", testprog::hotLoop(50000));
    SessionResult Cold = Svc.run({"hot"});
    ASSERT_FALSE(Cold.WarmStart);
    ASSERT_GT(Cold.Stats.Signals, 0u);
    ColdSignals = Cold.Stats.Signals;
    Svc.drain();
    EXPECT_EQ(Svc.stats().CheckpointsSaved, 1u);
    EXPECT_TRUE(std::filesystem::exists(Dir / "hot.jtcp"));
  }

  VmService Restarted(ServiceOptions().workers(1).loadDir(Dir.string()));
  Restarted.registerModule("hot", testprog::hotLoop(50000));
  SessionResult First = Restarted.run({"hot"});
  EXPECT_TRUE(First.WarmStart);
  EXPECT_GT(First.Stats.TracesSeeded, 0u);
  EXPECT_EQ(First.Stats.TracesConstructed, 0u);
  EXPECT_LT(First.Stats.Signals, ColdSignals);

  ServiceStats S = Restarted.stats();
  EXPECT_EQ(S.CheckpointsLoaded, 1u);
  EXPECT_EQ(S.CheckpointLoadRejects, 0u);
  EXPECT_EQ(S.WarmStarts, 1u);
  EXPECT_EQ(S.ColdStarts, 0u);
  // The pre-published snapshot means no session needed to publish one.
  EXPECT_EQ(S.SnapshotsPublished, 0u);
}

TEST(VmServiceTest, ShutdownWritesFinalCheckpoint) {
  std::filesystem::path Dir = checkpointScratch("shutdown");
  {
    VmService Svc(ServiceOptions().workers(2).checkpointDir(Dir.string()));
    Svc.registerModule("hot", testprog::hotLoop(50000));
    Svc.run({"hot"});
    // No explicit drain: the destructor's shutdown must checkpoint.
  }
  EXPECT_TRUE(std::filesystem::exists(Dir / "hot.jtcp"));
}

TEST(VmServiceTest, CorruptCheckpointIsRejectedAndSessionRunsCold) {
  std::filesystem::path Dir = checkpointScratch("corrupt");
  {
    std::ofstream OS(Dir / "hot.jtcp", std::ios::binary);
    OS << "JTCPgarbage-that-is-not-a-snapshot";
  }
  VmService Svc(ServiceOptions().workers(1).loadDir(Dir.string()));
  Svc.registerModule("hot", testprog::hotLoop(50000));
  SessionResult R = Svc.run({"hot"});
  EXPECT_FALSE(R.WarmStart);
  EXPECT_EQ(R.Run.Status, RunStatus::Finished);
  ServiceStats S = Svc.stats();
  EXPECT_EQ(S.CheckpointsLoaded, 0u);
  EXPECT_EQ(S.CheckpointLoadRejects, 1u);
  EXPECT_EQ(S.ColdStarts, 1u);
}

TEST(VmServiceTest, PeriodicCheckpointThreadWrites) {
  std::filesystem::path Dir = checkpointScratch("periodic");
  VmService Svc(ServiceOptions()
                    .workers(1)
                    .checkpointDir(Dir.string())
                    .checkpointIntervalSeconds(0.02));
  Svc.registerModule("hot", testprog::hotLoop(50000));
  Svc.run({"hot"});
  // Wait for at least one timer-driven checkpoint (generously bounded).
  for (int I = 0; I < 500 && !std::filesystem::exists(Dir / "hot.jtcp"); ++I)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_TRUE(std::filesystem::exists(Dir / "hot.jtcp"));
  EXPECT_GE(Svc.stats().CheckpointsSaved, 1u);
}

TEST(VmServiceTest, SnapshotFingerprintGatesSeeding) {
  // A snapshot is tied to the module's block structure; a structurally
  // different module must not accept it.
  Module Hot = testprog::hotLoop(50000);
  PreparedModule HotPM(Hot);
  TraceVM Donor(HotPM);
  Donor.run();
  ProfileSnapshot Snap = ProfileSnapshot::capture(Donor);
  ASSERT_FALSE(Snap.empty());
  EXPECT_TRUE(Snap.compatibleWith(HotPM));

  Module Other = testprog::virtualDispatch();
  PreparedModule OtherPM(Other);
  EXPECT_FALSE(Snap.compatibleWith(OtherPM));

  // An identically built module has the same fingerprint.
  Module Twin = testprog::hotLoop(50000);
  PreparedModule TwinPM(Twin);
  EXPECT_TRUE(Snap.compatibleWith(TwinPM));
  EXPECT_EQ(moduleFingerprint(HotPM), moduleFingerprint(TwinPM));
}

//===----------------------------------------------------------------------===//
// Aggregates
//===----------------------------------------------------------------------===//

TEST(VmServiceTest, AggregatesReconcileWithSessions) {
  VmService Svc(ServiceOptions().workers(4));
  Svc.registerModule("hot", testprog::hotLoop(20000));
  Svc.registerModule("disp", testprog::virtualDispatch());

  std::vector<std::future<SessionResult>> Fs;
  for (int I = 0; I < 10; ++I)
    Fs.push_back(Svc.submit({I % 2 ? "hot" : "disp"}));
  uint64_t Instructions = 0, Blocks = 0, Seeded = 0;
  for (std::future<SessionResult> &F : Fs) {
    SessionResult R = F.get();
    ASSERT_FALSE(R.Rejected);
    Instructions += R.Stats.Instructions;
    Blocks += R.Stats.BlocksExecuted;
    Seeded += R.Stats.TracesSeeded;
  }

  ServiceStats S = Svc.stats();
  EXPECT_EQ(S.Submitted, 10u);
  EXPECT_EQ(S.Completed, 10u);
  EXPECT_EQ(S.Rejected, 0u);
  EXPECT_EQ(S.WarmStarts + S.ColdStarts, S.Completed);
  EXPECT_EQ(S.Aggregate.Instructions, Instructions);
  EXPECT_EQ(S.Aggregate.BlocksExecuted, Blocks);
  EXPECT_EQ(S.Aggregate.TracesSeeded, Seeded);
  EXPECT_GE(S.BusySeconds, 0.0);
}

#ifdef JTC_TELEMETRY
TEST(VmServiceTest, TelemetryRingsFoldIntoServiceEvents) {
  VmService Svc(
      ServiceOptions().workers(2).vm(VmOptions().telemetry(true)));
  Svc.registerModule("hot", testprog::hotLoop(50000));
  for (int I = 0; I < 4; ++I)
    Svc.run({"hot"});
  ServiceStats S = Svc.stats();
  uint64_t Total = 0;
  for (unsigned K = 0; K < NumEventKinds; ++K)
    Total += S.EventsByKind[K];
  EXPECT_GT(Total, 0u);
  // The cold donor constructed traces; events saw them too.
  EXPECT_GT(
      S.EventsByKind[static_cast<unsigned>(EventKind::TraceConstructed)], 0u);
  EXPECT_GT(
      S.EventsByKind[static_cast<unsigned>(EventKind::TraceDispatched)], 0u);
}
#endif

//===----------------------------------------------------------------------===//
// Service mechanics
//===----------------------------------------------------------------------===//

TEST(VmServiceTest, UnknownModuleIsRejectedNotThrown) {
  VmService Svc(ServiceOptions().workers(2));
  SessionResult R = Svc.run({"no-such-module"});
  EXPECT_TRUE(R.Rejected);
  EXPECT_EQ(Svc.stats().Rejected, 1u);
}

TEST(VmServiceTest, PerRequestBudgetOverridesServiceBudget) {
  VmService Svc(ServiceOptions().workers(1));
  Svc.registerModule("hot", testprog::hotLoop(50000));
  SessionResult R = Svc.run({"hot", /*MaxInstructions=*/1000});
  EXPECT_EQ(R.Run.Status, RunStatus::BudgetExhausted);
  EXPECT_LE(R.Run.Instructions, 1000u);
}

TEST(VmServiceTest, DrainWaitsForAllSubmitted) {
  VmService Svc(ServiceOptions().workers(4));
  Svc.registerModule("hot", testprog::hotLoop(20000));
  std::vector<std::future<SessionResult>> Fs;
  for (int I = 0; I < 16; ++I)
    Fs.push_back(Svc.submit({"hot"}));
  Svc.drain();
  ServiceStats S = Svc.stats();
  EXPECT_EQ(S.Completed + S.Rejected, 16u);
  for (std::future<SessionResult> &F : Fs)
    EXPECT_TRUE(F.valid());
}

TEST(VmServiceTest, ShutdownDrainsQueueAndRejectsLateSubmits) {
  VmService Svc(ServiceOptions().workers(2));
  Svc.registerModule("hot", testprog::hotLoop(20000));
  std::vector<std::future<SessionResult>> Fs;
  for (int I = 0; I < 8; ++I)
    Fs.push_back(Svc.submit({"hot"}));
  Svc.shutdown();
  // Everything queued before shutdown still completed.
  for (std::future<SessionResult> &F : Fs)
    EXPECT_FALSE(F.get().Rejected);
  // A submit after shutdown resolves as rejected instead of hanging.
  SessionResult Late = Svc.submit({"hot"}).get();
  EXPECT_TRUE(Late.Rejected);
}

TEST(VmServiceTest, ReregisteringReplacesModuleAndDropsSnapshot) {
  VmService Svc(ServiceOptions().workers(1));
  Svc.registerModule("m", testprog::hotLoop(50000));
  Svc.run({"m"});
  ASSERT_FALSE(Svc.snapshotFor("m").empty());

  // A different program under the same name: the old snapshot must not
  // leak into sessions over the new module.
  Svc.registerModule("m", testprog::virtualDispatch());
  EXPECT_TRUE(Svc.snapshotFor("m").empty());
  SessionResult R = Svc.run({"m"});
  EXPECT_FALSE(R.WarmStart);
  EXPECT_EQ(R.Run.Status, RunStatus::Finished);
}
