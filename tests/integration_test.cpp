//===- tests/integration_test.cpp - Whole-system runs ---------------------===//
///
/// End-to-end runs of the six workloads under the full TraceVM, checking
/// the cross-module invariants the paper's evaluation relies on.
///
//===----------------------------------------------------------------------===//

#include "harness/Experiment.h"

#include "interp/InstructionInterpreter.h"

#include <gtest/gtest.h>

using namespace jtc;

namespace {

/// Integration scale: ~1/20 of the benchmark default keeps the whole
/// suite fast while still exercising decay, signals and trace dispatch.
uint32_t integrationScale(const WorkloadInfo &W) {
  return std::max(1u, W.DefaultScale / 20);
}

VmOptions optionsWith(double Threshold, uint32_t Delay = 64) {
  return VmOptions().completionThreshold(Threshold).startStateDelay(Delay);
}

} // namespace

TEST(IntegrationTest, AllWorkloadsAllThresholdsSatisfyInvariants) {
  for (const WorkloadInfo &W : allWorkloads()) {
    for (double T : standardThresholds()) {
      VmStats S = runWorkload(W, optionsWith(T), integrationScale(W));
      SCOPED_TRACE(std::string(W.Name) + " @ " + std::to_string(T));
      EXPECT_GT(S.Instructions, 0u);
      EXPECT_EQ(S.BlocksExecuted, S.BlockDispatches + S.BlocksInTraces);
      EXPECT_LE(S.TracesCompleted, S.TraceDispatches);
      EXPECT_LE(S.InstructionsInCompletedTraces, S.InstructionsInTraces);
      EXPECT_LE(S.traceCoverage(), 1.0);
      EXPECT_GE(S.completedCoverage(), 0.0);
      EXPECT_LE(S.completedCoverage(), S.traceCoverage() + 1e-12);
      if (S.TraceDispatches > 1000) {
        EXPECT_GE(S.completionRate(), 0.85)
            << "traces built above the threshold should mostly complete";
      }
    }
  }
}

TEST(IntegrationTest, TraceDispatchPreservesWorkloadSemantics) {
  for (const WorkloadInfo &W : allWorkloads()) {
    uint32_t Scale = std::max(1u, W.DefaultScale / 100);
    Module M = W.Build(Scale);
    Machine Plain(M);
    RunResult R1 = runInstructions(Plain, 100000000);
    PreparedModule PM(M);
    TraceVM VM(PM, optionsWith(0.97));
    RunResult R2 = VM.run();
    EXPECT_EQ(R1.Status, R2.Status) << W.Name;
    EXPECT_EQ(Plain.output(), VM.machine().output()) << W.Name;
    EXPECT_EQ(R1.Instructions, R2.Instructions) << W.Name;
  }
}

TEST(IntegrationTest, RunsAreReproducible) {
  for (const WorkloadInfo &W : allWorkloads()) {
    VmStats A = runWorkload(W, optionsWith(0.97), integrationScale(W));
    VmStats B = runWorkload(W, optionsWith(0.97), integrationScale(W));
    EXPECT_EQ(A.Instructions, B.Instructions) << W.Name;
    EXPECT_EQ(A.Signals, B.Signals) << W.Name;
    EXPECT_EQ(A.TracesConstructed, B.TracesConstructed) << W.Name;
    EXPECT_EQ(A.TracesCompleted, B.TracesCompleted) << W.Name;
  }
}

TEST(IntegrationTest, ScimarkIsTheMostRegularMember) {
  // The paper's headline ordering: scimark's regular kernels give the
  // highest coverage; javac's parser gives the lowest.
  VmStats Sci = runWorkload(*findWorkload("scimark"), optionsWith(0.97),
                            integrationScale(*findWorkload("scimark")));
  VmStats Jav = runWorkload(*findWorkload("javac"), optionsWith(0.97),
                            integrationScale(*findWorkload("javac")));
  EXPECT_GT(Sci.completedCoverage(), Jav.completedCoverage());
  EXPECT_GT(Jav.Signals, Sci.Signals)
      << "the irregular benchmark must generate more state-change signals";
}

TEST(IntegrationTest, LargerDelayFiltersTraceEvents) {
  // Table V's trend on one workload: raising the start-state delay
  // lengthens the interval between trace events.
  const WorkloadInfo &W = *findWorkload("compress");
  VmStats D1 = runWorkload(W, optionsWith(0.97, 1), integrationScale(W));
  VmStats D4096 =
      runWorkload(W, optionsWith(0.97, 4096), integrationScale(W));
  EXPECT_GT(D4096.dispatchesPerTraceEvent(), D1.dispatchesPerTraceEvent());
}

TEST(IntegrationTest, ProfilerOverheadMeasurementIsSane) {
  const WorkloadInfo &W = *findWorkload("scimark");
  OverheadSample S =
      measureProfilerOverhead(W, integrationScale(W), /*Repeats=*/2);
  EXPECT_GT(S.Dispatches, 0u);
  EXPECT_GT(S.Instructions, S.Dispatches);
  EXPECT_GT(S.PlainSeconds, 0.0);
  EXPECT_GT(S.ProfiledSeconds, 0.0);
  // The profiled interpreter cannot plausibly be faster by more than
  // measurement noise, nor absurdly slower.
  EXPECT_GT(S.ProfiledSeconds, S.PlainSeconds * 0.7);
  EXPECT_LT(S.ProfiledSeconds, S.PlainSeconds * 20.0);
}
