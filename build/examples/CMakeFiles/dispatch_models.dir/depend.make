# Empty dependencies file for dispatch_models.
# This may be replaced when dependencies are built.
