file(REMOVE_RECURSE
  "CMakeFiles/dispatch_models.dir/dispatch_models.cpp.o"
  "CMakeFiles/dispatch_models.dir/dispatch_models.cpp.o.d"
  "dispatch_models"
  "dispatch_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dispatch_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
