file(REMOVE_RECURSE
  "CMakeFiles/optimize_traces.dir/optimize_traces.cpp.o"
  "CMakeFiles/optimize_traces.dir/optimize_traces.cpp.o.d"
  "optimize_traces"
  "optimize_traces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimize_traces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
