# Empty compiler generated dependencies file for optimize_traces.
# This may be replaced when dependencies are built.
