# Empty dependencies file for trace_inspector.
# This may be replaced when dependencies are built.
