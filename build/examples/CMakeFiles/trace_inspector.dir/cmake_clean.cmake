file(REMOVE_RECURSE
  "CMakeFiles/trace_inspector.dir/trace_inspector.cpp.o"
  "CMakeFiles/trace_inspector.dir/trace_inspector.cpp.o.d"
  "trace_inspector"
  "trace_inspector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_inspector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
