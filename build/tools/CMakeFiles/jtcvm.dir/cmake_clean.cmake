file(REMOVE_RECURSE
  "CMakeFiles/jtcvm.dir/jtcvm.cpp.o"
  "CMakeFiles/jtcvm.dir/jtcvm.cpp.o.d"
  "jtcvm"
  "jtcvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jtcvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
