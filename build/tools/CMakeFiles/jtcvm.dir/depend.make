# Empty dependencies file for jtcvm.
# This may be replaced when dependencies are built.
