file(REMOVE_RECURSE
  "CMakeFiles/tracevm_test.dir/tracevm_test.cpp.o"
  "CMakeFiles/tracevm_test.dir/tracevm_test.cpp.o.d"
  "tracevm_test"
  "tracevm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tracevm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
