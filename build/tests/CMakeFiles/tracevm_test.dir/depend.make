# Empty dependencies file for tracevm_test.
# This may be replaced when dependencies are built.
