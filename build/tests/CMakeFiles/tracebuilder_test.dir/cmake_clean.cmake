file(REMOVE_RECURSE
  "CMakeFiles/tracebuilder_test.dir/tracebuilder_test.cpp.o"
  "CMakeFiles/tracebuilder_test.dir/tracebuilder_test.cpp.o.d"
  "tracebuilder_test"
  "tracebuilder_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tracebuilder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
