# Empty compiler generated dependencies file for tracebuilder_test.
# This may be replaced when dependencies are built.
