# Empty compiler generated dependencies file for tracecache_test.
# This may be replaced when dependencies are built.
