file(REMOVE_RECURSE
  "CMakeFiles/tracecache_test.dir/tracecache_test.cpp.o"
  "CMakeFiles/tracecache_test.dir/tracecache_test.cpp.o.d"
  "tracecache_test"
  "tracecache_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tracecache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
