# Empty compiler generated dependencies file for bytecode_test.
# This may be replaced when dependencies are built.
