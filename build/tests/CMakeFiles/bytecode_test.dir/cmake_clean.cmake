file(REMOVE_RECURSE
  "CMakeFiles/bytecode_test.dir/bytecode_test.cpp.o"
  "CMakeFiles/bytecode_test.dir/bytecode_test.cpp.o.d"
  "bytecode_test"
  "bytecode_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bytecode_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
