# Empty compiler generated dependencies file for opt_test.
# This may be replaced when dependencies are built.
