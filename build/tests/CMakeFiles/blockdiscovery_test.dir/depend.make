# Empty dependencies file for blockdiscovery_test.
# This may be replaced when dependencies are built.
