file(REMOVE_RECURSE
  "CMakeFiles/blockdiscovery_test.dir/blockdiscovery_test.cpp.o"
  "CMakeFiles/blockdiscovery_test.dir/blockdiscovery_test.cpp.o.d"
  "blockdiscovery_test"
  "blockdiscovery_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blockdiscovery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
