
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/profile_test.cpp" "tests/CMakeFiles/profile_test.dir/profile_test.cpp.o" "gcc" "tests/CMakeFiles/profile_test.dir/profile_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/jtc_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/jtc_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/jtc_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/jtc_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/jtc_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/jtc_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/jtc_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/jtc_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/jtc_text.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/jtc_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/bytecode/CMakeFiles/jtc_bytecode.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/jtc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
