# Empty compiler generated dependencies file for threaded_test.
# This may be replaced when dependencies are built.
