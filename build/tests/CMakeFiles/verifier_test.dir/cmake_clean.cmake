file(REMOVE_RECURSE
  "CMakeFiles/verifier_test.dir/verifier_test.cpp.o"
  "CMakeFiles/verifier_test.dir/verifier_test.cpp.o.d"
  "verifier_test"
  "verifier_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verifier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
