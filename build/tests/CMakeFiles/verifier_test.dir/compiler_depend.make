# Empty compiler generated dependencies file for verifier_test.
# This may be replaced when dependencies are built.
