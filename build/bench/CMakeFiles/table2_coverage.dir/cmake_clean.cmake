file(REMOVE_RECURSE
  "CMakeFiles/table2_coverage.dir/table2_coverage.cpp.o"
  "CMakeFiles/table2_coverage.dir/table2_coverage.cpp.o.d"
  "table2_coverage"
  "table2_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
