# Empty dependencies file for table4_signal_rate.
# This may be replaced when dependencies are built.
