file(REMOVE_RECURSE
  "CMakeFiles/table4_signal_rate.dir/table4_signal_rate.cpp.o"
  "CMakeFiles/table4_signal_rate.dir/table4_signal_rate.cpp.o.d"
  "table4_signal_rate"
  "table4_signal_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_signal_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
