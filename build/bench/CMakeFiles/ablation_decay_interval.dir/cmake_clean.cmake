file(REMOVE_RECURSE
  "CMakeFiles/ablation_decay_interval.dir/ablation_decay_interval.cpp.o"
  "CMakeFiles/ablation_decay_interval.dir/ablation_decay_interval.cpp.o.d"
  "ablation_decay_interval"
  "ablation_decay_interval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_decay_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
