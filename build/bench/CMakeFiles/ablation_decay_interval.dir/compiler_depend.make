# Empty compiler generated dependencies file for ablation_decay_interval.
# This may be replaced when dependencies are built.
