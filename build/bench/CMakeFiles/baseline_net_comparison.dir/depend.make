# Empty dependencies file for baseline_net_comparison.
# This may be replaced when dependencies are built.
