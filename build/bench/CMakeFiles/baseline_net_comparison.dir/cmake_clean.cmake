file(REMOVE_RECURSE
  "CMakeFiles/baseline_net_comparison.dir/baseline_net_comparison.cpp.o"
  "CMakeFiles/baseline_net_comparison.dir/baseline_net_comparison.cpp.o.d"
  "baseline_net_comparison"
  "baseline_net_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_net_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
