file(REMOVE_RECURSE
  "CMakeFiles/table5_event_interval.dir/table5_event_interval.cpp.o"
  "CMakeFiles/table5_event_interval.dir/table5_event_interval.cpp.o.d"
  "table5_event_interval"
  "table5_event_interval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_event_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
