# Empty dependencies file for table5_event_interval.
# This may be replaced when dependencies are built.
