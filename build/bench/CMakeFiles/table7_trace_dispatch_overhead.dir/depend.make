# Empty dependencies file for table7_trace_dispatch_overhead.
# This may be replaced when dependencies are built.
