file(REMOVE_RECURSE
  "CMakeFiles/table7_trace_dispatch_overhead.dir/table7_trace_dispatch_overhead.cpp.o"
  "CMakeFiles/table7_trace_dispatch_overhead.dir/table7_trace_dispatch_overhead.cpp.o.d"
  "table7_trace_dispatch_overhead"
  "table7_trace_dispatch_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_trace_dispatch_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
