file(REMOVE_RECURSE
  "CMakeFiles/table3_completion_rate.dir/table3_completion_rate.cpp.o"
  "CMakeFiles/table3_completion_rate.dir/table3_completion_rate.cpp.o.d"
  "table3_completion_rate"
  "table3_completion_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_completion_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
