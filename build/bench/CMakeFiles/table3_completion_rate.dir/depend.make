# Empty dependencies file for table3_completion_rate.
# This may be replaced when dependencies are built.
