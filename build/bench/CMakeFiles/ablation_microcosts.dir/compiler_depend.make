# Empty compiler generated dependencies file for ablation_microcosts.
# This may be replaced when dependencies are built.
