file(REMOVE_RECURSE
  "CMakeFiles/ablation_microcosts.dir/ablation_microcosts.cpp.o"
  "CMakeFiles/ablation_microcosts.dir/ablation_microcosts.cpp.o.d"
  "ablation_microcosts"
  "ablation_microcosts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_microcosts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
