file(REMOVE_RECURSE
  "CMakeFiles/table6_profiler_overhead.dir/table6_profiler_overhead.cpp.o"
  "CMakeFiles/table6_profiler_overhead.dir/table6_profiler_overhead.cpp.o.d"
  "table6_profiler_overhead"
  "table6_profiler_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_profiler_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
