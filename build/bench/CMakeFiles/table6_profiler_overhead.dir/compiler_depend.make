# Empty compiler generated dependencies file for table6_profiler_overhead.
# This may be replaced when dependencies are built.
