file(REMOVE_RECURSE
  "CMakeFiles/table1_trace_length.dir/table1_trace_length.cpp.o"
  "CMakeFiles/table1_trace_length.dir/table1_trace_length.cpp.o.d"
  "table1_trace_length"
  "table1_trace_length.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_trace_length.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
