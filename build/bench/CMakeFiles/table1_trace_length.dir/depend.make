# Empty dependencies file for table1_trace_length.
# This may be replaced when dependencies are built.
