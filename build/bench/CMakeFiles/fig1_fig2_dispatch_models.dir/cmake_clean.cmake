file(REMOVE_RECURSE
  "CMakeFiles/fig1_fig2_dispatch_models.dir/fig1_fig2_dispatch_models.cpp.o"
  "CMakeFiles/fig1_fig2_dispatch_models.dir/fig1_fig2_dispatch_models.cpp.o.d"
  "fig1_fig2_dispatch_models"
  "fig1_fig2_dispatch_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_fig2_dispatch_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
