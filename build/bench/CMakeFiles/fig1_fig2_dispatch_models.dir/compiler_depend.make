# Empty compiler generated dependencies file for fig1_fig2_dispatch_models.
# This may be replaced when dependencies are built.
