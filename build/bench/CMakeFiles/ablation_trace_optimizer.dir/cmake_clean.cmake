file(REMOVE_RECURSE
  "CMakeFiles/ablation_trace_optimizer.dir/ablation_trace_optimizer.cpp.o"
  "CMakeFiles/ablation_trace_optimizer.dir/ablation_trace_optimizer.cpp.o.d"
  "ablation_trace_optimizer"
  "ablation_trace_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_trace_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
