# Empty compiler generated dependencies file for ablation_trace_optimizer.
# This may be replaced when dependencies are built.
