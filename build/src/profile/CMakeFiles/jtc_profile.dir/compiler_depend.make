# Empty compiler generated dependencies file for jtc_profile.
# This may be replaced when dependencies are built.
