file(REMOVE_RECURSE
  "CMakeFiles/jtc_profile.dir/BranchCorrelationGraph.cpp.o"
  "CMakeFiles/jtc_profile.dir/BranchCorrelationGraph.cpp.o.d"
  "libjtc_profile.a"
  "libjtc_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jtc_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
