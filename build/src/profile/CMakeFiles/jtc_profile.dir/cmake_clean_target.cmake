file(REMOVE_RECURSE
  "libjtc_profile.a"
)
