file(REMOVE_RECURSE
  "libjtc_text.a"
)
