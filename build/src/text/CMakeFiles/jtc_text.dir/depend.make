# Empty dependencies file for jtc_text.
# This may be replaced when dependencies are built.
