file(REMOVE_RECURSE
  "CMakeFiles/jtc_text.dir/AsmParser.cpp.o"
  "CMakeFiles/jtc_text.dir/AsmParser.cpp.o.d"
  "CMakeFiles/jtc_text.dir/AsmWriter.cpp.o"
  "CMakeFiles/jtc_text.dir/AsmWriter.cpp.o.d"
  "libjtc_text.a"
  "libjtc_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jtc_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
