
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/text/AsmParser.cpp" "src/text/CMakeFiles/jtc_text.dir/AsmParser.cpp.o" "gcc" "src/text/CMakeFiles/jtc_text.dir/AsmParser.cpp.o.d"
  "/root/repo/src/text/AsmWriter.cpp" "src/text/CMakeFiles/jtc_text.dir/AsmWriter.cpp.o" "gcc" "src/text/CMakeFiles/jtc_text.dir/AsmWriter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bytecode/CMakeFiles/jtc_bytecode.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/jtc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
