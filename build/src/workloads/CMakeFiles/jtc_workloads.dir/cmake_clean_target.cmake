file(REMOVE_RECURSE
  "libjtc_workloads.a"
)
