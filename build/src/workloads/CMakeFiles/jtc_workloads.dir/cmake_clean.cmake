file(REMOVE_RECURSE
  "CMakeFiles/jtc_workloads.dir/Common.cpp.o"
  "CMakeFiles/jtc_workloads.dir/Common.cpp.o.d"
  "CMakeFiles/jtc_workloads.dir/Compress.cpp.o"
  "CMakeFiles/jtc_workloads.dir/Compress.cpp.o.d"
  "CMakeFiles/jtc_workloads.dir/Javac.cpp.o"
  "CMakeFiles/jtc_workloads.dir/Javac.cpp.o.d"
  "CMakeFiles/jtc_workloads.dir/Mpegaudio.cpp.o"
  "CMakeFiles/jtc_workloads.dir/Mpegaudio.cpp.o.d"
  "CMakeFiles/jtc_workloads.dir/Raytrace.cpp.o"
  "CMakeFiles/jtc_workloads.dir/Raytrace.cpp.o.d"
  "CMakeFiles/jtc_workloads.dir/Registry.cpp.o"
  "CMakeFiles/jtc_workloads.dir/Registry.cpp.o.d"
  "CMakeFiles/jtc_workloads.dir/Scimark.cpp.o"
  "CMakeFiles/jtc_workloads.dir/Scimark.cpp.o.d"
  "CMakeFiles/jtc_workloads.dir/Soot.cpp.o"
  "CMakeFiles/jtc_workloads.dir/Soot.cpp.o.d"
  "libjtc_workloads.a"
  "libjtc_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jtc_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
