# Empty dependencies file for jtc_workloads.
# This may be replaced when dependencies are built.
