
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/Common.cpp" "src/workloads/CMakeFiles/jtc_workloads.dir/Common.cpp.o" "gcc" "src/workloads/CMakeFiles/jtc_workloads.dir/Common.cpp.o.d"
  "/root/repo/src/workloads/Compress.cpp" "src/workloads/CMakeFiles/jtc_workloads.dir/Compress.cpp.o" "gcc" "src/workloads/CMakeFiles/jtc_workloads.dir/Compress.cpp.o.d"
  "/root/repo/src/workloads/Javac.cpp" "src/workloads/CMakeFiles/jtc_workloads.dir/Javac.cpp.o" "gcc" "src/workloads/CMakeFiles/jtc_workloads.dir/Javac.cpp.o.d"
  "/root/repo/src/workloads/Mpegaudio.cpp" "src/workloads/CMakeFiles/jtc_workloads.dir/Mpegaudio.cpp.o" "gcc" "src/workloads/CMakeFiles/jtc_workloads.dir/Mpegaudio.cpp.o.d"
  "/root/repo/src/workloads/Raytrace.cpp" "src/workloads/CMakeFiles/jtc_workloads.dir/Raytrace.cpp.o" "gcc" "src/workloads/CMakeFiles/jtc_workloads.dir/Raytrace.cpp.o.d"
  "/root/repo/src/workloads/Registry.cpp" "src/workloads/CMakeFiles/jtc_workloads.dir/Registry.cpp.o" "gcc" "src/workloads/CMakeFiles/jtc_workloads.dir/Registry.cpp.o.d"
  "/root/repo/src/workloads/Scimark.cpp" "src/workloads/CMakeFiles/jtc_workloads.dir/Scimark.cpp.o" "gcc" "src/workloads/CMakeFiles/jtc_workloads.dir/Scimark.cpp.o.d"
  "/root/repo/src/workloads/Soot.cpp" "src/workloads/CMakeFiles/jtc_workloads.dir/Soot.cpp.o" "gcc" "src/workloads/CMakeFiles/jtc_workloads.dir/Soot.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bytecode/CMakeFiles/jtc_bytecode.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/jtc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
