# Empty compiler generated dependencies file for jtc_baseline.
# This may be replaced when dependencies are built.
