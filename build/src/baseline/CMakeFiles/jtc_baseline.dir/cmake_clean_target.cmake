file(REMOVE_RECURSE
  "libjtc_baseline.a"
)
