file(REMOVE_RECURSE
  "CMakeFiles/jtc_baseline.dir/NetTraceVm.cpp.o"
  "CMakeFiles/jtc_baseline.dir/NetTraceVm.cpp.o.d"
  "libjtc_baseline.a"
  "libjtc_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jtc_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
