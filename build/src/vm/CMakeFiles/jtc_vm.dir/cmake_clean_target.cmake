file(REMOVE_RECURSE
  "libjtc_vm.a"
)
