file(REMOVE_RECURSE
  "CMakeFiles/jtc_vm.dir/TraceVM.cpp.o"
  "CMakeFiles/jtc_vm.dir/TraceVM.cpp.o.d"
  "CMakeFiles/jtc_vm.dir/VmStats.cpp.o"
  "CMakeFiles/jtc_vm.dir/VmStats.cpp.o.d"
  "libjtc_vm.a"
  "libjtc_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jtc_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
