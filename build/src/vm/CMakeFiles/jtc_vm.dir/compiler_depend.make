# Empty compiler generated dependencies file for jtc_vm.
# This may be replaced when dependencies are built.
