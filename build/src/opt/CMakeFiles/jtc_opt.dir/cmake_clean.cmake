file(REMOVE_RECURSE
  "CMakeFiles/jtc_opt.dir/TraceOptimizer.cpp.o"
  "CMakeFiles/jtc_opt.dir/TraceOptimizer.cpp.o.d"
  "libjtc_opt.a"
  "libjtc_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jtc_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
