# Empty compiler generated dependencies file for jtc_opt.
# This may be replaced when dependencies are built.
