file(REMOVE_RECURSE
  "libjtc_opt.a"
)
