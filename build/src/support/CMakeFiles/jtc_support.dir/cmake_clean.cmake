file(REMOVE_RECURSE
  "CMakeFiles/jtc_support.dir/Prng.cpp.o"
  "CMakeFiles/jtc_support.dir/Prng.cpp.o.d"
  "CMakeFiles/jtc_support.dir/Stats.cpp.o"
  "CMakeFiles/jtc_support.dir/Stats.cpp.o.d"
  "CMakeFiles/jtc_support.dir/TablePrinter.cpp.o"
  "CMakeFiles/jtc_support.dir/TablePrinter.cpp.o.d"
  "libjtc_support.a"
  "libjtc_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jtc_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
