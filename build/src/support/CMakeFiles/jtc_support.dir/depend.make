# Empty dependencies file for jtc_support.
# This may be replaced when dependencies are built.
