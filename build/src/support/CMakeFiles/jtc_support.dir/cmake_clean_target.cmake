file(REMOVE_RECURSE
  "libjtc_support.a"
)
