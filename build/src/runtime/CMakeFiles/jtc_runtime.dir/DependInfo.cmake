
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/Heap.cpp" "src/runtime/CMakeFiles/jtc_runtime.dir/Heap.cpp.o" "gcc" "src/runtime/CMakeFiles/jtc_runtime.dir/Heap.cpp.o.d"
  "/root/repo/src/runtime/Machine.cpp" "src/runtime/CMakeFiles/jtc_runtime.dir/Machine.cpp.o" "gcc" "src/runtime/CMakeFiles/jtc_runtime.dir/Machine.cpp.o.d"
  "/root/repo/src/runtime/Trap.cpp" "src/runtime/CMakeFiles/jtc_runtime.dir/Trap.cpp.o" "gcc" "src/runtime/CMakeFiles/jtc_runtime.dir/Trap.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bytecode/CMakeFiles/jtc_bytecode.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/jtc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
