# Empty dependencies file for jtc_runtime.
# This may be replaced when dependencies are built.
