file(REMOVE_RECURSE
  "CMakeFiles/jtc_runtime.dir/Heap.cpp.o"
  "CMakeFiles/jtc_runtime.dir/Heap.cpp.o.d"
  "CMakeFiles/jtc_runtime.dir/Machine.cpp.o"
  "CMakeFiles/jtc_runtime.dir/Machine.cpp.o.d"
  "CMakeFiles/jtc_runtime.dir/Trap.cpp.o"
  "CMakeFiles/jtc_runtime.dir/Trap.cpp.o.d"
  "libjtc_runtime.a"
  "libjtc_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jtc_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
