file(REMOVE_RECURSE
  "libjtc_runtime.a"
)
