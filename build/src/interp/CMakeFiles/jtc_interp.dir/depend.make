# Empty dependencies file for jtc_interp.
# This may be replaced when dependencies are built.
