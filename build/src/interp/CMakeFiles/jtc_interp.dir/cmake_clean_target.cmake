file(REMOVE_RECURSE
  "libjtc_interp.a"
)
