file(REMOVE_RECURSE
  "CMakeFiles/jtc_interp.dir/BlockStepper.cpp.o"
  "CMakeFiles/jtc_interp.dir/BlockStepper.cpp.o.d"
  "CMakeFiles/jtc_interp.dir/InstructionInterpreter.cpp.o"
  "CMakeFiles/jtc_interp.dir/InstructionInterpreter.cpp.o.d"
  "CMakeFiles/jtc_interp.dir/PreparedModule.cpp.o"
  "CMakeFiles/jtc_interp.dir/PreparedModule.cpp.o.d"
  "CMakeFiles/jtc_interp.dir/ThreadedInterpreter.cpp.o"
  "CMakeFiles/jtc_interp.dir/ThreadedInterpreter.cpp.o.d"
  "libjtc_interp.a"
  "libjtc_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jtc_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
