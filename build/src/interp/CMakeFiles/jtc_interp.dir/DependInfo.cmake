
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/interp/BlockStepper.cpp" "src/interp/CMakeFiles/jtc_interp.dir/BlockStepper.cpp.o" "gcc" "src/interp/CMakeFiles/jtc_interp.dir/BlockStepper.cpp.o.d"
  "/root/repo/src/interp/InstructionInterpreter.cpp" "src/interp/CMakeFiles/jtc_interp.dir/InstructionInterpreter.cpp.o" "gcc" "src/interp/CMakeFiles/jtc_interp.dir/InstructionInterpreter.cpp.o.d"
  "/root/repo/src/interp/PreparedModule.cpp" "src/interp/CMakeFiles/jtc_interp.dir/PreparedModule.cpp.o" "gcc" "src/interp/CMakeFiles/jtc_interp.dir/PreparedModule.cpp.o.d"
  "/root/repo/src/interp/ThreadedInterpreter.cpp" "src/interp/CMakeFiles/jtc_interp.dir/ThreadedInterpreter.cpp.o" "gcc" "src/interp/CMakeFiles/jtc_interp.dir/ThreadedInterpreter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/profile/CMakeFiles/jtc_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/jtc_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/bytecode/CMakeFiles/jtc_bytecode.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/jtc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
