file(REMOVE_RECURSE
  "libjtc_trace.a"
)
