
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/TraceBuilder.cpp" "src/trace/CMakeFiles/jtc_trace.dir/TraceBuilder.cpp.o" "gcc" "src/trace/CMakeFiles/jtc_trace.dir/TraceBuilder.cpp.o.d"
  "/root/repo/src/trace/TraceCache.cpp" "src/trace/CMakeFiles/jtc_trace.dir/TraceCache.cpp.o" "gcc" "src/trace/CMakeFiles/jtc_trace.dir/TraceCache.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/profile/CMakeFiles/jtc_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/jtc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
