file(REMOVE_RECURSE
  "CMakeFiles/jtc_trace.dir/TraceBuilder.cpp.o"
  "CMakeFiles/jtc_trace.dir/TraceBuilder.cpp.o.d"
  "CMakeFiles/jtc_trace.dir/TraceCache.cpp.o"
  "CMakeFiles/jtc_trace.dir/TraceCache.cpp.o.d"
  "libjtc_trace.a"
  "libjtc_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jtc_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
