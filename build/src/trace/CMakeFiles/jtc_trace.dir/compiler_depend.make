# Empty compiler generated dependencies file for jtc_trace.
# This may be replaced when dependencies are built.
