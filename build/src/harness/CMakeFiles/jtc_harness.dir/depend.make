# Empty dependencies file for jtc_harness.
# This may be replaced when dependencies are built.
