file(REMOVE_RECURSE
  "libjtc_harness.a"
)
