file(REMOVE_RECURSE
  "CMakeFiles/jtc_harness.dir/Experiment.cpp.o"
  "CMakeFiles/jtc_harness.dir/Experiment.cpp.o.d"
  "libjtc_harness.a"
  "libjtc_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jtc_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
