file(REMOVE_RECURSE
  "libjtc_bytecode.a"
)
