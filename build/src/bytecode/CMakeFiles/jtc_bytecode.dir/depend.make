# Empty dependencies file for jtc_bytecode.
# This may be replaced when dependencies are built.
