file(REMOVE_RECURSE
  "CMakeFiles/jtc_bytecode.dir/Assembler.cpp.o"
  "CMakeFiles/jtc_bytecode.dir/Assembler.cpp.o.d"
  "CMakeFiles/jtc_bytecode.dir/Disassembler.cpp.o"
  "CMakeFiles/jtc_bytecode.dir/Disassembler.cpp.o.d"
  "CMakeFiles/jtc_bytecode.dir/Opcode.cpp.o"
  "CMakeFiles/jtc_bytecode.dir/Opcode.cpp.o.d"
  "CMakeFiles/jtc_bytecode.dir/Verifier.cpp.o"
  "CMakeFiles/jtc_bytecode.dir/Verifier.cpp.o.d"
  "libjtc_bytecode.a"
  "libjtc_bytecode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jtc_bytecode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
