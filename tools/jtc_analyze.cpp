//===- tools/jtc_analyze.cpp - Static-analysis lint driver ----------------===//
///
/// Runs the dataflow-analysis framework over programs and reports
/// advisory findings: code that verifies and runs but is probably not
/// what the author meant (unreachable blocks, dead branches, dead
/// stores, unused locals, stack-neutral loops). It also reports the
/// field-sensitive alias & escape analysis per module: how many heap
/// accesses the analysis can prove check-free (the facts the memory
/// passes and --mem-elide consume), allocation-site escape classes, and
/// a diagnostic per access whose proof was blocked (base may be null /
/// base shape unknown).
///
///   jtc-analyze <program>... [options]
///
/// <program> is either a path to a .jasm file or "workload:<name>" for
/// one of the built-in benchmarks. Programs that fail verification are
/// reported as errors (exit 1); lint findings are advisory and do not
/// affect the exit status unless --strict is given. Alias statistics and
/// unsupported-pattern diagnostics are informational only: an unproven
/// access is a missed optimization, not a defect, so they never affect
/// the exit status.
///
/// Options:
///   --json        emit findings as one JSON document on stdout
///   --strict      exit 1 when any finding is reported
///   --scale=<n>   workload scale override (workload inputs only)
///   --quiet       suppress the per-input "ok" lines and the alias
///                 diagnostics (human mode)
///
//===----------------------------------------------------------------------===//

#include "analysis/Analysis.h"
#include "bytecode/Verifier.h"
#include "support/ArgParse.h"
#include "support/Json.h"
#include "text/AsmParser.h"
#include "workloads/Workloads.h"

#include <iostream>
#include <optional>
#include <string>
#include <vector>

using namespace jtc;

namespace {

struct Options {
  std::vector<std::string> Inputs;
  bool Json = false;
  bool Strict = false;
  bool Quiet = false;
  uint32_t Scale = 0;
};

int usage() {
  std::cerr << "usage: jtc-analyze <program>... [--json] [--strict] "
               "[--scale=N] [--quiet]\n"
               "  <program>: a .jasm file, or workload:<name> where name is "
               "one of:\n   ";
  for (const WorkloadInfo &W : allWorkloads())
    std::cerr << " " << W.Name;
  std::cerr << "\n";
  return 2;
}

bool parseOptions(int Argc, char **Argv, Options &Opts) {
  ArgParser P;
  P.positionals(&Opts.Inputs)
      .flag("json", &Opts.Json)
      .flag("strict", &Opts.Strict)
      .flag("quiet", &Opts.Quiet)
      .u32Opt("scale", &Opts.Scale);
  return P.parse(Argc, Argv, 1) && !Opts.Inputs.empty();
}

std::optional<Module> loadProgram(const std::string &Input,
                                  const Options &Opts) {
  if (Input.rfind("workload:", 0) == 0) {
    std::string Name = Input.substr(9);
    const WorkloadInfo *W = findWorkload(Name);
    if (!W) {
      std::cerr << "unknown workload '" << Name << "'\n";
      return std::nullopt;
    }
    return W->Build(Opts.Scale ? Opts.Scale : W->DefaultScale);
  }
  std::string Error;
  std::optional<Module> M = parseModuleFile(Input, Error);
  if (!M)
    std::cerr << "error: " << Error << "\n";
  return M;
}

/// Lint findings plus the alias & escape report for one input.
struct InputReport {
  std::vector<analysis::LintFinding> Findings;
  analysis::ModuleAliasReport Alias;
};

InputReport analyzeModule(const Module &M) {
  analysis::ModuleAnalysis Facts = analysis::ModuleAnalysis::compute(M);
  InputReport R;
  for (uint32_t F = 0; F < Facts.numMethods(); ++F) {
    const analysis::MethodAnalysis *MA = Facts.method(F);
    if (!MA)
      continue;
    std::vector<analysis::LintFinding> Fs =
        analysis::lintMethod(MA->Values, MA->Liveness);
    R.Findings.insert(R.Findings.end(), Fs.begin(), Fs.end());
  }
  analysis::ValueFactsFn VF =
      [&Facts](uint32_t F) -> const analysis::MethodValueFacts * {
    return Facts.method(F) ? &Facts.method(F)->Values : nullptr;
  };
  R.Alias = analysis::analyzeModuleAliasing(M, VF, Facts.summaries());
  return R;
}

void printHuman(const std::string &Input, const Module &M,
                const InputReport &R, bool Quiet) {
  for (const analysis::LintFinding &F : R.Findings)
    std::cout << Input << ": method " << M.Methods[F.MethodId].Name
              << " block " << F.Block << " @" << F.Pc << ": "
              << analysis::lintKindName(F.K) << ": " << F.Message << "\n";
  if (!Quiet)
    for (const std::string &D : R.Alias.Diagnostics)
      std::cout << Input << ": alias: " << D << "\n";
  const analysis::AliasStats &S = R.Alias.Stats;
  std::cout << Input << ": alias: " << S.MemOps << " heap accesses ("
            << S.ElidedFull << " check-free, " << S.ElidedNull
            << " bounds-only, " << S.MayNullBase << " may-null, "
            << S.UnknownBase << " unknown-base), " << S.AllocSites
            << " alloc sites (" << S.NoEscape << " no-escape, " << S.ArgEscape
            << " arg-escape, " << S.GlobalEscape << " global-escape)\n";
  if (!Quiet || !R.Findings.empty())
    std::cout << Input << ": " << M.Methods.size() << " methods, "
              << R.Findings.size() << " finding"
              << (R.Findings.size() == 1 ? "" : "s") << "\n";
}

void writeInputJson(JsonWriter &W, const std::string &Input, const Module &M,
                    const InputReport &R) {
  W.beginObject();
  W.field("input", Input);
  W.fieldUInt("methods", M.Methods.size());
  W.key("findings").beginArray();
  for (const analysis::LintFinding &F : R.Findings) {
    W.beginObject()
        .field("kind", analysis::lintKindName(F.K))
        .field("method", M.Methods[F.MethodId].Name)
        .fieldUInt("methodId", F.MethodId)
        .fieldUInt("block", F.Block)
        .fieldUInt("pc", F.Pc)
        .field("message", F.Message)
        .endObject();
  }
  W.endArray();
  const analysis::AliasStats &S = R.Alias.Stats;
  W.key("alias").beginObject();
  W.fieldUInt("memOps", S.MemOps)
      .fieldUInt("elidedFull", S.ElidedFull)
      .fieldUInt("elidedNull", S.ElidedNull)
      .fieldUInt("mayNullBase", S.MayNullBase)
      .fieldUInt("unknownBase", S.UnknownBase)
      .fieldUInt("allocSites", S.AllocSites)
      .fieldUInt("noEscape", S.NoEscape)
      .fieldUInt("argEscape", S.ArgEscape)
      .fieldUInt("globalEscape", S.GlobalEscape);
  W.key("diagnostics").beginArray();
  for (const std::string &D : R.Alias.Diagnostics)
    W.value(D);
  W.endArray();
  W.endObject();
  W.endObject();
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opts;
  if (!parseOptions(Argc, Argv, Opts))
    return usage();

  JsonWriter W(std::cout);
  if (Opts.Json)
    W.beginObject().key("inputs").beginArray();

  size_t TotalFindings = 0;
  bool LoadFailed = false;
  for (const std::string &Input : Opts.Inputs) {
    std::optional<Module> M = loadProgram(Input, Opts);
    if (!M) {
      LoadFailed = true;
      continue;
    }
    // The analyses assume verified code; a program that fails the typed
    // verifier is an error here, not a lint.
    std::vector<VerifyError> Errors = verifyModule(*M);
    if (!Errors.empty()) {
      std::cerr << Input << ": verification failed:\n" << formatErrors(Errors);
      LoadFailed = true;
      continue;
    }
    InputReport R = analyzeModule(*M);
    TotalFindings += R.Findings.size();
    if (Opts.Json)
      writeInputJson(W, Input, *M, R);
    else
      printHuman(Input, *M, R, Opts.Quiet);
  }

  if (Opts.Json) {
    W.endArray()
        .fieldUInt("totalFindings", TotalFindings)
        .fieldBool("strict", Opts.Strict)
        .endObject();
    std::cout << "\n";
  }

  if (LoadFailed)
    return 1;
  return Opts.Strict && TotalFindings > 0 ? 1 : 0;
}
