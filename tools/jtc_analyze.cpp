//===- tools/jtc_analyze.cpp - Static-analysis lint driver ----------------===//
///
/// Runs the dataflow-analysis framework over programs and reports
/// advisory findings: code that verifies and runs but is probably not
/// what the author meant (unreachable blocks, dead branches, dead
/// stores, unused locals, stack-neutral loops).
///
///   jtc-analyze <program>... [options]
///
/// <program> is either a path to a .jasm file or "workload:<name>" for
/// one of the built-in benchmarks. Programs that fail verification are
/// reported as errors (exit 1); lint findings are advisory and do not
/// affect the exit status unless --strict is given.
///
/// Options:
///   --json        emit findings as one JSON document on stdout
///   --strict      exit 1 when any finding is reported
///   --scale=<n>   workload scale override (workload inputs only)
///   --quiet       suppress the per-input "ok" lines (human mode)
///
//===----------------------------------------------------------------------===//

#include "analysis/Analysis.h"
#include "bytecode/Verifier.h"
#include "support/ArgParse.h"
#include "support/Json.h"
#include "text/AsmParser.h"
#include "workloads/Workloads.h"

#include <iostream>
#include <optional>
#include <string>
#include <vector>

using namespace jtc;

namespace {

struct Options {
  std::vector<std::string> Inputs;
  bool Json = false;
  bool Strict = false;
  bool Quiet = false;
  uint32_t Scale = 0;
};

int usage() {
  std::cerr << "usage: jtc-analyze <program>... [--json] [--strict] "
               "[--scale=N] [--quiet]\n"
               "  <program>: a .jasm file, or workload:<name> where name is "
               "one of:\n   ";
  for (const WorkloadInfo &W : allWorkloads())
    std::cerr << " " << W.Name;
  std::cerr << "\n";
  return 2;
}

bool parseOptions(int Argc, char **Argv, Options &Opts) {
  ArgParser P;
  P.positionals(&Opts.Inputs)
      .flag("json", &Opts.Json)
      .flag("strict", &Opts.Strict)
      .flag("quiet", &Opts.Quiet)
      .u32Opt("scale", &Opts.Scale);
  return P.parse(Argc, Argv, 1) && !Opts.Inputs.empty();
}

std::optional<Module> loadProgram(const std::string &Input,
                                  const Options &Opts) {
  if (Input.rfind("workload:", 0) == 0) {
    std::string Name = Input.substr(9);
    const WorkloadInfo *W = findWorkload(Name);
    if (!W) {
      std::cerr << "unknown workload '" << Name << "'\n";
      return std::nullopt;
    }
    return W->Build(Opts.Scale ? Opts.Scale : W->DefaultScale);
  }
  std::string Error;
  std::optional<Module> M = parseModuleFile(Input, Error);
  if (!M)
    std::cerr << "error: " << Error << "\n";
  return M;
}

/// All findings for one input, in method order.
std::vector<analysis::LintFinding> lintModule(const Module &M) {
  analysis::ModuleAnalysis Facts = analysis::ModuleAnalysis::compute(M);
  std::vector<analysis::LintFinding> All;
  for (uint32_t F = 0; F < Facts.numMethods(); ++F) {
    const analysis::MethodAnalysis *MA = Facts.method(F);
    if (!MA)
      continue;
    std::vector<analysis::LintFinding> Fs =
        analysis::lintMethod(MA->Values, MA->Liveness);
    All.insert(All.end(), Fs.begin(), Fs.end());
  }
  return All;
}

void printHuman(const std::string &Input, const Module &M,
                const std::vector<analysis::LintFinding> &Findings,
                bool Quiet) {
  for (const analysis::LintFinding &F : Findings)
    std::cout << Input << ": method " << M.Methods[F.MethodId].Name
              << " block " << F.Block << " @" << F.Pc << ": "
              << analysis::lintKindName(F.K) << ": " << F.Message << "\n";
  if (!Quiet || !Findings.empty())
    std::cout << Input << ": " << M.Methods.size() << " methods, "
              << Findings.size() << " finding"
              << (Findings.size() == 1 ? "" : "s") << "\n";
}

void writeInputJson(JsonWriter &W, const std::string &Input, const Module &M,
                    const std::vector<analysis::LintFinding> &Findings) {
  W.beginObject();
  W.field("input", Input);
  W.fieldUInt("methods", M.Methods.size());
  W.key("findings").beginArray();
  for (const analysis::LintFinding &F : Findings) {
    W.beginObject()
        .field("kind", analysis::lintKindName(F.K))
        .field("method", M.Methods[F.MethodId].Name)
        .fieldUInt("methodId", F.MethodId)
        .fieldUInt("block", F.Block)
        .fieldUInt("pc", F.Pc)
        .field("message", F.Message)
        .endObject();
  }
  W.endArray();
  W.endObject();
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opts;
  if (!parseOptions(Argc, Argv, Opts))
    return usage();

  JsonWriter W(std::cout);
  if (Opts.Json)
    W.beginObject().key("inputs").beginArray();

  size_t TotalFindings = 0;
  bool LoadFailed = false;
  for (const std::string &Input : Opts.Inputs) {
    std::optional<Module> M = loadProgram(Input, Opts);
    if (!M) {
      LoadFailed = true;
      continue;
    }
    // The analyses assume verified code; a program that fails the typed
    // verifier is an error here, not a lint.
    std::vector<VerifyError> Errors = verifyModule(*M);
    if (!Errors.empty()) {
      std::cerr << Input << ": verification failed:\n" << formatErrors(Errors);
      LoadFailed = true;
      continue;
    }
    std::vector<analysis::LintFinding> Findings = lintModule(*M);
    TotalFindings += Findings.size();
    if (Opts.Json)
      writeInputJson(W, Input, *M, Findings);
    else
      printHuman(Input, *M, Findings, Opts.Quiet);
  }

  if (Opts.Json) {
    W.endArray()
        .fieldUInt("totalFindings", TotalFindings)
        .fieldBool("strict", Opts.Strict)
        .endObject();
    std::cout << "\n";
  }

  if (LoadFailed)
    return 1;
  return Opts.Strict && TotalFindings > 0 ? 1 : 0;
}
