//===- tools/jtc_fleet.cpp - Sharded serving fleet supervisor -------------===//
///
/// The fleet entry point, running in one of two modes:
///
///   jtc-fleet [options]          supervisor: binds the front-end and every
///                                shard's listening socket, forks N shard
///                                processes (each re-executing this binary
///                                in --shard mode with its socket inherited
///                                by fd), routes sessions by consistent
///                                hash, restarts crashed shards, and
///                                periodically merges shard checkpoints
///                                into a fleet profile aggregate.
///
///   jtc-fleet --shard ...        one shard process (spawned by the
///                                supervisor; not for direct use).
///
/// Supervisor options:
///   --shards=N                shard process count          (default 2)
///   --shard-workers=N         VmService workers per shard  (default 1)
///   --listen=PORT             front-end port (default 0 = kernel pick)
///   --workload=NAME[:SCALE]   register a workload (repeatable;
///                             default: every registry workload)
///   --scale=N                 default scale for --workload without one
///   --state-dir=DIR           checkpoints + fleet aggregate live here
///   --aggregate-interval=D    merge cadence ("30s", "5m"; 0 = only at
///                             exit)                        (default 0)
///   --checkpoint-interval=D   per-shard periodic checkpoint cadence
///   --max-queue-depth=N       admission bound per shard ("64", "1k")
///   --idle-timeout=D          close idle client connections
///   --run-for=D               serve for this long, then drain and exit
///   --sessions=N              drive N sessions through the front-end
///                             (round-robin workloads, distinct keys)
///   --stats                   human-readable fleet summary to stderr
///   --json[=FILE]             fleet + per-shard counters as JSON
///
//===----------------------------------------------------------------------===//

#include "fleet/Shard.h"
#include "fleet/Supervisor.h"
#include "net/Client.h"
#include "support/ArgParse.h"
#include "support/Json.h"
#include "telemetry/Event.h"
#include "workloads/Workloads.h"

#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstring>
#include <fstream>
#include <iostream>
#include <thread>

using namespace jtc;
using namespace jtc::fleet;

namespace {

struct Options {
  bool Shard = false; ///< Shard mode (supervisor-spawned).
  uint64_t ListenFd = 0;
  uint32_t ShardId = 0;
  uint32_t Shards = 2;
  uint32_t ShardWorkers = 1;
  uint32_t Listen = 0;
  uint32_t Scale = 0;
  std::vector<std::pair<std::string, uint32_t>> Workloads;
  std::string StateDir;
  double AggregateInterval = 0;
  double CheckpointInterval = 0;
  uint64_t MaxQueueDepth = 64;
  double IdleTimeout = 0;
  double RunFor = 0;
  uint64_t Sessions = 0;
  uint64_t MaxInstructions = 0;
  bool Stats = false;
  bool Json = false;
  std::string JsonOut;
};

int usage() {
  std::cerr
      << "usage: jtc-fleet [options]\n"
         "  --shards=N --shard-workers=N --listen=PORT\n"
         "  --workload=NAME[:SCALE] --scale=N --state-dir=DIR\n"
         "  --aggregate-interval=D --checkpoint-interval=D "
         "--max-queue-depth=N\n"
         "  --idle-timeout=D --run-for=D --sessions=N --max-instr=N\n"
         "  --stats --json[=FILE]\n"
         "  workloads:";
  for (const WorkloadInfo &W : allWorkloads())
    std::cerr << " " << W.Name;
  std::cerr << "\n";
  return 2;
}

bool parseOptions(int Argc, char **Argv, Options &Opts) {
  bool HadListenFd = false;
  ArgParser P;
  P.flag("shard", &Opts.Shard)
      .custom(
          "listen-fd",
          [&Opts, &HadListenFd](const std::string &V) {
            HadListenFd = true;
            Opts.ListenFd = std::strtoull(V.c_str(), nullptr, 10);
            return true;
          },
          /*ValueRequired=*/true)
      .u32Opt("shard-id", &Opts.ShardId)
      .u32Opt("shards", &Opts.Shards)
      .u32Opt("shard-workers", &Opts.ShardWorkers)
      .u32Opt("listen", &Opts.Listen)
      .u32Opt("scale", &Opts.Scale)
      .custom(
          "workload",
          [&Opts](const std::string &V) {
            size_t Colon = V.find(':');
            std::string Name = V.substr(0, Colon);
            uint32_t Scale = 0;
            if (Colon != std::string::npos)
              Scale = static_cast<uint32_t>(
                  std::strtoul(V.c_str() + Colon + 1, nullptr, 10));
            Opts.Workloads.emplace_back(Name, Scale);
            return true;
          },
          /*ValueRequired=*/true)
      .strOpt("state-dir", &Opts.StateDir)
      .durationOpt("aggregate-interval", &Opts.AggregateInterval)
      .durationOpt("checkpoint-interval", &Opts.CheckpointInterval)
      .sizeOpt("max-queue-depth", &Opts.MaxQueueDepth)
      .durationOpt("idle-timeout", &Opts.IdleTimeout)
      .durationOpt("run-for", &Opts.RunFor)
      .uintOpt("sessions", &Opts.Sessions)
      .uintOpt("max-instr", &Opts.MaxInstructions)
      .flag("stats", &Opts.Stats)
      .custom("json", [&Opts](const std::string &V) {
        Opts.Json = true;
        Opts.JsonOut = V;
        return true;
      });
  if (!P.parse(Argc, Argv))
    return false;
  if (Opts.Shard && !HadListenFd) {
    std::cerr << "--shard requires --listen-fd\n";
    return false;
  }
  if (Opts.Workloads.empty())
    for (const WorkloadInfo &W : allWorkloads())
      Opts.Workloads.emplace_back(W.Name, 0);
  if (Opts.Scale)
    for (auto &[Name, Scale] : Opts.Workloads)
      if (Scale == 0)
        Scale = Opts.Scale;
  return true;
}

int runShard(const Options &Opts) {
  ShardOptions SO;
  SO.ListenFd = static_cast<int>(Opts.ListenFd);
  SO.ShardId = Opts.ShardId;
  SO.Workers = Opts.ShardWorkers;
  SO.StateDir = Opts.StateDir;
  SO.MaxQueueDepth = Opts.MaxQueueDepth;
  SO.IdleTimeoutSeconds = Opts.IdleTimeout;
  SO.CheckpointIntervalSeconds = Opts.CheckpointInterval;
  SO.Workloads = Opts.Workloads;
  return runShardProcess(SO);
}

std::string selfExePath(const char *Argv0) {
  char Buf[4096];
  ssize_t N = ::readlink("/proc/self/exe", Buf, sizeof(Buf) - 1);
  if (N > 0) {
    Buf[N] = '\0';
    return Buf;
  }
  return Argv0;
}

/// Drives --sessions through the front-end on a separate thread (the
/// main thread keeps polling the supervisor loop). Round-robins the
/// workloads with distinct session keys so routing spreads by hash.
void driveSessions(uint16_t Port, const Options &Opts, uint64_t &Completed,
                   uint64_t &Failed) {
  std::string Err;
  auto Client = net::BlockingClient::connect(Port, Err);
  if (!Client) {
    std::cerr << "jtc-fleet: loadgen connect: " << Err << "\n";
    Failed = Opts.Sessions;
    return;
  }
  for (uint64_t I = 0; I < Opts.Sessions; ++I) {
    net::RunSessionMsg M;
    M.SessionKey = "session-" + std::to_string(I);
    M.Module = Opts.Workloads[I % Opts.Workloads.size()].first;
    M.MaxInstructions = Opts.MaxInstructions;
    net::Frame Reply;
    net::NetError NErr;
    if (Client->call(net::MessageType::RunSession, M.encode(), Reply, NErr) &&
        Reply.Type == net::MessageType::SessionDone)
      ++Completed;
    else
      ++Failed;
  }
}

void writeFleetJson(std::ostream &OS, const Options &Opts,
                    FleetSupervisor &Fleet,
                    const std::vector<ShardStatsReport> &PerShard,
                    uint64_t Completed, uint64_t Failed) {
  const FleetStats &FS = Fleet.stats();
  const net::NetCounters &NC = Fleet.netCounters();
  JsonWriter W(OS);
  W.beginObject();
  W.key("config")
      .beginObject()
      .fieldUInt("shards", Opts.Shards)
      .fieldUInt("shard_workers", Opts.ShardWorkers)
      .fieldUInt("max_queue_depth", Opts.MaxQueueDepth)
      .fieldReal("aggregate_interval_seconds", Opts.AggregateInterval)
      .endObject();
  W.key("fleet")
      .beginObject()
      .fieldUInt(eventKindName(EventKind::ShardRestarted), FS.ShardRestarts)
      .fieldUInt(eventKindName(EventKind::AggregateMerged),
                 FS.AggregatesMerged)
      .fieldUInt("sessions-routed", FS.SessionsRouted)
      .fieldUInt("routed-shard-down", FS.RoutedShardDown)
      .fieldUInt(eventKindName(EventKind::ConnAccepted), NC.ConnsAccepted)
      .fieldUInt(eventKindName(EventKind::ConnClosed), NC.ConnsClosed)
      .fieldUInt("frames-in", NC.FramesIn)
      .fieldUInt("frames-out", NC.FramesOut)
      .fieldUInt("protocol-errors", NC.ProtocolErrors)
      .fieldUInt("idle-closed", NC.IdleClosed)
      .endObject();
  W.key("last_merge")
      .beginObject()
      .fieldUInt("inputs", FS.LastMerge.Inputs)
      .fieldUInt("nodes", FS.LastMerge.Nodes)
      .fieldUInt("traces", FS.LastMerge.Traces)
      .fieldUInt("traces_deduped", FS.LastMerge.TracesDeduped)
      .fieldUInt("traces_dropped_by_completion",
                 FS.LastMerge.TracesDroppedByCompletion)
      .fieldUInt("epoch", FS.LastMerge.Epoch)
      .endObject();
  if (Opts.Sessions)
    W.key("loadgen")
        .beginObject()
        .fieldUInt("sessions", Opts.Sessions)
        .fieldUInt("completed", Completed)
        .fieldUInt("failed", Failed)
        .endObject();
  W.key("per_shard").beginArray();
  for (const ShardStatsReport &R : PerShard) {
    W.beginObject().fieldUInt("shard", R.Shard);
    for (const auto &[Key, V] : R.Counters)
      W.fieldUInt(Key, V);
    W.endObject();
  }
  W.endArray();
  W.endObject();
  OS << "\n";
}

int runSupervisor(const Options &Opts, const char *Argv0) {
  std::signal(SIGPIPE, SIG_IGN);

  FleetOptions FO;
  FO.Shards = Opts.Shards;
  FO.Workers = Opts.ShardWorkers;
  FO.ListenPort = static_cast<uint16_t>(Opts.Listen);
  FO.StateDir = Opts.StateDir;
  FO.AggregateIntervalSeconds = Opts.AggregateInterval;
  FO.CheckpointIntervalSeconds = Opts.CheckpointInterval;
  FO.MaxQueueDepth = Opts.MaxQueueDepth;
  FO.IdleTimeoutSeconds = Opts.IdleTimeout;
  FO.ShardBinary = selfExePath(Argv0);
  FO.Workloads = Opts.Workloads;

  FleetSupervisor Fleet(FO);
  std::string Err;
  if (!Fleet.start(Err)) {
    std::cerr << "jtc-fleet: " << Err << "\n";
    return 1;
  }
  std::cerr << "jtc-fleet: serving on 127.0.0.1:" << Fleet.frontPort()
            << " with " << Opts.Shards << " shards\n";

  uint64_t Completed = 0, Failed = 0;
  if (Opts.Sessions) {
    // The generator blocks on its own socket; the supervisor loop keeps
    // polling on this thread until it finishes.
    std::atomic<bool> Done{false};
    std::thread Gen([&] {
      driveSessions(Fleet.frontPort(), Opts, Completed, Failed);
      Done = true;
    });
    while (!Done)
      Fleet.poll(20);
    Gen.join();
  }
  if (Opts.RunFor > 0)
    Fleet.runFor(Opts.RunFor);

  if (!Opts.StateDir.empty() && !Fleet.aggregateNow(Err))
    std::cerr << "jtc-fleet: final aggregate: " << Err << "\n";

  std::vector<ShardStatsReport> PerShard;
  if ((Opts.Stats || Opts.Json) && !Fleet.fetchStats(PerShard, Err))
    std::cerr << "jtc-fleet: fetch stats: " << Err << "\n";

  if (Opts.Stats) {
    const FleetStats &FS = Fleet.stats();
    std::cerr << "fleet: " << FS.SessionsRouted << " sessions routed, "
              << FS.ShardRestarts << " shard restarts, "
              << FS.AggregatesMerged << " aggregates merged\n";
    for (const ShardStatsReport &R : PerShard) {
      std::cerr << "  shard " << R.Shard << ":";
      for (const auto &[Key, V] : R.Counters)
        if (V)
          std::cerr << " " << Key << "=" << V;
      std::cerr << "\n";
    }
  }
  if (Opts.Json) {
    if (Opts.JsonOut.empty()) {
      writeFleetJson(std::cout, Opts, Fleet, PerShard, Completed, Failed);
    } else {
      std::ofstream OS(Opts.JsonOut);
      if (!OS) {
        std::cerr << "jtc-fleet: cannot write " << Opts.JsonOut << "\n";
        return 1;
      }
      writeFleetJson(OS, Opts, Fleet, PerShard, Completed, Failed);
    }
  }

  Fleet.shutdown();
  return Failed ? 1 : 0;
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opts;
  if (!parseOptions(Argc, Argv, Opts))
    return usage();
  if (Opts.Shard)
    return runShard(Opts);
  return runSupervisor(Opts, Argv[0]);
}
