//===- tools/jtcvm.cpp - Command-line driver ------------------------------===//
///
/// The command-line front end for the jtc virtual machine:
///
///   jtcvm run <program> [options]     run under the trace-dispatching VM
///   jtcvm interp <program>            run under the plain interpreters
///   jtcvm verify <program>            run the static verifier
///   jtcvm disasm <program>            print the decoded program
///   jtcvm emit <program>              print the program as .jasm text
///   jtcvm --merge-profiles <out.jtcp> <in.jtcp>...
///                                     merge profile snapshots (same
///                                     module) into one fleet snapshot
///
/// <program> is either a path to a .jasm file or "workload:<name>" for
/// one of the built-in benchmarks (workload:compress etc.).
///
/// Options for `run`:
///   --threshold=<0..1>   trace completion threshold   (default 0.97)
///   --delay=<n>          start-state delay            (default 64)
///   --decay=<n>          decay interval               (default 256)
///   --scale=<n>          workload scale               (default: builtin)
///   --max-instr=<n>      instruction budget
///   --no-traces          profile only, no trace dispatch
///   --no-profile         plain block interpreter
///   --stats              print the full statistics block
///   --dump-traces        print the live trace cache
///   --dump-graph         print the branch correlation graph (large!)
///   --quiet              suppress program output
///   --json[=<file>]      stats + run outcome as JSON (stdout if no file;
///                        implies --quiet on stdout)
///   --trace-out=<file>   telemetry as Chrome trace_event JSON (open in
///                        Perfetto / chrome://tracing)
///   --events-out=<file>  telemetry as JSONL, one event per line
///   --sample-interval=<n> snapshot stats deltas every n executed blocks
///   --telemetry-cap=<n>  event ring capacity (default 65536)
///   --load-profile=<f>   seed the session from a .jtcp snapshot (strictly
///                        re-validated against this program first)
///   --save-profile=<f>   write the session's profile + live traces as a
///                        .jtcp snapshot after the run
///   --btrace-out=<f>     capture the run as a compressed .btc branch
///                        trace (replayable with jtc-replay)
///   --btrace-sync-interval=<n>  blocks between .btc sync packets
///                        (default 4096; 0 = none)
///   --replay=<f>         do not execute: replay the .btc stream against
///                        <program> and verify the stats digest
///   --validate=<mode>    construction-time translation validation of
///                        optimized traces: off, on (default) or strict
///                        (abort the process on any rejection)
///   --backend=<tier>     trace-execution backend: interp (default; the
///                        oracle tier), jit (x86-64 template JIT), or
///                        auto (jit when the host supports it). The
///                        JTC_BACKEND environment variable changes the
///                        default.
///   --mem-elide=<mode>   heap-access check elision from the trace-path
///                        alias analysis: on (default) or off. Digest-
///                        neutral either way (elided checks were proved
///                        to pass).
///
//===----------------------------------------------------------------------===//

#include "btrace/BtraceCapture.h"
#include "btrace/BtraceReplay.h"
#include "bytecode/Disassembler.h"
#include "bytecode/Verifier.h"
#include "interp/InstructionInterpreter.h"
#include "persist/Snapshot.h"
#include "persist/SnapshotMerge.h"
#include "support/ArgParse.h"
#include "support/Json.h"
#include "support/TypedError.h"
#include "telemetry/Export.h"
#include "text/AsmParser.h"
#include "text/AsmWriter.h"
#include "validate/Validator.h"
#include "vm/TraceVM.h"
#include "workloads/Workloads.h"

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

using namespace jtc;

namespace {

struct Options {
  std::string Command;
  std::string Program;
  double Threshold = 0.97;
  uint32_t Delay = 64;
  uint32_t Decay = 256;
  uint32_t Scale = 0;
  uint64_t MaxInstructions = ~0ull;
  bool NoTraces = false;
  bool NoProfile = false;
  bool Stats = false;
  bool DumpTraces = false;
  bool DumpGraph = false;
  bool Quiet = false;
  bool Json = false;
  std::string JsonOut;   ///< Empty with Json=true means stdout.
  std::string TraceOut;  ///< Chrome trace_event output file.
  std::string EventsOut; ///< JSONL event dump file.
  uint64_t SampleInterval = 0;
  uint32_t TelemetryCap = 1u << 16;
  std::string LoadProfile; ///< .jtcp snapshot to seed the session from.
  std::string SaveProfile; ///< .jtcp snapshot to write after the run.
  std::string BtraceOut;   ///< .btc branch-trace capture file.
  uint32_t BtraceSyncInterval = 4096;
  std::string Replay;       ///< .btc stream to replay instead of running.
  ValidateMode Validate = ValidateMode::On;
  bool MemElide = true; ///< Annotate traces with heap-check elisions.
  backend::BackendKind Backend = defaultBackendKind();
  uint32_t ResolvedScale = 1; ///< Actual workload scale (after defaults).

  /// Any flag that needs the event ring or phase sampler.
  bool wantsTelemetry() const {
    return !TraceOut.empty() || !EventsOut.empty() || SampleInterval > 0;
  }
};

int usage() {
  std::cerr
      << "usage: jtcvm <run|interp|verify|disasm|emit> <program> [options]\n"
         "  <program>: a .jasm file, or workload:<name> where name is one "
         "of:\n   ";
  for (const WorkloadInfo &W : allWorkloads())
    std::cerr << " " << W.Name;
  std::cerr << "\n  run options: --threshold=X --delay=N --decay=N "
               "--scale=N --max-instr=N\n"
               "               --no-traces --no-profile --stats "
               "--dump-traces --dump-graph --quiet\n"
               "               --json[=FILE] --trace-out=FILE "
               "--events-out=FILE\n"
               "               --sample-interval=N --telemetry-cap=N\n"
               "               --load-profile=FILE --save-profile=FILE\n"
               "               --btrace-out=FILE --btrace-sync-interval=N "
               "--replay=FILE\n"
               "               --validate=off|on|strict "
               "--backend=interp|jit|auto --mem-elide=on|off\n";
  return 2;
}

bool parseOptions(int Argc, char **Argv, Options &Opts) {
  if (Argc < 3)
    return false;
  Opts.Command = Argv[1];
  Opts.Program = Argv[2];
  ArgParser P;
  P.realOpt("threshold", &Opts.Threshold)
      .u32Opt("delay", &Opts.Delay)
      .u32Opt("decay", &Opts.Decay)
      .u32Opt("scale", &Opts.Scale)
      .uintOpt("max-instr", &Opts.MaxInstructions)
      .flag("no-traces", &Opts.NoTraces)
      .flag("no-profile", &Opts.NoProfile)
      .flag("stats", &Opts.Stats)
      .flag("dump-traces", &Opts.DumpTraces)
      .flag("dump-graph", &Opts.DumpGraph)
      .flag("quiet", &Opts.Quiet)
      .custom("json",
              [&Opts](const std::string &V) {
                Opts.Json = true;
                Opts.JsonOut = V;
                return true;
              })
      .strOpt("trace-out", &Opts.TraceOut)
      .strOpt("events-out", &Opts.EventsOut)
      .strOpt("load-profile", &Opts.LoadProfile)
      .strOpt("save-profile", &Opts.SaveProfile)
      .strOpt("btrace-out", &Opts.BtraceOut)
      .u32Opt("btrace-sync-interval", &Opts.BtraceSyncInterval)
      .strOpt("replay", &Opts.Replay)
      .choice("validate",
              {{"off", ValidateMode::Off},
               {"on", ValidateMode::On},
               {"strict", ValidateMode::Strict}},
              &Opts.Validate)
      .choice("mem-elide", {{"off", false}, {"on", true}}, &Opts.MemElide)
      .choice("backend",
              {{"interp", backend::BackendKind::Interp},
               {"jit", backend::BackendKind::Jit},
               {"auto", backend::BackendKind::Auto}},
              &Opts.Backend)
      .uintOpt("sample-interval", &Opts.SampleInterval)
      .custom(
          "telemetry-cap",
          [&Opts](const std::string &V) {
            Opts.TelemetryCap = static_cast<uint32_t>(std::atoi(V.c_str()));
            // Capacity 0 would silently disable the ring while
            // --events-out / --trace-out still look like they worked
            // (empty files).
            if (Opts.TelemetryCap == 0) {
              std::cerr << "invalid --telemetry-cap '" << V << "'\n";
              return false;
            }
            return true;
          },
          /*ValueRequired=*/true);
  return P.parse(Argc, Argv, 3);
}

/// Loads the program named by \p Opts: a workload or a .jasm file. Also
/// resolves the effective workload scale into Opts (btrace provenance).
std::optional<Module> loadProgram(Options &Opts) {
  if (Opts.Program.rfind("workload:", 0) == 0) {
    std::string Name = Opts.Program.substr(9);
    const WorkloadInfo *W = findWorkload(Name);
    if (!W) {
      std::cerr << "unknown workload '" << Name << "'\n";
      return std::nullopt;
    }
    Opts.ResolvedScale = Opts.Scale ? Opts.Scale : W->DefaultScale;
    return W->Build(Opts.ResolvedScale);
  }
  Opts.ResolvedScale = Opts.Scale ? Opts.Scale : 1;
  std::string Error;
  std::optional<Module> M = parseModuleFile(Opts.Program, Error);
  if (!M)
    std::cerr << "error: " << Error << "\n";
  return M;
}

void printOutput(const Machine &Mach, bool Quiet) {
  if (Quiet)
    return;
  for (int64_t V : Mach.output())
    std::cout << V << "\n";
}

int reportEnd(const RunResult &R) {
  switch (R.Status) {
  case RunStatus::Finished:
    return 0;
  case RunStatus::Trapped:
    std::cerr << "trap: " << trapName(R.Trap) << "\n";
    return 1;
  case RunStatus::BudgetExhausted:
    std::cerr << "instruction budget exhausted after " << R.Instructions
              << " instructions\n";
    return 1;
  }
  return 1;
}

const char *statusName(RunStatus S) {
  switch (S) {
  case RunStatus::Finished:
    return "finished";
  case RunStatus::Trapped:
    return "trapped";
  case RunStatus::BudgetExhausted:
    return "budget-exhausted";
  }
  return "unknown";
}

/// The `--json` document: run outcome, configuration, the full stats
/// block, and the phase time-series when sampling was on.
void writeRunJson(std::ostream &OS, const Options &Opts, const TraceVM &VM,
                  const RunResult &R, const persist::LoadReport &Loaded,
                  const btrace::BtraceFileCapture *Capture) {
  JsonWriter W(OS);
  W.beginObject();
  W.field("program", Opts.Program);
  W.field("status", statusName(R.Status));
  W.key("config")
      .beginObject()
      .fieldReal("threshold", Opts.Threshold)
      .fieldUInt("delay", Opts.Delay)
      .fieldUInt("decay", Opts.Decay)
      .fieldBool("traces", !Opts.NoTraces)
      .fieldBool("profiling", !Opts.NoProfile)
      // Requested knob and the tier actually executing (Auto resolved).
      .field("backend", backend::backendKindName(VM.options().backend()))
      .field("backend_tier", VM.traceBackend().name())
      .endObject();
  if (!Opts.LoadProfile.empty()) {
    W.key("profile")
        .beginObject()
        .fieldUInt("nodes", Loaded.Nodes)
        .fieldUInt("traces", Loaded.Traces)
        .fieldUInt("dropped_by_completion", Loaded.TracesDroppedByCompletion)
        .fieldUInt("donor_blocks", Loaded.DonorBlocks)
        .endObject();
  }
  if (Capture) {
    const btrace::EncoderStats &ES = Capture->encoderStats();
    W.key("btrace")
        .beginObject()
        .field("path", Capture->path())
        .fieldUInt("bytes", ES.BytesWritten)
        .fieldUInt("blocks", ES.Blocks)
        .fieldReal("bytes_per_block",
                   ES.Blocks ? static_cast<double>(ES.BytesWritten) /
                                   static_cast<double>(ES.Blocks)
                             : 0.0)
        .fieldUInt("tnt_packets", ES.TntPackets)
        .fieldUInt("tip_packets", ES.TipPackets)
        .fieldUInt("sync_packets", ES.SyncPackets)
        .fieldBool("dropped", ES.Dropped)
        .endObject();
  }
  // The validation verdict breakdown: how many constructed/seeded traces
  // the translation validator checked, and the rejections by typed
  // reason. Omitted entirely with --validate=off (nothing ran).
  if (VM.options().validate() != ValidateMode::Off) {
    const TraceCache::CacheStats &CS = VM.traceCache().stats();
    W.key("validation")
        .beginObject()
        .field("mode", validateModeName(VM.options().validate()))
        .fieldUInt("checked", CS.TracesValidated)
        .fieldUInt("accepted", CS.TracesValidated - CS.ValidationRejects)
        .fieldUInt("rejected", CS.ValidationRejects);
    W.key("rejected_by_reason").beginObject();
    for (const auto &[Code, Count] : CS.RejectsByReason)
      W.fieldUInt(
          validate::reasonName(static_cast<validate::Reason>(Code)), Count);
    W.endObject();
    W.endObject();
  }
  W.key("stats").beginObject();
  VM.stats().writeJsonFields(W);
  W.endObject();
  if (!VM.sampler().empty()) {
    W.key("phases").beginArray();
    for (const PhaseSample<VmStats> &S : VM.sampler().samples()) {
      W.beginObject().fieldUInt("clock", S.Clock);
      W.key("delta").beginObject();
      S.Delta.writeJsonFields(W);
      W.endObject();
      W.key("cumulative").beginObject();
      S.Cumulative.writeJsonFields(W);
      W.endObject().endObject();
    }
    W.endArray();
  }
  W.endObject();
  OS << "\n";
}

/// Opens \p Path and writes with \p Fn; reports and fails on I/O errors.
template <typename Fn>
bool writeFileOr(const std::string &Path, Fn &&Write) {
  std::ofstream OS(Path);
  if (!OS) {
    std::cerr << "cannot open '" << Path << "' for writing\n";
    return false;
  }
  Write(OS);
  return true;
}

/// Reports a typed failure: one qualified line on stderr, and with --json
/// the repo-uniform error document ({"error": {"category", "code",
/// "detail"}}) shared by the persist, validate and backend taxonomies.
int failTyped(const Options &Opts, const char *Context, const TypedError &E) {
  std::cerr << Context << ": " << E.qualifiedMessage() << "\n";
  if (Opts.Json) {
    auto WriteErr = [&](std::ostream &OS) {
      JsonWriter W(OS);
      W.beginObject().field("context", Context);
      W.key("error").beginObject();
      E.writeJsonFields(W);
      W.endObject().endObject();
      OS << "\n";
    };
    if (Opts.JsonOut.empty())
      WriteErr(std::cout);
    else
      writeFileOr(Opts.JsonOut, WriteErr);
  }
  return 1;
}

/// `jtcvm run --replay=<f>`: replay a captured .btc stream against the
/// program instead of executing it, and verify the recorded digest.
int cmdReplay(const Options &Opts, const Module &M) {
  std::ifstream In(Opts.Replay, std::ios::binary);
  if (!In) {
    std::cerr << "cannot open btrace stream '" << Opts.Replay << "'\n";
    return 1;
  }
  std::vector<uint8_t> Data((std::istreambuf_iterator<char>(In)),
                            std::istreambuf_iterator<char>());
  PreparedModule PM(M);
  btrace::ReplayResult RR;
  persist::PersistError Err;
  if (!btrace::replayBtrace(Data.data(), Data.size(), PM, RR, Err))
    return failTyped(Opts, "replay failed", Err.typed());
  if (Opts.Stats)
    RR.Stats.print(std::cerr);
  std::cerr << "replayed " << RR.BlocksWalked << " blocks ("
            << statusName(RR.End.Status) << "); stats digest "
            << (RR.DigestMatch ? "matches" : "MISMATCH") << "\n";
  return RR.DigestMatch ? 0 : 1;
}

int cmdRun(const Options &Opts, const Module &M) {
  std::vector<VerifyError> Errors = verifyModule(M);
  if (!Errors.empty()) {
    std::cerr << "verification failed:\n" << formatErrors(Errors);
    return 1;
  }
  if (!Opts.Replay.empty())
    return cmdReplay(Opts, M);
  if (Opts.wantsTelemetry() && !TelemetryCompiledIn) {
    std::cerr << "telemetry options require a build with -DJTC_TELEMETRY=ON\n";
    return 2;
  }
  PreparedModule PM(M);
  TraceVM VM(PM, VmOptions()
                     .completionThreshold(Opts.Threshold)
                     .startStateDelay(Opts.Delay)
                     .decayInterval(Opts.Decay)
                     .maxInstructions(Opts.MaxInstructions)
                     .traces(!Opts.NoTraces)
                     .profiling(!Opts.NoProfile)
                     .telemetry(Opts.wantsTelemetry())
                     .telemetryCapacity(Opts.TelemetryCap)
                     .sampleInterval(Opts.SampleInterval)
                     .loadProfilePath(Opts.LoadProfile)
                     .saveProfilePath(Opts.SaveProfile)
                     .btraceSyncInterval(Opts.BtraceSyncInterval)
                     .validate(Opts.Validate)
                     .memElide(Opts.MemElide)
                     .backend(Opts.Backend));
  persist::LoadReport Loaded;
  persist::PersistError PErr;
  if (!persist::applyProfileOptions(VM, Loaded, PErr))
    return failTyped(Opts, "cannot load profile", PErr.typed());
  if (!Opts.LoadProfile.empty() && !Opts.Quiet)
    std::cerr << "profile loaded: " << Loaded.Nodes << " nodes, "
              << Loaded.Traces << " traces ("
              << Loaded.TracesDroppedByCompletion
              << " dropped by completion history)\n";
  std::unique_ptr<btrace::BtraceFileCapture> Capture;
  if (!Opts.BtraceOut.empty()) {
    Capture = btrace::BtraceFileCapture::start(VM, Opts.BtraceOut,
                                               Opts.Program,
                                               Opts.ResolvedScale, PErr);
    if (!Capture)
      return failTyped(Opts, "cannot capture btrace", PErr.typed());
  }
  RunResult R = VM.run();
  if (Capture && !Capture->finish(PErr))
    return failTyped(Opts, "btrace capture failed", PErr.typed());
  if (!persist::finishProfileOptions(VM, PErr))
    return failTyped(Opts, "cannot save profile", PErr.typed());
  // --json to stdout owns the stream: program output is suppressed there
  // so the document stays parseable.
  bool JsonToStdout = Opts.Json && Opts.JsonOut.empty();
  printOutput(VM.machine(), Opts.Quiet || JsonToStdout);
  if (Opts.DumpTraces)
    VM.traceCache().dump(std::cerr);
  if (Opts.DumpGraph)
    VM.graph().dump(std::cerr);
  if (Opts.Stats)
    VM.stats().print(std::cerr);
  if (Capture && !Opts.Quiet) {
    const btrace::EncoderStats &ES = Capture->encoderStats();
    std::cerr << "btrace: " << ES.BytesWritten << " bytes for " << ES.Blocks
              << " blocks -> " << Opts.BtraceOut << "\n";
  }
  if (Opts.Json) {
    if (JsonToStdout)
      writeRunJson(std::cout, Opts, VM, R, Loaded, Capture.get());
    else if (!writeFileOr(Opts.JsonOut, [&](std::ostream &OS) {
               writeRunJson(OS, Opts, VM, R, Loaded, Capture.get());
             }))
      return 1;
  }
  if (!Opts.TraceOut.empty() &&
      !writeFileOr(Opts.TraceOut, [&](std::ostream &OS) {
        writeChromeTrace(OS, VM.events(), VM.sampler());
      }))
    return 1;
  if (!Opts.EventsOut.empty() &&
      !writeFileOr(Opts.EventsOut, [&](std::ostream &OS) {
        writeEventsJsonl(OS, VM.events());
      }))
    return 1;
  return reportEnd(R);
}

int cmdInterp(const Options &Opts, const Module &M) {
  std::vector<VerifyError> Errors = verifyModule(M);
  if (!Errors.empty()) {
    std::cerr << "verification failed:\n" << formatErrors(Errors);
    return 1;
  }
  Machine Mach(M);
  RunResult R = runInstructions(Mach, Opts.MaxInstructions);
  printOutput(Mach, Opts.Quiet);
  if (Opts.Stats)
    std::cerr << "instructions: " << R.Instructions
              << "\ndispatches:   " << R.Dispatches << "\n";
  return reportEnd(R);
}

/// jtcvm --merge-profiles <out.jtcp> <in.jtcp>... -- the CLI face of the
/// fleet aggregation tier's snapshot merge.
int cmdMergeProfiles(int Argc, char **Argv) {
  if (Argc < 4) {
    std::cerr << "usage: jtcvm --merge-profiles <out.jtcp> <in.jtcp>...\n";
    return 2;
  }
  std::string OutPath = Argv[2];
  std::vector<std::string> InPaths(Argv + 3, Argv + Argc);
  persist::MergeReport Report;
  persist::PersistError Err;
  if (!persist::mergeSnapshotFiles(InPaths, OutPath, TraceConfig(), Report,
                                   Err)) {
    std::cerr << "merge failed: " << Err.message() << "\n";
    return 1;
  }
  std::cout << "merged " << Report.Inputs << " snapshots -> " << OutPath
            << ": " << Report.Nodes << " nodes, " << Report.Traces
            << " traces (" << Report.TracesDeduped << " deduped, "
            << Report.TracesDroppedByCompletion
            << " dropped by completion), epoch " << Report.Epoch << "\n";
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc > 1 && std::strcmp(Argv[1], "--merge-profiles") == 0)
    return cmdMergeProfiles(Argc, Argv);

  Options Opts;
  if (!parseOptions(Argc, Argv, Opts))
    return usage();

  std::optional<Module> M = loadProgram(Opts);
  if (!M)
    return 1;

  if (Opts.Command == "run")
    return cmdRun(Opts, *M);
  if (Opts.Command == "interp")
    return cmdInterp(Opts, *M);
  if (Opts.Command == "verify") {
    std::vector<VerifyError> Errors = verifyModule(*M);
    if (Errors.empty()) {
      std::cout << "ok: " << M->Methods.size() << " methods, "
                << M->Classes.size() << " classes verify\n";
      return 0;
    }
    std::cerr << formatErrors(Errors);
    return 1;
  }
  if (Opts.Command == "disasm") {
    disassembleModule(std::cout, *M);
    return 0;
  }
  if (Opts.Command == "emit") {
    writeModule(std::cout, *M);
    return 0;
  }
  std::cerr << "unknown command '" << Opts.Command << "'\n";
  return usage();
}
