//===- tools/jtc_replay.cpp - Deterministic branch-trace replay -----------===//
///
/// \file
/// jtc-replay <stream.btc> [options]
///
/// Re-drives a captured .btc branch-trace stream through the adaptive
/// machinery -- profiler, branch correlation graph, trace cache -- and
/// verifies that the recomputed statistics digest matches the one the
/// encoder recorded when the live run ended. A match proves the stream
/// captured everything the adaptive pipeline depended on; a mismatch is
/// printed as a field-level diff of the oracle totals.
///
/// The stream records its own program spec and workload scale, so the
/// bare form `jtc-replay t.btc` just works for workload captures;
/// --program overrides the spec when the capture came from a .jasm file
/// that has since moved.
///
/// Options:
///   --program=<spec>  module to replay over (default: embedded spec)
///   --scale=<n>       workload scale override (default: embedded)
///   --stats           print the full replayed statistics block
///   --json[=<file>]   replay outcome + stats as JSON (stdout default)
///   --sync-points     list the stream's CRC-valid sync points
///   --recover         loss-tolerant: walk the tail of a damaged stream
///                     from its last intact sync point
///   --quiet           suppress the human-readable summary
///
/// Exit status: 0 when the replay digest matches the recorded one (or
/// --recover salvaged something), 1 otherwise, 2 on usage errors.
///
//===----------------------------------------------------------------------===//

#include "btrace/BtraceDecoder.h"
#include "btrace/BtraceReplay.h"
#include "bytecode/Verifier.h"
#include "support/ArgParse.h"
#include "support/Json.h"
#include "support/TypedError.h"
#include "text/AsmParser.h"
#include "interp/PreparedModule.h"
#include "workloads/Workloads.h"

#include <fstream>
#include <iostream>
#include <iterator>
#include <optional>
#include <string>
#include <vector>

using namespace jtc;

namespace {

struct Options {
  std::string StreamPath;
  std::string Program; ///< Override; empty = use the embedded spec.
  uint32_t Scale = 0;  ///< Override; 0 = use the embedded scale.
  bool Stats = false;
  bool Json = false;
  std::string JsonOut; ///< Empty with Json=true means stdout.
  bool SyncPoints = false;
  bool Recover = false;
  bool Quiet = false;
};

int usage() {
  std::cerr << "usage: jtc-replay <stream.btc> [options]\n"
               "  options: --program=SPEC --scale=N --stats --json[=FILE]\n"
               "           --sync-points --recover --quiet\n"
               "  SPEC is a .jasm file or workload:<name>; by default the\n"
               "  spec and scale embedded in the stream are used.\n";
  return 2;
}

bool parseOptions(int Argc, char **Argv, Options &Opts) {
  std::vector<std::string> Positional;
  ArgParser P;
  P.strOpt("program", &Opts.Program)
      .u32Opt("scale", &Opts.Scale)
      .flag("stats", &Opts.Stats)
      .custom("json",
              [&Opts](const std::string &V) {
                Opts.Json = true;
                Opts.JsonOut = V;
                return true;
              })
      .flag("sync-points", &Opts.SyncPoints)
      .flag("recover", &Opts.Recover)
      .flag("quiet", &Opts.Quiet)
      .positionals(&Positional);
  if (!P.parse(Argc, Argv, 1))
    return false;
  if (Positional.size() != 1) {
    std::cerr << "expected exactly one <stream.btc> argument\n";
    return false;
  }
  Opts.StreamPath = Positional.front();
  return true;
}

/// Loads and verifies the module named by \p Spec ("workload:<name>" or
/// a .jasm path), at \p Scale for workloads.
std::optional<Module> loadModule(const std::string &Spec, uint32_t Scale) {
  std::optional<Module> M;
  if (Spec.rfind("workload:", 0) == 0) {
    std::string Name = Spec.substr(9);
    const WorkloadInfo *W = findWorkload(Name);
    if (!W) {
      std::cerr << "unknown workload '" << Name << "'\n";
      return std::nullopt;
    }
    M = W->Build(Scale ? Scale : W->DefaultScale);
  } else {
    std::string Error;
    M = parseModuleFile(Spec, Error);
    if (!M) {
      std::cerr << "error: " << Error << "\n";
      return std::nullopt;
    }
  }
  std::vector<VerifyError> Errors = verifyModule(*M);
  if (!Errors.empty()) {
    std::cerr << "verification failed:\n" << formatErrors(Errors);
    return std::nullopt;
  }
  return M;
}

const char *statusName(RunStatus S) {
  switch (S) {
  case RunStatus::Finished:
    return "finished";
  case RunStatus::Trapped:
    return "trapped";
  case RunStatus::BudgetExhausted:
    return "budget-exhausted";
  }
  return "unknown";
}

/// Reports a typed failure: one qualified line on stderr, and with --json
/// the repo-uniform error document ({"error": {"category", "code",
/// "detail"}}) so machine consumers parse every taxonomy the same way.
int failTyped(const Options &Opts, const char *Context, const TypedError &E) {
  std::cerr << Context << ": " << E.qualifiedMessage() << "\n";
  if (Opts.Json) {
    auto WriteErr = [&](std::ostream &OS) {
      JsonWriter W(OS);
      W.beginObject().field("context", Context);
      W.key("error").beginObject();
      E.writeJsonFields(W);
      W.endObject().endObject();
      OS << "\n";
    };
    if (Opts.JsonOut.empty()) {
      WriteErr(std::cout);
    } else {
      std::ofstream OS(Opts.JsonOut);
      if (OS)
        WriteErr(OS);
    }
  }
  return 1;
}

void writeReplayJson(std::ostream &OS, const Options &Opts,
                     const btrace::ReplayResult &RR) {
  JsonWriter W(OS);
  W.beginObject();
  W.field("stream", Opts.StreamPath);
  W.field("program", Opts.Program.empty() ? RR.Header.Spec : Opts.Program);
  W.fieldUInt("scale", Opts.Scale ? Opts.Scale : RR.Header.Scale);
  W.field("status", statusName(RR.End.Status));
  if (RR.End.Status == RunStatus::Trapped)
    W.field("trap", trapName(RR.End.Trap));
  W.fieldUInt("blocks", RR.BlocksWalked);
  W.fieldUInt("instructions", RR.End.Instructions);
  W.fieldBool("digest_match", RR.DigestMatch);
  W.fieldUInt("recorded_digest", RR.End.StatsDigest);
  W.fieldUInt("replay_digest", RR.ReplayDigest);
  W.fieldBool("seeded", RR.Header.hasSeed());
  W.fieldUInt("seed_nodes", RR.SeedNodes);
  W.fieldUInt("seed_traces", RR.SeedTraces);
  W.key("stats").beginObject();
  RR.Stats.writeJsonFields(W);
  W.endObject();
  W.endObject();
  OS << "\n";
}

/// `--sync-points`: list every CRC-valid sync packet. Works on damaged
/// streams; no module needed.
int cmdSyncPoints(const std::vector<uint8_t> &Data) {
  std::vector<btrace::SyncPoint> Syncs =
      btrace::scanSyncPoints(Data.data(), Data.size());
  for (const btrace::SyncPoint &S : Syncs)
    std::cout << "sync @" << S.Offset << ": blocks=" << S.BlocksExecuted
              << " cur=" << S.Cur << " depth=" << S.Stack.size() << "\n";
  std::cout << Syncs.size() << " sync point(s)\n";
  return 0;
}

/// `--recover`: loss-tolerant tail walk from the last intact sync point.
int cmdRecover(const Options &Opts, const std::vector<uint8_t> &Data,
               const PreparedModule &PM) {
  btrace::SuccessorTable ST(PM);
  btrace::TailRecovery T =
      btrace::recoverTail(Data.data(), Data.size(), PM, ST);
  if (!T.Found) {
    std::cerr << "no usable sync point in '" << Opts.StreamPath << "'\n";
    return 1;
  }
  if (!Opts.Quiet) {
    std::cerr << "recovered " << T.Blocks.size() << " block(s) from sync @"
              << T.From.Offset << " (blocks=" << T.From.BlocksExecuted
              << ", cur=" << T.From.Cur << ")\n";
    if (T.SawEnd)
      std::cerr << "stream END intact: " << statusName(T.End.Status) << ", "
                << T.End.BlocksExecuted << " blocks, " << T.End.Instructions
                << " instructions\n";
    else
      std::cerr << "stream END missing or damaged (torn capture)\n";
  }
  for (BlockId B : T.Blocks)
    std::cout << B << "\n";
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opts;
  if (!parseOptions(Argc, Argv, Opts))
    return usage();

  std::ifstream In(Opts.StreamPath, std::ios::binary);
  if (!In) {
    std::cerr << "cannot open btrace stream '" << Opts.StreamPath << "'\n";
    return 1;
  }
  std::vector<uint8_t> Data((std::istreambuf_iterator<char>(In)),
                            std::istreambuf_iterator<char>());
  In.close();

  if (Opts.SyncPoints)
    return cmdSyncPoints(Data);

  // Resolve the module: the header's embedded spec/scale unless
  // overridden on the command line.
  btrace::BtraceHeader H;
  size_t HeaderSize = 0;
  persist::PersistError Err;
  if (!btrace::decodeHeader(Data.data(), Data.size(), H, HeaderSize, Err))
    return failTyped(Opts, "bad btrace stream", Err.typed());
  std::string Spec = Opts.Program.empty() ? H.Spec : Opts.Program;
  if (Spec.empty()) {
    std::cerr << "stream has no embedded program spec; pass --program=\n";
    return 1;
  }
  std::optional<Module> M =
      loadModule(Spec, Opts.Scale ? Opts.Scale : H.Scale);
  if (!M)
    return 1;
  PreparedModule PM(*M);

  if (Opts.Recover)
    return cmdRecover(Opts, Data, PM);

  btrace::ReplayResult RR;
  if (!btrace::replayBtrace(Data.data(), Data.size(), PM, RR, Err))
    return failTyped(Opts, "replay failed", Err.typed());

  if (Opts.Stats)
    RR.Stats.print(std::cerr);
  if (!Opts.Quiet) {
    std::cerr << "stream: " << Spec << " scale "
              << (Opts.Scale ? Opts.Scale : RR.Header.Scale);
    if (RR.Header.hasSeed())
      std::cerr << ", seeded (" << RR.SeedNodes << " nodes, "
                << RR.SeedTraces << " traces)";
    std::cerr << "\nreplayed " << RR.BlocksWalked << " blocks ("
              << statusName(RR.End.Status);
    if (RR.End.Status == RunStatus::Trapped)
      std::cerr << ": " << trapName(RR.End.Trap);
    std::cerr << "), " << RR.End.Instructions << " instructions\n";
    if (RR.DigestMatch) {
      std::cerr << "stats digest match: 0x" << std::hex << RR.ReplayDigest
                << std::dec << "\n";
    } else {
      std::cerr << "stats digest MISMATCH: recorded 0x" << std::hex
                << RR.End.StatsDigest << ", replayed 0x" << RR.ReplayDigest
                << std::dec << "\n"
                << "  recorded blocks=" << RR.End.BlocksExecuted
                << " instructions=" << RR.End.Instructions << "\n"
                << "  replayed blocks=" << RR.Stats.BlocksExecuted
                << " instructions=" << RR.Stats.Instructions << "\n";
    }
  }
  if (Opts.Json) {
    if (Opts.JsonOut.empty()) {
      writeReplayJson(std::cout, Opts, RR);
    } else {
      std::ofstream OS(Opts.JsonOut);
      if (!OS) {
        std::cerr << "cannot open '" << Opts.JsonOut << "' for writing\n";
        return 1;
      }
      writeReplayJson(OS, Opts, RR);
    }
  }
  return RR.DigestMatch ? 0 : 1;
}
