//===- tools/jtc_fuzz.cpp - Differential fuzzing driver -------------------===//
///
/// The command-line front end for the differential fuzzing subsystem:
///
///   jtc-fuzz run [options]            run a fuzzing campaign
///   jtc-fuzz replay <file>... [options]  re-run the oracle on .jasm cases
///   jtc-fuzz gen [options]            emit one generated program as .jasm
///                                     (how the tests/corpus files are made)
///
/// Options:
///   --seed=<n|ci>        campaign seed; "ci" is a fixed well-known seed
///   --iterations=<n>     programs to generate            (default 1000)
///   --time=<seconds>     wall-clock bound (0 = none)
///   --max-failures=<n>   stop after n failures (0 = never; default 1)
///   --max-instr=<n>      per-engine instruction budget
///   --no-minimize        keep failing programs unreduced
///   --no-traps           generate total programs only
///   --no-net             skip the NET baseline engine
///   --no-threaded        skip the direct-threaded engine
///   --inject=<fault>     deliberately break the trace cache and expect
///                        the oracle to notice: skip-invalidation or
///                        skip-retirement (self-test mode)
///   --validate=<mode>    trace validation in the grid VMs: off, on
///                        (default) or strict (abort on any rejection)
///   --no-validate-audit  skip the offline validator-vs-oracle audit
///   --no-backend-audit   skip the interp-vs-jit backend equivalence
///                        re-run of every grid point
///   --repro-dir=<dir>    write failing cases as .jasm reproducers
///   --json[=<file>]      campaign report as JSON (stdout if no file)
///   --features=<csv>     (gen) enable only the listed statement features:
///                        loops,calls,switches,virtual,fields,arrays,traps
///   --out=<file>         (gen) output path (stdout if omitted)
///   --comment=<text>     (gen) first-line "; <text>" header comment
///
/// Exit status: 0 clean, 1 failures found (or, under --inject, no
/// failure found), 2 usage error.
///
//===----------------------------------------------------------------------===//

#include "bytecode/Verifier.h"
#include "fuzz/Fuzzer.h"
#include "support/ArgParse.h"
#include "support/Json.h"
#include "text/AsmWriter.h"

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

using namespace jtc;
using namespace jtc::fuzz;

namespace {

/// The well-known seed CI smoke runs use, so failures seen in CI
/// reproduce locally with --seed=ci.
constexpr uint64_t CiSeed = 0x6A7463; // "jtc"

struct ToolOptions {
  std::string Command;
  std::vector<std::string> Files;
  FuzzOptions Fuzz;
  bool Json = false;
  std::string JsonOut;
  bool Inject = false;
  std::string GenOut;
  std::string GenComment;
};

int usage() {
  std::cerr
      << "usage: jtc-fuzz <run|replay> [files...] [options]\n"
         "  run options: --seed=N|ci --iterations=N --time=SECONDS\n"
         "               --max-failures=N --max-instr=N --no-minimize\n"
         "               --no-traps --no-net --no-threaded --no-refinement\n"
         "               --no-persist-audit --no-btrace-audit\n"
         "               --validate=off|on|strict --no-validate-audit\n"
         "               --no-backend-audit\n"
         "               --inject=skip-invalidation|skip-retirement\n"
         "               --repro-dir=DIR --json[=FILE]\n"
         "  replay options: --max-instr=N --no-net --no-threaded\n"
         "  gen options: --seed=N --features=loops,calls,switches,virtual,\n"
         "               fields,arrays,traps --out=FILE --comment=TEXT\n";
  return 2;
}

bool parseOptions(int Argc, char **Argv, ToolOptions &Opts) {
  if (Argc < 2)
    return false;
  Opts.Command = Argv[1];
  // Traps are part of normal fuzzing coverage; tests that need total
  // programs opt out with --no-traps.
  Opts.Fuzz.Gen.Features.Traps = true;
  bool NoMinimize = false, NoTraps = false, NoNet = false, NoThreaded = false;
  bool NoRefinement = false, NoPersistAudit = false, NoBtraceAudit = false;
  bool NoValidateAudit = false, NoBackendAudit = false;
  ArgParser P;
  P.positionals(&Opts.Files)
      .custom(
          "seed",
          [&Opts](const std::string &V) {
            Opts.Fuzz.Seed =
                V == "ci" ? CiSeed
                          : static_cast<uint64_t>(std::atoll(V.c_str()));
            return true;
          },
          /*ValueRequired=*/true)
      .uintOpt("iterations", &Opts.Fuzz.Iterations)
      .realOpt("time", &Opts.Fuzz.TimeLimitSeconds)
      .custom(
          "max-failures",
          [&Opts](const std::string &V) {
            Opts.Fuzz.MaxFailures =
                static_cast<unsigned>(std::atoi(V.c_str()));
            return true;
          },
          /*ValueRequired=*/true)
      .uintOpt("max-instr", &Opts.Fuzz.Oracle.MaxInstructions)
      .flag("no-minimize", &NoMinimize)
      .flag("no-traps", &NoTraps)
      .flag("no-net", &NoNet)
      .flag("no-threaded", &NoThreaded)
      .flag("no-refinement", &NoRefinement)
      .flag("no-persist-audit", &NoPersistAudit)
      .flag("no-btrace-audit", &NoBtraceAudit)
      .flag("no-validate-audit", &NoValidateAudit)
      .flag("no-backend-audit", &NoBackendAudit)
      .choice("validate",
              {{"off", ValidateMode::Off},
               {"on", ValidateMode::On},
               {"strict", ValidateMode::Strict}},
              &Opts.Fuzz.Oracle.Validate)
      .custom(
          "inject",
          [&Opts](const std::string &F) {
            if (F == "skip-invalidation")
              Opts.Fuzz.Oracle.Fault = CacheFault::SkipInvalidation;
            else if (F == "skip-retirement")
              Opts.Fuzz.Oracle.Fault = CacheFault::SkipRetirement;
            else {
              std::cerr << "unknown fault '" << F << "'\n";
              return false;
            }
            Opts.Inject = true;
            return true;
          },
          /*ValueRequired=*/true)
      .strOpt("repro-dir", &Opts.Fuzz.ReproDir)
      .custom(
          "features",
          [&Opts](const std::string &V) {
            GenFeatures F;
            F.Loops = F.Calls = F.Switches = F.VirtualCalls = F.Fields =
                F.Arrays = F.Traps = false;
            size_t Pos = 0;
            while (Pos <= V.size()) {
              size_t Comma = V.find(',', Pos);
              std::string Name = V.substr(
                  Pos, Comma == std::string::npos ? Comma : Comma - Pos);
              if (Name == "loops")
                F.Loops = true;
              else if (Name == "calls")
                F.Calls = true;
              else if (Name == "switches")
                F.Switches = true;
              else if (Name == "virtual")
                F.VirtualCalls = true;
              else if (Name == "fields")
                F.Fields = true;
              else if (Name == "arrays")
                F.Arrays = true;
              else if (Name == "traps")
                F.Traps = true;
              else {
                std::cerr << "unknown feature '" << Name << "'\n";
                return false;
              }
              if (Comma == std::string::npos)
                break;
              Pos = Comma + 1;
            }
            Opts.Fuzz.Gen.Features = F;
            return true;
          },
          /*ValueRequired=*/true)
      .strOpt("out", &Opts.GenOut)
      .strOpt("comment", &Opts.GenComment)
      .custom("json", [&Opts](const std::string &V) {
        Opts.Json = true;
        Opts.JsonOut = V;
        return true;
      });
  if (!P.parse(Argc, Argv, 2))
    return false;
  if (NoMinimize)
    Opts.Fuzz.Minimize = false;
  if (NoTraps)
    Opts.Fuzz.Gen.Features.Traps = false;
  if (NoNet)
    Opts.Fuzz.Oracle.IncludeNet = false;
  if (NoThreaded)
    Opts.Fuzz.Oracle.IncludeThreaded = false;
  if (NoRefinement)
    Opts.Fuzz.Oracle.CheckRefinement = false;
  if (NoPersistAudit)
    Opts.Fuzz.Oracle.CheckPersist = false;
  if (NoBtraceAudit)
    Opts.Fuzz.Oracle.CheckBtrace = false;
  if (NoValidateAudit)
    Opts.Fuzz.Oracle.CheckValidate = false;
  if (NoBackendAudit)
    Opts.Fuzz.Oracle.CheckBackends = false;
  return true;
}

void writeFindings(JsonWriter &W, const std::vector<OracleFinding> &Fs) {
  W.beginArray();
  for (const OracleFinding &F : Fs)
    W.beginObject()
        .field("engine", F.Engine)
        .field("rule", F.Rule)
        .field("detail", F.Detail)
        .endObject();
  W.endArray();
}

void writeReportJson(std::ostream &OS, const ToolOptions &Opts,
                     const FuzzReport &R) {
  JsonWriter W(OS);
  W.beginObject();
  W.fieldUInt("seed", Opts.Fuzz.Seed);
  W.fieldUInt("iterations", R.Iterations);
  W.fieldUInt("clean", R.CleanRuns);
  W.fieldUInt("skipped", R.SkippedRuns);
  W.fieldBool("ok", R.ok());
  W.fieldReal("seconds", R.Seconds);
  W.key("coverage").beginObject();
  for (unsigned I = 0; I < NumStmtKinds; ++I)
    W.fieldUInt(stmtKindName(static_cast<StmtKind>(I)), R.Coverage.Counts[I]);
  W.endObject();
  W.key("failures").beginArray();
  for (const FuzzFailure &F : R.Failures) {
    W.beginObject()
        .fieldUInt("seed", F.Seed)
        .fieldUInt("iteration", F.Iteration);
    if (!F.ReproPath.empty())
      W.field("repro", F.ReproPath);
    W.key("findings");
    writeFindings(W, F.Findings);
    W.endObject();
  }
  W.endArray();
  W.endObject();
  OS << "\n";
}

int cmdRun(const ToolOptions &Opts) {
  FuzzReport R = runFuzzer(Opts.Fuzz);

  bool JsonToStdout = Opts.Json && Opts.JsonOut.empty();
  if (!JsonToStdout) {
    std::cerr << "jtc-fuzz: " << R.Iterations << " iterations, "
              << R.CleanRuns << " clean, " << R.SkippedRuns << " skipped, "
              << R.Failures.size() << " failing in " << R.Seconds << "s\n";
    for (const FuzzFailure &F : R.Failures) {
      std::cerr << "failure at iteration " << F.Iteration << " (seed "
                << F.Seed << ")";
      if (!F.ReproPath.empty())
        std::cerr << ", reproducer " << F.ReproPath;
      std::cerr << ":\n" << formatFindings(F.Findings);
    }
  }
  if (Opts.Json) {
    if (JsonToStdout) {
      writeReportJson(std::cout, Opts, R);
    } else {
      std::ofstream OS(Opts.JsonOut);
      if (!OS) {
        std::cerr << "cannot open '" << Opts.JsonOut << "' for writing\n";
        return 1;
      }
      writeReportJson(OS, Opts, R);
    }
  }

  // Self-test mode inverts the verdict: the injected bug MUST be caught.
  if (Opts.Inject) {
    if (R.ok()) {
      std::cerr << "jtc-fuzz: injected fault was NOT detected\n";
      return 1;
    }
    std::cerr << "jtc-fuzz: injected fault detected as expected\n";
    return 0;
  }
  return R.ok() ? 0 : 1;
}

int cmdReplay(const ToolOptions &Opts) {
  if (Opts.Files.empty()) {
    std::cerr << "replay requires at least one .jasm file\n";
    return 2;
  }
  int Failures = 0;
  for (const std::string &Path : Opts.Files) {
    OracleResult R = replayFile(Path, Opts.Fuzz.Oracle);
    if (R.Ok) {
      std::cout << Path << ": " << (R.Skipped ? "skipped" : "ok") << "\n";
    } else {
      ++Failures;
      std::cout << Path << ": FAIL\n" << formatFindings(R.Findings);
    }
  }
  return Failures == 0 ? 0 : 1;
}

/// Emits one generated program as textual assembly. This is the
/// reproducible path the checked-in tests/corpus files come from: the
/// header comment records seed and intent, and the module is verified
/// (including the typed pass) before it is written.
int cmdGen(const ToolOptions &Opts) {
  RandomProgramBuilder Gen(Opts.Fuzz.Seed, Opts.Fuzz.Gen);
  Module M = Gen.build();
  std::vector<VerifyError> Errors = verifyModule(M);
  if (!Errors.empty()) {
    std::cerr << "jtc-fuzz gen: generated module fails verification:\n"
              << formatErrors(Errors);
    return 1;
  }
  std::ofstream File;
  std::ostream *OS = &std::cout;
  if (!Opts.GenOut.empty()) {
    File.open(Opts.GenOut);
    if (!File) {
      std::cerr << "cannot open '" << Opts.GenOut << "' for writing\n";
      return 1;
    }
    OS = &File;
  }
  if (!Opts.GenComment.empty())
    *OS << "; " << Opts.GenComment << "\n\n";
  writeModule(*OS, M);
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  ToolOptions Opts;
  if (!parseOptions(Argc, Argv, Opts))
    return usage();
  if (Opts.Command == "run")
    return cmdRun(Opts);
  if (Opts.Command == "replay")
    return cmdReplay(Opts);
  if (Opts.Command == "gen")
    return cmdGen(Opts);
  std::cerr << "unknown command '" << Opts.Command << "'\n";
  return usage();
}
