#!/usr/bin/env bash
# Runs every table benchmark and collects the machine-readable artifacts
# as BENCH_table*.json in the output directory.
#
# usage: tools/bench_to_json.sh [build-dir] [out-dir]
#   build-dir  where the bench binaries live (default: build)
#   out-dir    where to write BENCH_*.json   (default: .)
set -euo pipefail

BUILD_DIR=${1:-build}
OUT_DIR=${2:-.}

if [ ! -d "$BUILD_DIR/bench" ]; then
  echo "error: '$BUILD_DIR/bench' not found; build the project first:" >&2
  echo "  cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j" >&2
  exit 1
fi

mkdir -p "$OUT_DIR"

TABLES="table1_trace_length table2_coverage table3_completion_rate \
table4_signal_rate table5_event_interval table6_profiler_overhead \
table7_trace_dispatch_overhead"

for TABLE in $TABLES; do
  BIN="$BUILD_DIR/bench/$TABLE"
  if [ ! -x "$BIN" ]; then
    echo "skipping $TABLE (binary not built)" >&2
    continue
  fi
  # Short names: table1_trace_length -> BENCH_table1.json.
  SHORT=$(echo "$TABLE" | sed 's/^\(table[0-9]*\)_.*/\1/')
  OUT="$OUT_DIR/BENCH_$SHORT.json"
  echo "== $TABLE -> $OUT" >&2
  "$BIN" --json="$OUT"
done
