//===- tools/jtc_serve.cpp - Multi-session serving driver -----------------===//
///
/// Command-line front end for the VmService: registers built-in workloads,
/// submits a batch of run requests across a worker pool, and reports
/// service-level statistics -- requests/sec, warm vs cold session counts,
/// per-module snapshot state and the fleet-wide VmStats aggregate.
///
///   jtc-serve [options]
///     --workers=<n>        worker thread count            (default 4)
///     --requests=<n>       requests to submit             (default 64)
///     --workload=<names>   comma list of workloads, or "all"
///                          (default compress)
///     --scale=<n>          workload scale override        (default builtin)
///     --threshold=<0..1>   trace completion threshold     (default 0.97)
///     --delay=<n>          start-state delay              (default 64)
///     --decay=<n>          decay interval                 (default 256)
///     --max-instr=<n>      per-session instruction budget
///     --snapshot-min-blocks=<n>  donor maturity bar       (default 1024)
///     --save-profile=<dir> checkpoint published snapshots to
///                          <dir>/<module>.jtcp on drain/shutdown
///     --load-profile=<dir> pre-publish <dir>/<module>.jtcp at register
///                          (cross-process warm start)
///     --checkpoint-interval=<s>  also checkpoint every s seconds
///     --btrace-dir=<dir>   capture every session as a replayable
///                          <dir>/<module>-<seq>.btc branch trace
///     --btrace-sync-interval=<n>  blocks between .btc sync packets
///                          (default 4096)
///     --btrace-keep=<n>    keep at most n streams per module (default 4,
///                          0 = keep everything)
///     --validate=<mode>    trace translation validation: off, on
///                          (default) or strict (abort on rejection)
///     --backend=<tier>     trace-execution backend for every session:
///                          interp (default), jit or auto
///     --no-warm            disable trace-cache warm handoff
///     --no-traces          profile only, no trace dispatch
///     --no-profile         plain block interpreter sessions
///     --stats              print the aggregate statistics block
///     --json[=<file>]      service stats as JSON (stdout if no file)
///
//===----------------------------------------------------------------------===//

#include "server/VmService.h"
#include "support/ArgParse.h"
#include "support/Json.h"

#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

using namespace jtc;

namespace {

struct Options {
  uint32_t Workers = 4;
  uint32_t Requests = 64;
  std::string Workloads = "compress";
  uint32_t Scale = 0;
  double Threshold = 0.97;
  uint32_t Delay = 64;
  uint32_t Decay = 256;
  uint64_t MaxInstructions = ~0ull;
  uint64_t SnapshotMinBlocks = 1024;
  std::string SaveProfileDir; ///< Checkpoint directory (empty = off).
  std::string LoadProfileDir; ///< Startup-load directory (empty = off).
  double CheckpointInterval = 0;
  std::string BtraceDir; ///< Per-session capture directory (empty = off).
  uint32_t BtraceSyncInterval = 4096;
  uint32_t BtraceKeep = 4;
  ValidateMode Validate = ValidateMode::On;
  backend::BackendKind Backend = defaultBackendKind();
  bool NoWarm = false;
  bool NoTraces = false;
  bool NoProfile = false;
  bool Stats = false;
  bool Json = false;
  std::string JsonOut; ///< Empty with Json=true means stdout.
};

int usage() {
  std::cerr << "usage: jtc-serve [options]\n"
               "  --workers=N --requests=N --workload=NAME[,NAME...]|all "
               "--scale=N\n"
               "  --threshold=X --delay=N --decay=N --max-instr=N\n"
               "  --snapshot-min-blocks=N --no-warm --no-traces --no-profile\n"
               "  --save-profile=DIR --load-profile=DIR "
               "--checkpoint-interval=DURATION (30s, 5m; bare = seconds)\n"
               "  --btrace-dir=DIR --btrace-sync-interval=N --btrace-keep=N\n"
               "  --validate=off|on|strict --backend=interp|jit|auto\n"
               "  --stats --json[=FILE]\n"
               "  workloads:";
  for (const WorkloadInfo &W : allWorkloads())
    std::cerr << " " << W.Name;
  std::cerr << "\n";
  return 2;
}

bool parseOptions(int Argc, char **Argv, Options &Opts) {
  ArgParser P;
  P.u32Opt("workers", &Opts.Workers)
      .u32Opt("requests", &Opts.Requests)
      .strOpt("workload", &Opts.Workloads)
      .u32Opt("scale", &Opts.Scale)
      .realOpt("threshold", &Opts.Threshold)
      .u32Opt("delay", &Opts.Delay)
      .u32Opt("decay", &Opts.Decay)
      .uintOpt("max-instr", &Opts.MaxInstructions)
      .uintOpt("snapshot-min-blocks", &Opts.SnapshotMinBlocks)
      .strOpt("save-profile", &Opts.SaveProfileDir)
      .strOpt("load-profile", &Opts.LoadProfileDir)
      .durationOpt("checkpoint-interval", &Opts.CheckpointInterval)
      .strOpt("btrace-dir", &Opts.BtraceDir)
      .u32Opt("btrace-sync-interval", &Opts.BtraceSyncInterval)
      .u32Opt("btrace-keep", &Opts.BtraceKeep)
      .choice("validate",
              {{"off", ValidateMode::Off},
               {"on", ValidateMode::On},
               {"strict", ValidateMode::Strict}},
              &Opts.Validate)
      .choice("backend",
              {{"interp", backend::BackendKind::Interp},
               {"jit", backend::BackendKind::Jit},
               {"auto", backend::BackendKind::Auto}},
              &Opts.Backend)
      .flag("no-warm", &Opts.NoWarm)
      .flag("no-traces", &Opts.NoTraces)
      .flag("no-profile", &Opts.NoProfile)
      .flag("stats", &Opts.Stats)
      .custom("json", [&Opts](const std::string &V) {
        Opts.Json = true;
        Opts.JsonOut = V;
        return true;
      });
  return P.parse(Argc, Argv);
}

/// Resolves --workload: a comma list of registry names, or "all".
bool resolveWorkloads(const std::string &Spec,
                      std::vector<const WorkloadInfo *> &Out) {
  if (Spec == "all") {
    for (const WorkloadInfo &W : allWorkloads())
      Out.push_back(&W);
    return true;
  }
  std::istringstream SS(Spec);
  std::string Name;
  while (std::getline(SS, Name, ',')) {
    const WorkloadInfo *W = findWorkload(Name);
    if (!W) {
      std::cerr << "unknown workload '" << Name << "'\n";
      return false;
    }
    Out.push_back(W);
  }
  return !Out.empty();
}

void writeServeJson(std::ostream &OS, const Options &Opts, const VmService &Svc,
                    const std::vector<const WorkloadInfo *> &Ws,
                    double WallSeconds) {
  ServiceStats S = Svc.stats();
  JsonWriter W(OS);
  W.beginObject();
  W.key("config")
      .beginObject()
      .fieldUInt("workers", Opts.Workers)
      .fieldUInt("requests", Opts.Requests)
      .fieldReal("threshold", Opts.Threshold)
      .fieldUInt("delay", Opts.Delay)
      .fieldUInt("decay", Opts.Decay)
      .fieldBool("warm_handoff", !Opts.NoWarm)
      .fieldBool("traces", !Opts.NoTraces)
      .fieldBool("profiling", !Opts.NoProfile)
      .field("validate", validateModeName(Opts.Validate))
      .field("backend", backend::backendKindName(Opts.Backend))
      .endObject();
  W.fieldReal("wall_seconds", WallSeconds);
  W.fieldReal("requests_per_second",
              WallSeconds > 0 ? static_cast<double>(S.Completed) / WallSeconds
                              : 0.0);
  W.key("service").beginObject();
  S.writeJsonFields(W);
  W.endObject();
  W.key("snapshots").beginObject();
  for (const WorkloadInfo *Info : Ws) {
    ProfileSnapshot Snap = Svc.snapshotFor(Info->Name);
    W.key(Info->Name).beginObject();
    Snap.writeJsonFields(W);
    W.endObject();
  }
  W.endObject();
  W.endObject();
  OS << "\n";
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opts;
  if (!parseOptions(Argc, Argv, Opts))
    return usage();
  std::vector<const WorkloadInfo *> Ws;
  if (!resolveWorkloads(Opts.Workloads, Ws))
    return usage();

  VmService Svc(ServiceOptions()
                    .workers(Opts.Workers)
                    .warmHandoff(!Opts.NoWarm)
                    .snapshotMinBlocks(Opts.SnapshotMinBlocks)
                    .checkpointDir(Opts.SaveProfileDir)
                    .loadDir(Opts.LoadProfileDir)
                    .checkpointIntervalSeconds(Opts.CheckpointInterval)
                    .btraceDir(Opts.BtraceDir)
                    .btraceKeepPerModule(Opts.BtraceKeep)
                    .vm(VmOptions()
                            .completionThreshold(Opts.Threshold)
                            .startStateDelay(Opts.Delay)
                            .decayInterval(Opts.Decay)
                            .maxInstructions(Opts.MaxInstructions)
                            .traces(!Opts.NoTraces)
                            .profiling(!Opts.NoProfile)
                            .btraceSyncInterval(Opts.BtraceSyncInterval)
                            .validate(Opts.Validate)
                            .backend(Opts.Backend)));
  for (const WorkloadInfo *W : Ws)
    Svc.registerWorkload(*W, Opts.Scale);

  std::vector<std::future<SessionResult>> Futures;
  Futures.reserve(Opts.Requests);
  auto T0 = std::chrono::steady_clock::now();
  for (uint32_t I = 0; I < Opts.Requests; ++I)
    Futures.push_back(Svc.submit({Ws[I % Ws.size()]->Name}));

  int Failures = 0;
  for (std::future<SessionResult> &F : Futures) {
    SessionResult R = F.get();
    if (R.Rejected || R.Run.Status != RunStatus::Finished) {
      ++Failures;
      std::cerr << "request failed: " << R.Module
                << (R.Rejected ? " (rejected)" : " (did not finish)") << "\n";
    }
  }
  auto T1 = std::chrono::steady_clock::now();
  double Wall = std::chrono::duration<double>(T1 - T0).count();

  // Every future has resolved, so this returns immediately -- but it also
  // triggers checkpoint-on-drain, so the stats below see the saved files.
  Svc.drain();

  ServiceStats S = Svc.stats();
  bool JsonToStdout = Opts.Json && Opts.JsonOut.empty();
  if (!JsonToStdout) {
    std::cout << "requests:  " << S.Completed << " completed, " << S.Rejected
              << " rejected\n"
              << "workers:   " << Svc.workers() << "\n"
              << "wall:      " << Wall << " s (" << (Wall > 0 ? static_cast<double>(S.Completed) / Wall : 0)
              << " req/s)\n"
              << "sessions:  " << S.WarmStarts << " warm, " << S.ColdStarts
              << " cold, " << S.SnapshotsPublished << " snapshots published\n";
    if (Opts.Validate != ValidateMode::Off)
      std::cout << "validation: " << S.Aggregate.TracesValidated
                << " traces checked, " << S.Aggregate.TraceValidationRejects
                << " rejected\n";
    if (!Opts.SaveProfileDir.empty() || !Opts.LoadProfileDir.empty())
      std::cout << "checkpoints: " << S.CheckpointsSaved << " saved, "
                << S.CheckpointsLoaded << " loaded, "
                << S.CheckpointLoadRejects << " rejected\n";
    if (!Opts.BtraceDir.empty())
      std::cout << "btrace:    " << S.BtraceStreams << " streams, "
                << S.BtraceBytes << " bytes, " << S.BtraceDrops
                << " dropped -> " << Opts.BtraceDir << "\n";
    for (const WorkloadInfo *Info : Ws) {
      ProfileSnapshot Snap = Svc.snapshotFor(Info->Name);
      if (!Snap.empty())
        std::cout << "snapshot:  " << Info->Name << ": " << Snap.numTraces()
                  << " traces, " << Snap.numNodes() << " nodes (donor ran "
                  << Snap.donorBlocks() << " blocks)\n";
    }
  }
  if (Opts.Stats)
    S.Aggregate.print(std::cerr);
  if (Opts.Json) {
    if (JsonToStdout) {
      writeServeJson(std::cout, Opts, Svc, Ws, Wall);
    } else {
      std::ofstream OS(Opts.JsonOut);
      if (!OS) {
        std::cerr << "cannot open '" << Opts.JsonOut << "' for writing\n";
        return 1;
      }
      writeServeJson(OS, Opts, Svc, Ws, Wall);
    }
  }
  return Failures == 0 ? 0 : 1;
}
