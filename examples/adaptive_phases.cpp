//===- examples/adaptive_phases.cpp - Decay-driven adaptation -------------===//
///
/// Demonstrates the role of exponential decay (paper section 4.1.1): a
/// program whose dominant branch direction flips between phases. The
/// decayed correlation counters favour recent behaviour, so after each
/// phase change the profiler re-signals and the trace cache rebuilds its
/// traces for the new dominant path -- watch TracesReplaced/Invalidated
/// climb with each phase while completion stays high.
///
//===----------------------------------------------------------------------===//

#include "bytecode/Assembler.h"
#include "bytecode/Verifier.h"
#include "vm/TraceVM.h"

#include <iostream>

using namespace jtc;

namespace {

/// Builds a program with \p Phases phases of \p PhaseLen iterations. In
/// even phases a branch goes almost always left; in odd phases almost
/// always right. Each side does distinct work, so the dominant trace
/// differs per phase.
Module phasedProgram(int32_t Phases, int32_t PhaseLen) {
  Assembler Asm;
  uint32_t Main = Asm.declareMethod("main", 0, 4, false);
  MethodBuilder B = Asm.beginMethod(Main);
  Label Outer = B.newLabel(), OuterEnd = B.newLabel();
  Label Inner = B.newLabel(), InnerEnd = B.newLabel();
  Label Right = B.newLabel(), Join = B.newLabel(), TakeLeft = B.newLabel();

  B.iconst(0);
  B.istore(0); // phase
  B.iconst(0);
  B.istore(2); // acc

  B.bind(Outer);
  B.iload(0);
  B.iconst(Phases);
  B.branch(Opcode::IfIcmpGe, OuterEnd);
  B.iconst(0);
  B.istore(1); // i

  B.bind(Inner);
  B.iload(1);
  B.iconst(PhaseLen);
  B.branch(Opcode::IfIcmpGe, InnerEnd);

  // Direction = phase parity, with a 1/256 exception so neither side is
  // ever perfectly unique.
  B.iload(1);
  B.iconst(255);
  B.emit(Opcode::Iand);
  B.branch(Opcode::IfEq, Right); // the rare exception path
  B.iload(0);
  B.iconst(1);
  B.emit(Opcode::Iand);
  B.branch(Opcode::IfEq, TakeLeft);
  B.branch(Opcode::Goto, Right);

  B.bind(TakeLeft); // even phases: multiply-accumulate
  B.iload(2);
  B.iconst(3);
  B.emit(Opcode::Imul);
  B.iload(1);
  B.emit(Opcode::Iadd);
  B.iconst(0xffffff);
  B.emit(Opcode::Iand);
  B.istore(2);
  B.branch(Opcode::Goto, Join);

  B.bind(Right); // odd phases: xor-shift
  B.iload(2);
  B.iload(1);
  B.emit(Opcode::Ixor);
  B.iconst(1);
  B.emit(Opcode::Ishr);
  B.istore(2);

  B.bind(Join);
  B.iinc(1, 1);
  B.branch(Opcode::Goto, Inner);

  B.bind(InnerEnd);
  B.iload(2);
  B.emit(Opcode::Iprint);
  B.iinc(0, 1);
  B.branch(Opcode::Goto, Outer);

  B.bind(OuterEnd);
  B.halt();
  B.finish();
  Asm.setEntry(Main);
  return Asm.build();
}

} // namespace

int main() {
  Module M = phasedProgram(/*Phases=*/8, /*PhaseLen=*/60000);
  if (!isValid(M)) {
    std::cerr << "internal error: program does not verify\n";
    return 1;
  }
  PreparedModule PM(M);

  std::cout << "A branch flips direction every 60000 iterations across 8 "
               "phases.\n"
            << "Decay lets the profiler follow each flip and rebuild the "
               "loop trace.\n\n";

  TraceVM VM(PM, VmOptions().completionThreshold(0.97).startStateDelay(64));
  VM.run();

  const VmStats &S = VM.stats();
  std::cout << "signals (state changes):      " << S.Signals << "\n"
            << "traces constructed:           " << S.TracesConstructed << "\n"
            << "traces replaced/invalidated:  "
            << S.TracesReplaced << " replaced, live " << S.LiveTraces << "\n"
            << "trace completion rate:        " << S.completionRate() * 100
            << "%\n"
            << "coverage (completed traces):  "
            << S.completedCoverage() * 100 << "%\n\n";

  std::cout << "Expected: roughly one burst of signals per phase change "
               "(plus warm-up),\nhigh completion throughout -- the cache "
               "tracks the program's phases instead\nof being flushed "
               "(compare Dynamo, which flushes wholesale; paper section "
               "3.6).\n\n== final traces ==\n";
  VM.traceCache().dump(std::cout);
  return 0;
}
