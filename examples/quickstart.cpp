//===- examples/quickstart.cpp - Assemble, run, inspect -------------------===//
///
/// The five-minute tour of the public API:
///
///   1. assemble a small bytecode program with jtc::Assembler,
///   2. verify it,
///   3. prepare it into basic blocks,
///   4. run it under the trace-dispatching VM,
///   5. inspect the traces found and the run statistics.
///
/// The program is a hot loop with one heavily biased branch -- the
/// smallest interesting input for the branch-correlation-graph profiler.
///
//===----------------------------------------------------------------------===//

#include "bytecode/Assembler.h"
#include "bytecode/Disassembler.h"
#include "bytecode/Verifier.h"
#include "vm/TraceVM.h"

#include <iostream>

using namespace jtc;

int main() {
  // -- 1. Assemble: sum = f(i) over 200000 iterations, where a rare
  //       (1/512) branch perturbs the accumulator.
  Assembler Asm;
  uint32_t Main = Asm.declareMethod("main", /*NumArgs=*/0, /*NumLocals=*/2,
                                    /*ReturnsValue=*/false);
  {
    MethodBuilder B = Asm.beginMethod(Main);
    Label Loop = B.newLabel(), Done = B.newLabel();
    Label Rare = B.newLabel(), Join = B.newLabel();
    B.iconst(0);
    B.istore(0); // i
    B.iconst(0);
    B.istore(1); // sum

    B.bind(Loop);
    B.iload(0);
    B.iconst(200000);
    B.branch(Opcode::IfIcmpGe, Done);

    B.iload(0);
    B.iconst(511);
    B.emit(Opcode::Iand);
    B.branch(Opcode::IfEq, Rare); // taken once every 512 iterations
    B.iload(1);
    B.iload(0);
    B.emit(Opcode::Iadd);
    B.iconst(0xffffff);
    B.emit(Opcode::Iand);
    B.istore(1);
    B.branch(Opcode::Goto, Join);
    B.bind(Rare);
    B.iload(1);
    B.iconst(1);
    B.emit(Opcode::Ishr);
    B.istore(1);
    B.bind(Join);
    B.iinc(0, 1);
    B.branch(Opcode::Goto, Loop);

    B.bind(Done);
    B.iload(1);
    B.emit(Opcode::Iprint);
    B.halt();
    B.finish();
  }
  Asm.setEntry(Main);
  Module M = Asm.build();

  // -- 2. Verify.
  std::vector<VerifyError> Errors = verifyModule(M);
  if (!Errors.empty()) {
    std::cerr << "verification failed:\n" << formatErrors(Errors);
    return 1;
  }
  std::cout << "== program ==\n";
  disassembleModule(std::cout, M);

  // -- 3. Prepare into basic blocks (the direct-threaded-inlining view).
  PreparedModule PM(M);
  std::cout << "\n== blocks ==\n";
  PM.dump(std::cout);

  // -- 4. Run under the trace-dispatching VM: profiler + trace cache at
  //       the paper's recommended parameters (97% threshold, delay 64).
  TraceVM VM(PM, VmOptions().completionThreshold(0.97).startStateDelay(64));
  RunResult R = VM.run();
  std::cout << "\n== run ==\nprogram output:";
  for (int64_t V : VM.machine().output())
    std::cout << " " << V;
  std::cout << "\nstatus: "
            << (R.Status == RunStatus::Finished ? "finished" : "stopped")
            << "\n";

  // -- 5. Inspect what the trace cache found.
  std::cout << "\n== traces ==\n";
  VM.traceCache().dump(std::cout);
  std::cout << "\n== statistics ==\n";
  VM.stats().print(std::cout);
  return 0;
}
