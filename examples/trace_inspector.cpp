//===- examples/trace_inspector.cpp - Inspect a workload's trace cache ----===//
///
/// Runs one of the six paper workloads (default: scimark) under the
/// TraceVM and dumps the hot part of the branch correlation graph, the
/// live traces, and the paper's five dependent values for the run.
///
/// Usage: trace_inspector [workload] [scale] [threshold] [delay]
///
//===----------------------------------------------------------------------===//

#include "vm/TraceVM.h"
#include "workloads/Workloads.h"

#include <cstdlib>
#include <iostream>

using namespace jtc;

int main(int argc, char **argv) {
  const char *Name = argc > 1 ? argv[1] : "scimark";
  const WorkloadInfo *W = findWorkload(Name);
  if (!W) {
    std::cerr << "unknown workload '" << Name << "'. Available:";
    for (const WorkloadInfo &Info : allWorkloads())
      std::cerr << " " << Info.Name;
    std::cerr << "\n";
    return 1;
  }
  uint32_t Scale = argc > 2 ? static_cast<uint32_t>(std::atoi(argv[2]))
                            : std::max(1u, W->DefaultScale / 10);
  VmOptions Options;
  Options.completionThreshold(argc > 3 ? std::atof(argv[3]) : 0.97)
      .startStateDelay(argc > 4 ? static_cast<uint32_t>(std::atoi(argv[4]))
                                : 64);

  std::cout << "workload " << Name << " scale " << Scale << " threshold "
            << Options.completionThreshold() << " delay "
            << Options.startStateDelay() << "\n\n";

  Module M = W->Build(Scale);
  PreparedModule PM(M);
  TraceVM VM(PM, Options);
  VM.run();

  // Hot nodes of the branch correlation graph (top of the profile).
  std::cout << "== hot branch-correlation nodes (executions >= 1% of "
               "blocks) ==\n";
  const BranchCorrelationGraph &G = VM.graph();
  uint64_t Cut = VM.stats().BlocksExecuted / 100;
  for (NodeId Id = 0; Id < G.numNodes(); ++Id) {
    const BranchNode &N = G.node(Id);
    if (N.executions() < Cut)
      continue;
    std::cout << "  (" << N.from() << " -> " << N.to() << ") "
              << nodeStateName(N.state()) << " execs=" << N.executions();
    if (N.maxSucc() != InvalidBlockId)
      std::cout << " best-succ=" << N.maxSucc() << " p="
                << N.maxProbability();
    std::cout << "\n";
  }

  std::cout << "\n== live traces ==\n";
  VM.traceCache().dump(std::cout);

  const VmStats &S = VM.stats();
  std::cout << "\n== the paper's dependent values ==\n"
            << "average trace length:       " << S.avgCompletedTraceLength()
            << " blocks\n"
            << "instruction stream coverage: "
            << S.completedCoverage() * 100 << "% (completed), "
            << S.traceCoverage() * 100 << "% (incl. partial)\n"
            << "trace completion rate:      " << S.completionRate() * 100
            << "%\n"
            << "dispatches per signal:      "
            << S.dispatchesPerSignal() / 1000.0 << "K\n"
            << "trace event interval:       "
            << S.dispatchesPerTraceEvent() / 1000.0 << "K dispatches\n";
  return 0;
}
