//===- examples/dispatch_models.cpp - Figures 1 and 2, hands on -----------===//
///
/// The paper's Figures 1 and 2 contrast dispatch granularities. This
/// example runs one workload under all three models and reports how many
/// dispatches each needed for the identical instruction stream:
///
///   per-instruction (Fig. 1)  - the ordinary interpreter
///   per-block (Fig. 2)        - direct-threaded inlining
///   per-trace (section 3.1)   - the trace cache
///
/// Usage: dispatch_models [workload]
///
//===----------------------------------------------------------------------===//

#include "interp/InstructionInterpreter.h"
#include "vm/TraceVM.h"
#include "workloads/Workloads.h"

#include <iostream>

using namespace jtc;

int main(int argc, char **argv) {
  const char *Name = argc > 1 ? argv[1] : "compress";
  const WorkloadInfo *W = findWorkload(Name);
  if (!W) {
    std::cerr << "unknown workload '" << Name << "'\n";
    return 1;
  }
  Module M = W->Build(std::max(1u, W->DefaultScale / 10));

  Machine M1(M);
  RunResult PerInstr = runInstructions(M1);

  PreparedModule PM(M);
  Machine M2(M);
  BlockStepper Stepper(PM, M2);
  RunResult PerBlock = runBlocks(Stepper);

  TraceVM VM(PM, VmOptions().completionThreshold(0.97).startStateDelay(64));
  RunResult PerTrace = VM.run();

  std::cout << "workload: " << Name << " (" << PerInstr.Instructions
            << " instructions, identical across models)\n\n";
  auto Report = [&](const char *Label, uint64_t Dispatches) {
    std::cout << Label << Dispatches << " dispatches ("
              << static_cast<double>(PerInstr.Instructions) /
                     static_cast<double>(Dispatches)
              << " instructions per dispatch)\n";
  };
  Report("per-instruction (Fig. 1): ", PerInstr.Dispatches);
  Report("per-block (Fig. 2):       ", PerBlock.Dispatches);
  Report("per-trace (trace cache):  ", PerTrace.Dispatches);

  bool SameOutput = M1.output() == M2.output() &&
                    M1.output() == VM.machine().output();
  std::cout << "\noutputs identical across models: "
            << (SameOutput ? "yes" : "NO (bug!)") << "\n"
            << "traces live at end: " << VM.stats().LiveTraces
            << ", completion rate "
            << VM.stats().completionRate() * 100 << "%\n";
  return SameOutput ? 0 : 1;
}
