//===- examples/trace_timeline.cpp - Per-trace lifetimes from telemetry ---===//
///
/// Runs one of the six paper workloads with telemetry enabled and
/// reconstructs each trace's lifetime from the event ring: when it was
/// constructed (in blocks executed), how long it ran, how often it was
/// dispatched/completed, and how it died (replaced, invalidated, retired,
/// or still live at exit).
///
/// This is the event ring's intended consumption pattern: the ring holds
/// raw lifecycle events with the BlocksExecuted logical clock; cross-
/// referencing by trace id turns the flat stream back into per-trace
/// histories.
///
/// Usage: trace_timeline [workload] [scale] [ring-capacity]
///
//===----------------------------------------------------------------------===//

#include "vm/TraceVM.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <map>

using namespace jtc;

namespace {

/// Accumulated history of one trace id across the event stream.
struct TraceLifetime {
  uint64_t ConstructedAt = 0; ///< 0 when construction fell off the ring.
  uint64_t LastSeenAt = 0;
  uint32_t Length = 0; ///< Blocks; 0 when construction fell off the ring.
  uint64_t Dispatches = 0;
  uint64_t Completions = 0;
  uint64_t EarlyExits = 0;
  const char *End = "live"; ///< How the trace's life ended.
  uint64_t EndedAt = 0;
};

} // namespace

int main(int argc, char **argv) {
  if (!TelemetryCompiledIn) {
    std::cerr << "trace_timeline requires a build with -DJTC_TELEMETRY=ON\n";
    return 2;
  }

  const char *Name = argc > 1 ? argv[1] : "compress";
  const WorkloadInfo *W = findWorkload(Name);
  if (!W) {
    std::cerr << "unknown workload '" << Name << "'. Available:";
    for (const WorkloadInfo &Info : allWorkloads())
      std::cerr << " " << Info.Name;
    std::cerr << "\n";
    return 1;
  }
  uint32_t Scale = argc > 2 ? static_cast<uint32_t>(std::atoi(argv[2]))
                            : std::max(1u, W->DefaultScale / 10);

  VmOptions Options;
  Options.telemetry(true);
  if (argc > 3)
    Options.telemetryCapacity(static_cast<uint32_t>(std::atoi(argv[3])));

  Module M = W->Build(Scale);
  PreparedModule PM(M);
  TraceVM VM(PM, Options);
  VM.run();

  const EventRing &Ring = VM.events();
  std::cout << "workload " << Name << " scale " << Scale << ": "
            << Ring.totalRecorded() << " events recorded, " << Ring.size()
            << " retained (" << Ring.dropped() << " dropped)\n\n";

  // Fold the flat event stream into per-trace histories. Dispatch counts
  // are lower bounds whenever events were dropped from the ring.
  std::map<TraceId, TraceLifetime> Traces;
  Ring.forEach([&](const Event &E) {
    if (!E.isTraceLifecycle())
      return;
    TraceLifetime &T = Traces[E.Id];
    T.LastSeenAt = E.Clock;
    switch (E.Kind) {
    case EventKind::TraceConstructed:
    case EventKind::TraceReused:
      T.ConstructedAt = E.Clock;
      T.Length = E.Arg;
      break;
    case EventKind::TraceDispatched:
      ++T.Dispatches;
      break;
    case EventKind::TraceCompleted:
      ++T.Completions;
      break;
    case EventKind::TraceEarlyExit:
      ++T.EarlyExits;
      break;
    case EventKind::TraceReplaced:
      T.End = "replaced";
      T.EndedAt = E.Clock;
      break;
    case EventKind::TraceInvalidated:
      T.End = "invalidated";
      T.EndedAt = E.Clock;
      break;
    case EventKind::TraceRetired:
      T.End = "retired";
      T.EndedAt = E.Clock;
      break;
    default:
      break;
    }
  });

  std::printf("%6s %12s %12s %6s %10s %10s %8s  %s\n", "trace", "born",
              "last-seen", "blocks", "dispatches", "completed", "early",
              "end");
  for (const auto &[Id, T] : Traces) {
    std::printf("%6u %12s %12llu %6s %10llu %10llu %8llu  %s", Id,
                T.ConstructedAt
                    ? std::to_string(T.ConstructedAt).c_str()
                    : "(evicted)",
                static_cast<unsigned long long>(T.LastSeenAt),
                T.Length ? std::to_string(T.Length).c_str() : "?",
                static_cast<unsigned long long>(T.Dispatches),
                static_cast<unsigned long long>(T.Completions),
                static_cast<unsigned long long>(T.EarlyExits), T.End);
    if (T.EndedAt)
      std::printf(" @ %llu", static_cast<unsigned long long>(T.EndedAt));
    std::printf("\n");
  }

  std::cout << "\n(born/last-seen in blocks executed; counts are lower "
               "bounds when events were dropped)\n";
  return 0;
}
