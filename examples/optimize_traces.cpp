//===- examples/optimize_traces.cpp - Trace optimization walkthrough ------===//
///
/// The paper's future work, hands on: run a workload, take its hottest
/// trace, linearize it into guard-annotated straight-line segments (with
/// static calls inlined), optimize, and show the before/after code side
/// by side.
///
/// Usage: optimize_traces [workload]
///
//===----------------------------------------------------------------------===//

#include "bytecode/Disassembler.h"
#include "opt/TraceOptimizer.h"
#include "vm/TraceVM.h"
#include "workloads/Workloads.h"

#include <iostream>

using namespace jtc;

namespace {

void printSegments(const char *Tag,
                   const std::vector<LinearSegment> &Segments) {
  std::cout << "--- " << Tag << " ---\n";
  size_t Instrs = 0, Guards = 0;
  for (const LinearSegment &Seg : Segments) {
    std::cout << "segment (method #" << Seg.MethodId << ", " << Seg.NumLocals
              << " locals";
    if (Seg.NumLocals > Seg.ScratchBase)
      std::cout << ", " << Seg.NumLocals - Seg.ScratchBase
                << " from inlined frames";
    std::cout << ")\n";
    for (const LinearOp &Op : Seg.Ops) {
      if (Op.K == LinearOp::Kind::Guard) {
        std::cout << "  guard " << mnemonic(Op.I.Op)
                  << (Op.GuardTaken ? " (taken)" : " (fallthrough)") << "\n";
        ++Guards;
      } else {
        std::cout << "  " << disassemble(Op.I) << "\n";
        ++Instrs;
      }
    }
  }
  std::cout << "(" << Instrs << " instructions, " << Guards << " guards)\n\n";
}

} // namespace

int main(int argc, char **argv) {
  const char *Name = argc > 1 ? argv[1] : "scimark";
  const WorkloadInfo *W = findWorkload(Name);
  if (!W) {
    std::cerr << "unknown workload '" << Name << "'\n";
    return 1;
  }
  Module M = W->Build(std::max(1u, W->DefaultScale / 10));
  PreparedModule PM(M);
  TraceVM VM(PM, VmOptions());
  VM.run();

  // Pick the trace that completed most often.
  const Trace *Hot = nullptr;
  for (const Trace &T : VM.traceCache().traces())
    if (T.Alive && (!Hot || T.Completed > Hot->Completed))
      Hot = &T;
  if (!Hot) {
    std::cerr << "no live traces -- try a larger scale\n";
    return 1;
  }

  std::cout << "hottest trace of " << Name << ": " << Hot->Blocks.size()
            << " blocks, completed " << Hot->Completed << " of "
            << Hot->Entered << " entries\n\n";

  printSegments("linearized (calls inlined, unoptimized)",
                linearizeTrace(PM, *Hot, /*InlineStaticCalls=*/true));

  OptStats Stats;
  printSegments("optimized",
                optimizeTrace(PM, *Hot, Stats, /*InlineStaticCalls=*/true));

  std::cout << "constant folds: " << Stats.ConstantsFolded
            << ", loads forwarded: " << Stats.LoadsForwarded
            << ", dead stores: " << Stats.DeadStores
            << ", guards eliminated: " << Stats.GuardsEliminated << "\n"
            << "instruction reduction within segments: "
            << Stats.reduction() * 100 << "%\n"
            << "(plus the eliminated call/return and dispatch work, which "
               "is not counted here)\n";
  return 0;
}
