//===- bench/table1_trace_length.cpp - Paper Table I ----------------------===//
///
/// Regenerates Table I: average executed trace length (in basic blocks)
/// vs. completion threshold, for the six benchmarks. Expected shape:
/// lengths collapse at the 100% threshold (only unique chains survive),
/// grow as the threshold drops, with compress and scimark the longest and
/// javac/soot/mpegaudio the shortest.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace jtc;

int main(int argc, char **argv) {
  std::string JsonOut = parseBenchJsonArg(argc, argv, "table1_trace_length");
  std::cout << "Table I: Trace Length (basic blocks) vs. Threshold\n"
            << "(paper: compress 5.0->12.1, javac 2.9->5.9, scimark flat "
               "10.8; average 4.7->7.8)\n\n";
  bench::ThresholdSweep S = bench::runThresholdSweep();
  bench::printThresholdTable(
      S, "threshold",
      [](const VmStats &V) { return V.avgCompletedTraceLength(); },
      [](double V) { return TablePrinter::fmt(V, 1); });
  maybeWriteBenchJson(JsonOut, "table1_trace_length", bench::sweepRecords(S));
  return 0;
}
