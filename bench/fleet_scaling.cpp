//===- bench/fleet_scaling.cpp - Fleet throughput & warm-boot bench -------===//
///
/// Load-generates against a real jtc-fleet (real sockets, real forked
/// shard processes) and reports two things as a JSON artifact:
///
///  1. Scaling: requests/second and latency percentiles as the shard
///     count sweeps (default 1, 2, 4), with every remote session's heap
///     and output digests gated against a local single-process reference
///     run -- a fleet that scales by corrupting results does not count.
///
///  2. Warm boot: for each workload, the first-session latency of a
///     fleet booted cold versus one booted from the fleet profile
///     aggregate the previous fleet merged -- the paper's "persistent
///     profile" payoff measured across process generations, through the
///     aggregation tier rather than a single donor file.
///
/// The artifact records hardware_concurrency: on a single-core host the
/// scaling sweep cannot physically show speedup (shards time-slice one
/// CPU), so CI gates on the ratio only when cores >= 4.
///
/// Flags: --shards-list=1,2,4 --threads=N --sessions=N --scale-percent=P
///        --workload=NAME[:SCALE] (repeatable) --warm-sessions=N
///        --skip-warm --skip-scaling --json[=FILE]
///
//===----------------------------------------------------------------------===//

#include "fleet/Shard.h"
#include "fleet/Supervisor.h"
#include "net/Client.h"
#include "server/VmService.h"
#include "support/ArgParse.h"
#include "support/Json.h"
#include "workloads/Workloads.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

using namespace jtc;
using namespace jtc::fleet;

#ifndef JTC_FLEET_BIN
#error "JTC_FLEET_BIN must point at the jtc-fleet binary"
#endif

namespace {

struct Options {
  std::string ShardsList = "1,2,4";
  uint32_t Threads = 4;
  uint32_t Sessions = 48;    ///< Per shard-count sweep.
  uint32_t ScalePercent = 25; ///< Workload scale as % of registry default.
  uint32_t WarmSessions = 3; ///< Sessions per generation in the warm phase.
  std::vector<std::pair<std::string, uint32_t>> Workloads;
  bool SkipWarm = false;
  bool SkipScaling = false;
  bool Json = false;
  std::string JsonOut;
};

struct Reference {
  uint64_t HeapDigest = 0;
  uint64_t OutputDigest = 0;
};

struct SweepResult {
  unsigned Shards = 0;
  uint64_t Completed = 0;
  uint64_t Backpressure = 0;
  uint64_t Errors = 0;
  uint64_t DigestMismatches = 0;
  double Seconds = 0;
  double ReqPerSec = 0;
  double P50Ms = 0;
  double P99Ms = 0;
};

struct WarmResult {
  std::string Workload;
  double ColdFirstSeconds = 0; ///< Shard-side first-session latency, cold.
  double WarmFirstSeconds = 0; ///< Same, booted from the aggregate.
  bool WarmStartFlag = false;  ///< The warm generation reported WarmStart.
  uint64_t CheckpointsLoaded = 0;
  uint64_t LoadRejects = 0;
  bool Improved = false;
};

double percentile(std::vector<double> &V, double P) {
  if (V.empty())
    return 0;
  std::sort(V.begin(), V.end());
  size_t I = static_cast<size_t>(P * (V.size() - 1));
  return V[I];
}

/// Local single-process reference digests, one VmService session per
/// workload -- the oracle every fleet session must match.
std::map<std::string, Reference> buildReference(
    const std::vector<std::pair<std::string, uint32_t>> &Workloads) {
  std::map<std::string, Reference> Ref;
  VmService Svc(ServiceOptions().workers(1));
  for (const auto &[Name, Scale] : Workloads) {
    const WorkloadInfo *W = findWorkload(Name);
    if (!W)
      continue;
    Svc.registerWorkload(*W, Scale);
    SessionResult R = Svc.run({Name});
    Ref[Name] = {R.HeapDigest, net::outputDigest(R.Output)};
  }
  return Ref;
}

FleetOptions fleetOptions(const Options &Opts, unsigned Shards,
                          const std::string &StateDir) {
  FleetOptions FO;
  FO.Shards = Shards;
  FO.Workers = 1;
  FO.StateDir = StateDir;
  FO.MaxQueueDepth = 256;
  FO.ShardBinary = JTC_FLEET_BIN;
  FO.Workloads = Opts.Workloads;
  return FO;
}

/// One load-generator thread: its own socket, its own slice of keys.
void loadgenThread(uint16_t Port, const Options &Opts, unsigned ThreadId,
                   uint32_t Sessions,
                   const std::map<std::string, Reference> &Ref,
                   SweepResult &Out, std::vector<double> &Latencies,
                   std::mutex &OutMutex) {
  std::string Err;
  auto Client = net::BlockingClient::connect(Port, Err);
  if (!Client) {
    std::lock_guard<std::mutex> Lock(OutMutex);
    Out.Errors += Sessions;
    return;
  }
  uint64_t Completed = 0, Backpressure = 0, Errors = 0, Mismatches = 0;
  std::vector<double> Local;
  for (uint32_t I = 0; I < Sessions; ++I) {
    net::RunSessionMsg M;
    M.SessionKey =
        "t" + std::to_string(ThreadId) + "-s" + std::to_string(I);
    M.Module = Opts.Workloads[I % Opts.Workloads.size()].first;
    auto T0 = std::chrono::steady_clock::now();
    net::Frame Reply;
    net::NetError NErr;
    if (!Client->call(net::MessageType::RunSession, M.encode(), Reply, NErr,
                      /*TimeoutSeconds=*/120)) {
      ++Errors;
      continue;
    }
    double Ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - T0)
            .count();
    if (Reply.Type == net::MessageType::SessionDone) {
      net::SessionDoneMsg D;
      if (!D.decode(Reply.Payload, NErr)) {
        ++Errors;
        continue;
      }
      ++Completed;
      Local.push_back(Ms);
      auto It = Ref.find(M.Module);
      if (It != Ref.end() && (D.HeapDigest != It->second.HeapDigest ||
                              D.OutputDigest != It->second.OutputDigest))
        ++Mismatches;
    } else if (Reply.Type == net::MessageType::Backpressure) {
      ++Backpressure;
    } else {
      ++Errors;
    }
  }
  std::lock_guard<std::mutex> Lock(OutMutex);
  Out.Completed += Completed;
  Out.Backpressure += Backpressure;
  Out.Errors += Errors;
  Out.DigestMismatches += Mismatches;
  Latencies.insert(Latencies.end(), Local.begin(), Local.end());
}

bool runSweep(const Options &Opts, unsigned Shards,
              const std::map<std::string, Reference> &Ref,
              const std::string &StateDir, SweepResult &Out) {
  Out.Shards = Shards;
  FleetSupervisor Fleet(fleetOptions(Opts, Shards, StateDir));
  std::string Err;
  if (!Fleet.start(Err)) {
    std::cerr << "fleet_scaling: start(" << Shards << "): " << Err << "\n";
    return false;
  }
  unsigned Threads = std::max(1u, Opts.Threads);
  uint32_t PerThread = std::max(1u, Opts.Sessions / Threads);

  std::mutex OutMutex;
  std::vector<double> Latencies;
  std::atomic<unsigned> Live{Threads};
  auto T0 = std::chrono::steady_clock::now();
  std::vector<std::thread> Gen;
  for (unsigned T = 0; T < Threads; ++T)
    Gen.emplace_back([&, T] {
      loadgenThread(Fleet.frontPort(), Opts, T, PerThread, Ref, Out,
                    Latencies, OutMutex);
      --Live;
    });
  while (Live > 0)
    Fleet.poll(10);
  for (std::thread &G : Gen)
    G.join();
  Out.Seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
          .count();
  Out.ReqPerSec = Out.Seconds > 0 ? Out.Completed / Out.Seconds : 0;
  Out.P50Ms = percentile(Latencies, 0.50);
  Out.P99Ms = percentile(Latencies, 0.99);
  Fleet.shutdown();
  return true;
}

/// Runs one fleet generation over a single workload and reports the
/// first session's shard-side latency plus the shard's checkpoint-load
/// counters. \p Aggregate runs an aggregation round before shutdown so
/// the next generation can boot warm.
bool runGeneration(const Options &Opts, const std::string &Workload,
                   uint32_t Scale, const std::string &StateDir,
                   bool Aggregate, WarmResult &Out, bool Warm) {
  FleetOptions FO = fleetOptions(Opts, 1, StateDir);
  FO.Workloads = {{Workload, Scale}};
  FleetSupervisor Fleet(FO);
  std::string Err;
  if (!Fleet.start(Err)) {
    std::cerr << "fleet_scaling: warm-gen start: " << Err << "\n";
    return false;
  }
  bool Ok = true;
  std::atomic<bool> Done{false};
  std::thread Gen([&] {
    std::string CErr;
    auto Client = net::BlockingClient::connect(Fleet.frontPort(), CErr);
    if (!Client) {
      Ok = false;
      Done = true;
      return;
    }
    for (uint32_t I = 0; I < Opts.WarmSessions && Ok; ++I) {
      net::RunSessionMsg M;
      M.SessionKey = "warm-" + std::to_string(I);
      M.Module = Workload;
      net::Frame Reply;
      net::NetError NErr;
      if (!Client->call(net::MessageType::RunSession, M.encode(), Reply,
                        NErr, /*TimeoutSeconds=*/120) ||
          Reply.Type != net::MessageType::SessionDone) {
        Ok = false;
        break;
      }
      net::SessionDoneMsg D;
      if (!D.decode(Reply.Payload, NErr)) {
        Ok = false;
        break;
      }
      if (I == 0) {
        if (Warm) {
          Out.WarmFirstSeconds = D.Seconds;
          Out.WarmStartFlag = D.WarmStart;
        } else {
          Out.ColdFirstSeconds = D.Seconds;
        }
      }
    }
    Done = true;
  });
  while (!Done)
    Fleet.poll(10);
  Gen.join();
  if (Ok && Warm) {
    std::vector<ShardStatsReport> Stats;
    if (Fleet.fetchStats(Stats, Err) && !Stats.empty())
      for (const auto &[Key, V] : Stats[0].Counters) {
        if (Key == "checkpoints-loaded")
          Out.CheckpointsLoaded = V;
        if (Key == "checkpoint-load-rejects")
          Out.LoadRejects = V;
      }
  }
  if (Ok && Aggregate && !Fleet.aggregateNow(Err)) {
    std::cerr << "fleet_scaling: aggregate: " << Err << "\n";
    Ok = false;
  }
  Fleet.shutdown();
  return Ok;
}

bool parseOptions(int Argc, char **Argv, Options &Opts) {
  ArgParser P;
  P.strOpt("shards-list", &Opts.ShardsList)
      .u32Opt("threads", &Opts.Threads)
      .u32Opt("sessions", &Opts.Sessions)
      .u32Opt("scale-percent", &Opts.ScalePercent)
      .u32Opt("warm-sessions", &Opts.WarmSessions)
      .custom(
          "workload",
          [&Opts](const std::string &V) {
            size_t Colon = V.find(':');
            uint32_t Scale = 0;
            if (Colon != std::string::npos)
              Scale = static_cast<uint32_t>(
                  std::strtoul(V.c_str() + Colon + 1, nullptr, 10));
            Opts.Workloads.emplace_back(V.substr(0, Colon), Scale);
            return true;
          },
          /*ValueRequired=*/true)
      .flag("skip-warm", &Opts.SkipWarm)
      .flag("skip-scaling", &Opts.SkipScaling)
      .custom("json", [&Opts](const std::string &V) {
        Opts.Json = true;
        Opts.JsonOut = V;
        return true;
      });
  if (!P.parse(Argc, Argv))
    return false;
  if (Opts.Workloads.empty())
    for (const WorkloadInfo &W : allWorkloads())
      Opts.Workloads.emplace_back(W.Name, 0);
  for (auto &[Name, Scale] : Opts.Workloads)
    if (Scale == 0) {
      const WorkloadInfo *W = findWorkload(Name);
      uint32_t Default = W ? W->DefaultScale : 100;
      Scale = std::max<uint32_t>(
          1, static_cast<uint32_t>(
                 static_cast<uint64_t>(Default) * Opts.ScalePercent / 100));
    }
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opts;
  if (!parseOptions(Argc, Argv, Opts)) {
    std::cerr << "usage: fleet_scaling [--shards-list=1,2,4] [--threads=N] "
                 "[--sessions=N]\n  [--scale-percent=P] "
                 "[--workload=NAME[:SCALE]]... [--warm-sessions=N]\n"
                 "  [--skip-warm] [--skip-scaling] [--json[=FILE]]\n";
    return 2;
  }

  unsigned Cores = std::thread::hardware_concurrency();
  std::cerr << "fleet_scaling: " << Cores << " cores, "
            << Opts.Workloads.size() << " workloads\n";

  std::map<std::string, Reference> Ref = buildReference(Opts.Workloads);

  namespace fs = std::filesystem;
  std::string Root =
      (fs::temp_directory_path() / "jtc-fleet-scaling").string();
  std::error_code Ec;
  fs::remove_all(Root, Ec);

  std::vector<unsigned> ShardCounts;
  for (size_t Pos = 0; Pos < Opts.ShardsList.size();) {
    size_t Comma = Opts.ShardsList.find(',', Pos);
    if (Comma == std::string::npos)
      Comma = Opts.ShardsList.size();
    unsigned N = static_cast<unsigned>(
        std::strtoul(Opts.ShardsList.substr(Pos, Comma - Pos).c_str(),
                     nullptr, 10));
    if (N)
      ShardCounts.push_back(N);
    Pos = Comma + 1;
  }

  std::vector<SweepResult> Sweeps;
  if (!Opts.SkipScaling)
    for (unsigned Shards : ShardCounts) {
      SweepResult R;
      std::string Dir = Root + "/scale-" + std::to_string(Shards);
      if (!runSweep(Opts, Shards, Ref, Dir, R))
        return 1;
      std::fprintf(stderr,
                   "  shards=%u: %.1f req/s p50=%.1fms p99=%.1fms "
                   "(%llu ok, %llu bp, %llu err, %llu digest mismatches)\n",
                   Shards, R.ReqPerSec, R.P50Ms, R.P99Ms,
                   (unsigned long long)R.Completed,
                   (unsigned long long)R.Backpressure,
                   (unsigned long long)R.Errors,
                   (unsigned long long)R.DigestMismatches);
      Sweeps.push_back(R);
    }

  std::vector<WarmResult> Warm;
  if (!Opts.SkipWarm)
    for (const auto &[Name, Scale] : Opts.Workloads) {
      WarmResult R;
      R.Workload = Name;
      std::string Dir = Root + "/warm-" + Name;
      // Generation 1: cold boot, serve, aggregate on the way out.
      if (!runGeneration(Opts, Name, Scale, Dir, /*Aggregate=*/true, R,
                         /*Warm=*/false))
        return 1;
      // Generation 2: same state dir; shards boot from the aggregate.
      if (!runGeneration(Opts, Name, Scale, Dir, /*Aggregate=*/false, R,
                         /*Warm=*/true))
        return 1;
      R.Improved = R.WarmFirstSeconds < R.ColdFirstSeconds;
      std::fprintf(stderr,
                   "  warm %s: cold=%.4fs warm=%.4fs warm_start=%d "
                   "loaded=%llu rejects=%llu %s\n",
                   Name.c_str(), R.ColdFirstSeconds, R.WarmFirstSeconds,
                   R.WarmStartFlag ? 1 : 0,
                   (unsigned long long)R.CheckpointsLoaded,
                   (unsigned long long)R.LoadRejects,
                   R.Improved ? "improved" : "no-gain");
      Warm.push_back(R);
    }

  uint64_t TotalMismatches = 0, TotalErrors = 0;
  for (const SweepResult &R : Sweeps) {
    TotalMismatches += R.DigestMismatches;
    TotalErrors += R.Errors;
  }
  unsigned WarmWins = 0, WarmFlagged = 0;
  for (const WarmResult &R : Warm) {
    WarmWins += R.Improved ? 1 : 0;
    WarmFlagged += R.WarmStartFlag ? 1 : 0;
  }

  if (Opts.Json) {
    std::ofstream File;
    std::ostream *OS = &std::cout;
    if (!Opts.JsonOut.empty()) {
      File.open(Opts.JsonOut);
      if (!File) {
        std::cerr << "fleet_scaling: cannot write " << Opts.JsonOut << "\n";
        return 1;
      }
      OS = &File;
    }
    JsonWriter W(*OS);
    W.beginObject();
    W.fieldUInt("hardware_concurrency", Cores)
        .fieldUInt("sessions_per_sweep", Opts.Sessions)
        .fieldUInt("threads", Opts.Threads)
        .fieldUInt("digest_mismatches", TotalMismatches)
        .fieldUInt("errors", TotalErrors);
    W.key("scaling").beginArray();
    for (const SweepResult &R : Sweeps) {
      W.beginObject()
          .fieldUInt("shards", R.Shards)
          .fieldUInt("completed", R.Completed)
          .fieldUInt("backpressure", R.Backpressure)
          .fieldUInt("errors", R.Errors)
          .fieldUInt("digest_mismatches", R.DigestMismatches)
          .fieldReal("seconds", R.Seconds)
          .fieldReal("req_per_sec", R.ReqPerSec)
          .fieldReal("p50_ms", R.P50Ms)
          .fieldReal("p99_ms", R.P99Ms)
          .endObject();
    }
    W.endArray();
    W.key("warm_boot").beginArray();
    for (const WarmResult &R : Warm) {
      W.beginObject()
          .field("workload", R.Workload)
          .fieldReal("cold_first_seconds", R.ColdFirstSeconds)
          .fieldReal("warm_first_seconds", R.WarmFirstSeconds)
          .fieldBool("warm_start", R.WarmStartFlag)
          .fieldUInt("checkpoints_loaded", R.CheckpointsLoaded)
          .fieldUInt("load_rejects", R.LoadRejects)
          .fieldBool("improved", R.Improved)
          .endObject();
    }
    W.endArray();
    W.fieldUInt("warm_improved", WarmWins)
        .fieldUInt("warm_start_flagged", WarmFlagged);
    W.endObject();
    *OS << "\n";
  }

  // Correctness gates hold on any hardware; the scaling ratio is only
  // meaningful with enough cores to actually run shards in parallel.
  if (TotalMismatches || TotalErrors) {
    std::cerr << "fleet_scaling: FAILED digest/error gate\n";
    return 1;
  }
  if (!Opts.SkipWarm && !Warm.empty() && WarmFlagged == 0) {
    std::cerr << "fleet_scaling: FAILED: no warm generation reported a "
                 "warm start\n";
    return 1;
  }
  return 0;
}
