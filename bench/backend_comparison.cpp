//===- bench/backend_comparison.cpp - Table VII rerun across backends -----===//
///
/// The Table VII workload set rerun on both trace-execution tiers: each
/// workload is timed end-to-end under --backend=interp and --backend=jit
/// (best of N runs), with the interp/JIT equivalence contract asserted
/// on the way (identical folded stats digests -- a mismatch aborts, the
/// numbers would be meaningless). The interesting columns are the net
/// speedup of the template-JIT tier over block-stepping the same traces
/// and how much of the run the compiled tier actually served.
///
/// JSON artifact: one record per workload; "overhead" reuses the
/// OverheadSample shape with plain_seconds = the interp-backend wall
/// time and profiled_seconds = the jit-backend wall time, and "stats"
/// is the jit run's statistics block (whose tier counters report traces
/// compiled, native dispatches and code bytes).
///
//===----------------------------------------------------------------------===//

#include "bytecode/Verifier.h"
#include "harness/Experiment.h"
#include "support/TablePrinter.h"
#include "support/Timer.h"

#include <cstdio>
#include <cstdlib>
#include <iostream>

using namespace jtc;

namespace {

VmOptions tierOptions(backend::BackendKind K) {
  // The recommended configuration of the Table VII experiment, with
  // immediate promotion so the jit tier serves every hot dispatch.
  return VmOptions()
      .completionThreshold(0.97)
      .startStateDelay(64)
      .backend(K)
      .jitPromoteAfter(0);
}

/// Best-of-\p Repeats wall seconds for \p PM under \p Options; the
/// digest and stats of the last run are returned through the outs.
double timeRuns(const PreparedModule &PM, const VmOptions &Options,
                int Repeats, VmStats &Stats) {
  double Best = 1e100;
  for (int Rep = 0; Rep < Repeats; ++Rep) {
    TraceVM VM(PM, Options);
    Timer T;
    RunResult R = VM.run();
    double Sec = T.seconds();
    if (R.Status == RunStatus::Trapped) {
      std::fprintf(stderr, "workload trapped: %s\n", trapName(R.Trap));
      std::abort();
    }
    if (Sec < Best)
      Best = Sec;
    Stats = VM.currentStats();
  }
  return Best;
}

} // namespace

int main(int argc, char **argv) {
  std::string JsonOut = parseBenchJsonArg(argc, argv, "backend_comparison");
  if (!backend::jitSupportedHost()) {
    std::cout << "backend_comparison: no template-JIT support on this host; "
                 "nothing to compare\n";
    return 0;
  }
  std::cout << "Backend comparison: Table VII workloads, interp vs jit "
               "trace tier\n\n";

  TablePrinter T({"benchmark", "interp (s)", "jit (s)", "speedup",
                  "traces compiled", "jit dispatch share"});
  std::vector<BenchRecord> Records;
  int Faster = 0;
  for (const WorkloadInfo &W : allWorkloads()) {
    std::cerr << "  timing " << W.Name << "...\n";
    Module M = W.Build(W.DefaultScale);
    std::vector<VerifyError> Errors = verifyModule(M);
    if (!Errors.empty()) {
      std::fprintf(stderr, "workload '%s' failed verification\n", W.Name);
      return 1;
    }
    PreparedModule PM(M);
    VmStats SI, SJ;
    double InterpSec =
        timeRuns(PM, tierOptions(backend::BackendKind::Interp), 3, SI);
    double JitSec = timeRuns(PM, tierOptions(backend::BackendKind::Jit), 3, SJ);
    // The equivalence contract gates the comparison: same digest or the
    // two tiers did not run the same execution.
    if (SI.digest() != SJ.digest()) {
      std::fprintf(stderr,
                   "backend digest mismatch on '%s': interp %llx, jit %llx\n",
                   W.Name, static_cast<unsigned long long>(SI.digest()),
                   static_cast<unsigned long long>(SJ.digest()));
      return 1;
    }
    if (JitSec < InterpSec)
      ++Faster;
    uint64_t TierTotal = SJ.TraceDispatchesJit + SJ.TraceDispatchesInterp;
    double JitShare =
        TierTotal ? static_cast<double>(SJ.TraceDispatchesJit) /
                        static_cast<double>(TierTotal)
                  : 0.0;
    T.addRow({W.Name, TablePrinter::fmt(InterpSec, 3),
              TablePrinter::fmt(JitSec, 3),
              TablePrinter::fmt(InterpSec / JitSec, 2) + "x",
              std::to_string(SJ.TracesJitCompiled),
              TablePrinter::fmtPercent(JitShare, 1)});
    BenchRecord R = BenchRecord::forStats(W.Name, 0.97, 64, SJ);
    R.HasOverhead = true;
    R.Overhead.PlainSeconds = InterpSec;
    R.Overhead.ProfiledSeconds = JitSec;
    R.Overhead.Dispatches = SJ.TraceDispatches;
    R.Overhead.Instructions = SJ.Instructions;
    Records.push_back(std::move(R));
  }
  T.print(std::cout);
  std::cout << "\njit faster on " << Faster << "/"
            << allWorkloads().size() << " workloads\n";
  maybeWriteBenchJson(JsonOut, "backend_comparison", Records);
  return 0;
}
