//===- bench/BenchUtil.h - Shared table-bench machinery ---------*- C++ -*-===//
///
/// \file
/// Helpers shared by the table benchmarks: the 6-benchmark x 5-threshold
/// sweep behind Tables I-IV, the delay sweep behind Table V, and the
/// paper-style table layout (benchmarks as columns, a trailing average).
///
//===----------------------------------------------------------------------===//

#ifndef JTC_BENCH_BENCHUTIL_H
#define JTC_BENCH_BENCHUTIL_H

#include "harness/Experiment.h"
#include "support/TablePrinter.h"

#include <functional>
#include <iostream>
#include <string>
#include <vector>

namespace jtc {
namespace bench {

/// One full (workload x threshold) sweep at a fixed delay. Rows follow
/// standardThresholds(); columns follow allWorkloads().
struct ThresholdSweep {
  std::vector<double> Thresholds;
  std::vector<std::string> Workloads;
  /// Cell[t][w] = stats of workload w at threshold t.
  std::vector<std::vector<VmStats>> Cell;
};

inline ThresholdSweep runThresholdSweep(uint32_t Delay = 64) {
  ThresholdSweep S;
  S.Thresholds = standardThresholds();
  for (const WorkloadInfo &W : allWorkloads())
    S.Workloads.push_back(W.Name);
  for (double T : S.Thresholds) {
    std::vector<VmStats> Row;
    for (const WorkloadInfo &W : allWorkloads()) {
      std::cerr << "  running " << W.Name << " @ threshold " << T << "...\n";
      Row.push_back(runWorkload(
          W, VmOptions().completionThreshold(T).startStateDelay(Delay)));
    }
    S.Cell.push_back(std::move(Row));
  }
  return S;
}

/// Flattens a sweep into the BenchRecord form writeBenchJson expects.
inline std::vector<BenchRecord> sweepRecords(const ThresholdSweep &S,
                                             uint32_t Delay = 64) {
  std::vector<BenchRecord> Records;
  for (size_t R = 0; R < S.Thresholds.size(); ++R)
    for (size_t C = 0; C < S.Workloads.size(); ++C)
      Records.push_back(BenchRecord::forStats(S.Workloads[C], S.Thresholds[R],
                                              Delay, S.Cell[R][C]));
  return Records;
}

/// Prints a paper-style table: one row per threshold, one column per
/// benchmark, plus the benchmark average, using \p Extract to pull the
/// reported value and \p Format to render it.
inline void printThresholdTable(
    const ThresholdSweep &S, const std::string &RowHeader,
    const std::function<double(const VmStats &)> &Extract,
    const std::function<std::string(double)> &Format) {
  std::vector<std::string> Header = {RowHeader};
  for (const std::string &W : S.Workloads)
    Header.push_back(W);
  Header.push_back("average");
  TablePrinter T(Header);
  for (size_t R = 0; R < S.Thresholds.size(); ++R) {
    std::vector<std::string> Row = {
        TablePrinter::fmtPercent(S.Thresholds[R], 0)};
    double Sum = 0;
    for (const VmStats &Cell : S.Cell[R]) {
      double V = Extract(Cell);
      Sum += V;
      Row.push_back(Format(V));
    }
    Row.push_back(Format(Sum / static_cast<double>(S.Cell[R].size())));
    T.addRow(std::move(Row));
  }
  T.print(std::cout);
}

} // namespace bench
} // namespace jtc

#endif // JTC_BENCH_BENCHUTIL_H
