//===- bench/ablation_decay_interval.cpp - Decay interval sweep -----------===//
///
/// Ablation for the design constant the paper fixes at 256 (section
/// 4.1.1): how the decay interval affects signal rate, trace length and
/// coverage on a regular (compress) and an irregular (javac) benchmark.
/// Expected shape: short intervals re-evaluate constantly (more signals,
/// noisier probabilities, shorter traces); very long intervals adapt
/// slowly; 256 sits on the flat part of the curve.
///
//===----------------------------------------------------------------------===//

#include "harness/Experiment.h"
#include "support/TablePrinter.h"

#include <iostream>

using namespace jtc;

int main() {
  std::cout << "Ablation: decay interval (paper fixes 256)\n\n";
  const uint32_t Intervals[] = {32, 64, 128, 256, 512, 1024};
  for (const char *Name : {"compress", "javac"}) {
    const WorkloadInfo &W = *findWorkload(Name);
    std::cout << Name << ":\n";
    TablePrinter T({"decay interval", "trace length", "coverage",
                    "completion", "signals/1M dispatches", "live traces"});
    for (uint32_t Interval : Intervals) {
      std::cerr << "  running " << Name << " @ interval " << Interval
                << "...\n";
      VmStats S = runWorkload(W,
                              VmOptions()
                                  .completionThreshold(0.97)
                                  .startStateDelay(64)
                                  .decayInterval(Interval),
                              W.DefaultScale / 2);
      T.addRow({std::to_string(Interval),
                TablePrinter::fmt(S.avgCompletedTraceLength(), 1),
                TablePrinter::fmtPercent(S.completedCoverage(), 1),
                TablePrinter::fmtPercent(S.completionRate(), 2),
                TablePrinter::fmt(static_cast<double>(S.Signals) * 1e6 /
                                      static_cast<double>(S.BlocksExecuted),
                                  1),
                std::to_string(S.LiveTraces)});
    }
    T.print(std::cout);
    std::cout << "\n";
  }
  return 0;
}
