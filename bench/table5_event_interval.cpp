//===- bench/table5_event_interval.cpp - Paper Table V --------------------===//
///
/// Regenerates Table V: thousands of block dispatches per trace event
/// (a profiler signal or a constructed trace) at the 97% threshold, as
/// the start-state delay sweeps {1, 64, 4096}. Expected shape: the
/// interval grows sharply with the delay -- a larger delay filters cold
/// code out of the event stream.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace jtc;

int main(int argc, char **argv) {
  std::string JsonOut = parseBenchJsonArg(argc, argv, "table5_event_interval");
  std::cout << "Table V: Thousands of Dispatches per Trace Event at 97% "
               "threshold\n"
            << "(paper: rising from 1.3-129.9 at delay 1 to 35.6-3216 at "
               "delay 4096)\n\n";

  std::vector<std::string> Header = {"delay"};
  for (const WorkloadInfo &W : allWorkloads())
    Header.push_back(W.Name);
  Header.push_back("average");
  TablePrinter T(Header);

  std::vector<BenchRecord> Records;
  for (uint32_t Delay : standardDelays()) {
    std::vector<std::string> Row = {std::to_string(Delay)};
    double Sum = 0;
    for (const WorkloadInfo &W : allWorkloads()) {
      std::cerr << "  running " << W.Name << " @ delay " << Delay << "...\n";
      VmStats S = runWorkload(
          W, VmOptions().completionThreshold(0.97).startStateDelay(Delay));
      Records.push_back(BenchRecord::forStats(W.Name, 0.97, Delay, S));
      double V = S.dispatchesPerTraceEvent() / 1000.0;
      Sum += V;
      Row.push_back(TablePrinter::fmt(V, 1));
    }
    Row.push_back(
        TablePrinter::fmt(Sum / static_cast<double>(allWorkloads().size()), 1));
    T.addRow(std::move(Row));
  }
  T.print(std::cout);
  maybeWriteBenchJson(JsonOut, "table5_event_interval", Records);
  return 0;
}
