//===- bench/table6_profiler_overhead.cpp - Paper Table VI ----------------===//
///
/// Regenerates Table VI: wall-clock profiler overhead per million block
/// dispatches. The same direct-threaded-inlining interpreter is timed
/// with and without the branch-correlation-graph hook attached to every
/// block dispatch (no trace cache), exactly the paper's experiment
/// ("we modified SableVM to include the profiler code at the end of each
/// basic block, and then we timed the unmodified interpreter vs. the
/// profiling version").
///
/// Absolute seconds differ from the paper's 1.06 GHz laptop; the shape to
/// check is that the per-dispatch overhead is a modest fraction of a
/// block's execution cost (the paper reports ~28.6% per block).
///
//===----------------------------------------------------------------------===//

#include "harness/Experiment.h"
#include "support/TablePrinter.h"

#include <iostream>

using namespace jtc;

int main(int argc, char **argv) {
  std::string JsonOut =
      parseBenchJsonArg(argc, argv, "table6_profiler_overhead");
  std::cout << "Table VI: Profiler overhead per basic block dispatch\n"
            << "(paper: 0.018-0.075 s per million dispatches; profiling "
               "~28.6% of block execution cost)\n\n";

  TablePrinter T({"benchmark", "no profiler (s)", "dispatches (M)",
                  "profiler (s)", "overhead per 1e6 dispatches (s)",
                  "overhead (%)"});
  double TotalOverheadSec = 0, TotalPlainSec = 0;
  uint64_t TotalDispatches = 0;
  std::vector<BenchRecord> Records;
  for (const WorkloadInfo &W : allWorkloads()) {
    std::cerr << "  timing " << W.Name << "...\n";
    OverheadSample S = measureProfilerOverhead(W, /*ScaleOverride=*/0,
                                               /*Repeats=*/3);
    BenchRecord R;
    R.Workload = W.Name;
    R.HasOverhead = true;
    R.Overhead = S;
    Records.push_back(std::move(R));
    T.addRow({W.Name, TablePrinter::fmt(S.PlainSeconds, 3),
              TablePrinter::fmt(static_cast<double>(S.Dispatches) / 1e6, 1),
              TablePrinter::fmt(S.ProfiledSeconds, 3),
              TablePrinter::fmt(S.overheadPerMillionDispatches(), 4),
              TablePrinter::fmtPercent(
                  (S.ProfiledSeconds - S.PlainSeconds) / S.PlainSeconds, 1)});
    TotalOverheadSec += S.ProfiledSeconds - S.PlainSeconds;
    TotalPlainSec += S.PlainSeconds;
    TotalDispatches += S.Dispatches;
  }
  T.print(std::cout);
  std::cout << "\nacross all benchmarks: "
            << TablePrinter::fmt(TotalOverheadSec /
                                     (static_cast<double>(TotalDispatches) /
                                      1e6),
                                 4)
            << " s per million dispatches; profiling adds "
            << TablePrinter::fmtPercent(TotalOverheadSec / TotalPlainSec, 1)
            << " to plain block execution (paper: 28.6%)\n";
  maybeWriteBenchJson(JsonOut, "table6_profiler_overhead", Records);
  return 0;
}
