//===- bench/validate_overhead.cpp - Translation-validation overhead ------===//
///
/// Table VI methodology applied to the translation validator: each paper
/// workload runs under the default adaptive configuration twice -- once
/// with --validate=off and once with --validate=on -- and each flavour is
/// timed as the fastest of N repeats to suppress scheduling noise.
///
/// Validation runs once per constructed (or seeded) trace, so its cost is
/// a construction-time tax, not a steady-state one: the overhead shrinks
/// as the run length grows and the warmup fraction falls. Reported per
/// workload: wall-clock overhead (%), traces checked, and rejections
/// (which must be zero for the stock optimizer). --json=<file> writes the
/// CI artifact.
///
//===----------------------------------------------------------------------===//

#include "harness/Experiment.h"
#include "support/Json.h"
#include "support/TablePrinter.h"
#include "vm/TraceVM.h"
#include "workloads/Workloads.h"

#include <chrono>
#include <fstream>
#include <iostream>

using namespace jtc;

namespace {

struct Sample {
  std::string Workload;
  double PlainSeconds = 0;
  double ValidatedSeconds = 0;
  uint64_t TracesChecked = 0;
  uint64_t TracesRejected = 0;

  double overheadPercent() const {
    return PlainSeconds > 0
               ? (ValidatedSeconds - PlainSeconds) / PlainSeconds * 100.0
               : 0.0;
  }
};

double secondsOf(TraceVM &VM) {
  auto T0 = std::chrono::steady_clock::now();
  VM.run();
  auto T1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(T1 - T0).count();
}

Sample measure(const WorkloadInfo &W, int Repeats) {
  Sample S;
  S.Workload = W.Name;
  Module M = W.Build(W.DefaultScale);
  PreparedModule PM(M);

  S.PlainSeconds = 1e100;
  for (int I = 0; I < Repeats; ++I) {
    TraceVM VM(PM, VmOptions().validate(ValidateMode::Off));
    S.PlainSeconds = std::min(S.PlainSeconds, secondsOf(VM));
  }

  S.ValidatedSeconds = 1e100;
  for (int I = 0; I < Repeats; ++I) {
    TraceVM VM(PM, VmOptions().validate(ValidateMode::On));
    S.ValidatedSeconds = std::min(S.ValidatedSeconds, secondsOf(VM));
    const TraceCache::CacheStats &CS = VM.traceCache().stats();
    S.TracesChecked = CS.TracesValidated;
    S.TracesRejected = CS.ValidationRejects;
  }
  return S;
}

void writeJson(std::ostream &OS, const std::vector<Sample> &Samples) {
  JsonWriter W(OS);
  W.beginObject().field("table", "validate_overhead").key("records");
  W.beginArray();
  for (const Sample &S : Samples) {
    W.beginObject()
        .field("workload", S.Workload)
        .fieldReal("plain_seconds", S.PlainSeconds)
        .fieldReal("validated_seconds", S.ValidatedSeconds)
        .fieldReal("overhead_pct", S.overheadPercent())
        .fieldUInt("traces_checked", S.TracesChecked)
        .fieldUInt("traces_rejected", S.TracesRejected)
        .endObject();
  }
  W.endArray().endObject();
  OS << "\n";
}

} // namespace

int main(int argc, char **argv) {
  std::string JsonOut = parseBenchJsonArg(argc, argv, "validate_overhead");
  std::cout << "Translation-validation overhead (Table VI methodology)\n"
            << "(--validate=off vs --validate=on; validation runs once per "
               "constructed trace)\n\n";

  TablePrinter T({"benchmark", "off (s)", "on (s)", "overhead (%)",
                  "traces checked", "rejected"});
  std::vector<Sample> Samples;
  double TotalPlain = 0, TotalValidated = 0;
  uint64_t TotalChecked = 0, TotalRejected = 0;
  for (const WorkloadInfo &W : allWorkloads()) {
    std::cerr << "  timing " << W.Name << "...\n";
    Sample S = measure(W, /*Repeats=*/3);
    T.addRow({S.Workload, TablePrinter::fmt(S.PlainSeconds, 3),
              TablePrinter::fmt(S.ValidatedSeconds, 3),
              TablePrinter::fmtPercent(
                  (S.ValidatedSeconds - S.PlainSeconds) / S.PlainSeconds, 1),
              std::to_string(S.TracesChecked),
              std::to_string(S.TracesRejected)});
    TotalPlain += S.PlainSeconds;
    TotalValidated += S.ValidatedSeconds;
    TotalChecked += S.TracesChecked;
    TotalRejected += S.TracesRejected;
    Samples.push_back(std::move(S));
  }
  T.print(std::cout);
  std::cout << "\nacross all benchmarks: validation adds "
            << TablePrinter::fmtPercent(
                   (TotalValidated - TotalPlain) / TotalPlain, 1)
            << " wall-clock over " << TotalChecked << " checked traces ("
            << TotalRejected << " rejected)\n";

  if (!JsonOut.empty()) {
    std::ofstream OS(JsonOut);
    if (!OS) {
      std::cerr << "cannot open '" << JsonOut << "' for writing\n";
      return 1;
    }
    writeJson(OS, Samples);
    std::cerr << "wrote " << JsonOut << "\n";
  }
  return 0;
}
