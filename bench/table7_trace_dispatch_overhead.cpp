//===- bench/table7_trace_dispatch_overhead.cpp - Paper Table VII ---------===//
///
/// Regenerates Table VII: the expected overhead of the trace dispatching
/// model. Following the paper's methodology, the per-million-dispatch
/// profiling cost from the Table VI experiment is multiplied by the
/// number of dispatches the trace-dispatching model performs (block
/// dispatches outside traces plus one dispatch per trace), and compared
/// with the unprofiled runtime. Expected shape: trace dispatch cuts the
/// dispatch count several-fold, bringing profiling overhead from tens of
/// percent down to single digits (paper: 1.7%-6.8%, average 4.5%).
///
//===----------------------------------------------------------------------===//

#include "harness/Experiment.h"
#include "support/TablePrinter.h"

#include <iostream>

using namespace jtc;

int main(int argc, char **argv) {
  std::string JsonOut =
      parseBenchJsonArg(argc, argv, "table7_trace_dispatch_overhead");
  std::cout << "Table VII: Profiler dispatch overhead under trace "
               "dispatching\n"
            << "(paper: expected overhead 1.7%-6.8%, average 4.5%)\n\n";

  TablePrinter T({"benchmark", "trace dispatches (M)",
                  "overhead per 1e6 dispatches (s)", "expected overhead (s)",
                  "% overhead"});
  double PctSum = 0;
  std::vector<BenchRecord> Records;
  for (const WorkloadInfo &W : allWorkloads()) {
    std::cerr << "  timing " << W.Name << "...\n";
    OverheadSample S = measureProfilerOverhead(W, /*ScaleOverride=*/0,
                                               /*Repeats=*/3);
    // Count the trace-dispatching model's dispatches at the recommended
    // configuration (97% threshold, delay 64).
    VmStats V = runWorkload(
        W, VmOptions().completionThreshold(0.97).startStateDelay(64));
    BenchRecord R = BenchRecord::forStats(W.Name, 0.97, 64, V);
    R.HasOverhead = true;
    R.Overhead = S;
    Records.push_back(std::move(R));
    double PerDispatchSec = S.overheadPerMillionDispatches() / 1e6;
    double ExpectedSec =
        static_cast<double>(V.totalDispatches()) * PerDispatchSec;
    double Pct = ExpectedSec / S.PlainSeconds;
    PctSum += Pct;
    T.addRow({W.Name,
              TablePrinter::fmt(static_cast<double>(V.totalDispatches()) / 1e6,
                                2),
              TablePrinter::fmt(S.overheadPerMillionDispatches(), 4),
              TablePrinter::fmt(ExpectedSec, 4),
              TablePrinter::fmtPercent(Pct, 1)});
  }
  T.print(std::cout);
  std::cout << "\naverage expected overhead: "
            << TablePrinter::fmtPercent(
                   PctSum / static_cast<double>(allWorkloads().size()), 1)
            << " (paper: 4.5%)\n";
  maybeWriteBenchJson(JsonOut, "table7_trace_dispatch_overhead", Records);
  return 0;
}
