//===- bench/throughput_scaling.cpp - Service scaling experiment ----------===//
///
/// The serving-layer experiment the paper never ran: requests/sec as the
/// VmService worker pool grows, and the warm-handoff effect -- what a
/// session costs when it starts from a published ProfileSnapshot instead
/// of cold counters (the start-state delay and trace-construction warmup
/// of Tables IV-VI, amortized across sessions).
///
/// Two tables:
///   1. Throughput scaling: wall time and requests/sec for the same
///      request batch at 1/2/4/8 workers, with speedup vs 1 worker. On a
///      multi-core host the 8-worker row is expected to clear 3x; sessions
///      share nothing on the hot path, so scaling is limited only by
///      memory bandwidth and the queue.
///   2. Warm vs cold sessions, per workload: profiler signals, trace
///      dispatches and mean latency for cold sessions (every session pays
///      warmup) against warm sessions (all but the donor seeded).
///
/// Usage: throughput_scaling [--json=FILE] [--requests=N] [--scale=N]
///
//===----------------------------------------------------------------------===//

#include "server/VmService.h"
#include "support/ArgParse.h"
#include "support/Json.h"
#include "support/TablePrinter.h"

#include <chrono>
#include <fstream>
#include <iostream>
#include <thread>
#include <vector>

using namespace jtc;

namespace {

struct ScalingRow {
  unsigned Workers = 0;
  double WallSeconds = 0;
  double RequestsPerSecond = 0;
  double Speedup = 0;
};

struct WarmRow {
  std::string Workload;
  // Mean per-session values over the batch, donor/cold sessions and
  // seeded sessions reported separately.
  double ColdSignals = 0, WarmSignals = 0;
  double ColdConstructed = 0, WarmSeeded = 0;
  double ColdDispatchRate = 0, WarmDispatchRate = 0; ///< TraceDispatches/1k blocks.
  double ColdSeconds = 0, WarmSeconds = 0;
  uint64_t WarmSessions = 0, ColdSessions = 0;
};

double wallRun(VmService &Svc, const std::string &Name, uint32_t Requests) {
  std::vector<std::future<SessionResult>> Fs;
  Fs.reserve(Requests);
  auto T0 = std::chrono::steady_clock::now();
  for (uint32_t I = 0; I < Requests; ++I)
    Fs.push_back(Svc.submit({Name}));
  for (std::future<SessionResult> &F : Fs)
    F.get();
  auto T1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(T1 - T0).count();
}

/// Table 1: the same batch at growing pool sizes.
std::vector<ScalingRow> runScaling(uint32_t Requests, uint32_t Scale) {
  const WorkloadInfo *W = findWorkload("compress");
  std::vector<ScalingRow> Rows;
  for (unsigned Workers : {1u, 2u, 4u, 8u}) {
    std::cerr << "  scaling: " << Workers << " workers, " << Requests
              << " requests...\n";
    VmService Svc(ServiceOptions().workers(Workers));
    Svc.registerWorkload(*W, Scale);
    // One throwaway request publishes the snapshot so every measured
    // session is warm and the batches are comparable across pool sizes.
    Svc.run({W->Name});
    ScalingRow R;
    R.Workers = Workers;
    R.WallSeconds = wallRun(Svc, W->Name, Requests);
    R.RequestsPerSecond =
        R.WallSeconds > 0 ? static_cast<double>(Requests) / R.WallSeconds : 0;
    Rows.push_back(R);
  }
  for (ScalingRow &R : Rows)
    R.Speedup = Rows[0].RequestsPerSecond > 0
                    ? R.RequestsPerSecond / Rows[0].RequestsPerSecond
                    : 0;
  return Rows;
}

/// Mean of \p Member over the sessions of \p Rs selected by \p Warm.
template <typename Fn>
double meanOver(const std::vector<SessionResult> &Rs, bool Warm, Fn &&Get) {
  double Sum = 0;
  uint64_t N = 0;
  for (const SessionResult &R : Rs)
    if (R.WarmStart == Warm) {
      Sum += Get(R);
      ++N;
    }
  return N == 0 ? 0 : Sum / static_cast<double>(N);
}

/// Table 2: one service per (workload, warm/cold) cell, a small batch
/// each; per-session means of the warmup-sensitive statistics.
std::vector<WarmRow> runWarmVsCold(uint32_t Requests, uint32_t Scale) {
  std::vector<WarmRow> Rows;
  for (const WorkloadInfo &W : allWorkloads()) {
    std::cerr << "  warm-vs-cold: " << W.Name << "...\n";
    WarmRow Row;
    Row.Workload = W.Name;
    for (bool Warm : {false, true}) {
      VmService Svc(ServiceOptions().workers(1).warmHandoff(Warm));
      Svc.registerWorkload(W, Scale);
      // The first session is always cold (it is the donor when warm
      // handoff is on); it is excluded from both columns so each column
      // is a steady-state per-session cost.
      Svc.run({W.Name});
      std::vector<SessionResult> Sessions;
      for (uint32_t I = 0; I < Requests; ++I)
        Sessions.push_back(Svc.run({W.Name}));
      auto Signals = [](const SessionResult &R) {
        return static_cast<double>(R.Stats.Signals);
      };
      auto DispatchRate = [](const SessionResult &R) {
        return R.Stats.BlocksExecuted == 0
                   ? 0.0
                   : 1000.0 * static_cast<double>(R.Stats.TraceDispatches) /
                         static_cast<double>(R.Stats.BlocksExecuted);
      };
      auto Seconds = [](const SessionResult &R) { return R.Seconds; };
      if (Warm) {
        Row.WarmSignals = meanOver(Sessions, true, Signals);
        Row.WarmSeeded = meanOver(Sessions, true, [](const SessionResult &R) {
          return static_cast<double>(R.Stats.TracesSeeded);
        });
        Row.WarmDispatchRate = meanOver(Sessions, true, DispatchRate);
        Row.WarmSeconds = meanOver(Sessions, true, Seconds);
        for (const SessionResult &R : Sessions)
          Row.WarmSessions += R.WarmStart;
      } else {
        Row.ColdSignals = meanOver(Sessions, false, Signals);
        Row.ColdConstructed =
            meanOver(Sessions, false, [](const SessionResult &R) {
              return static_cast<double>(R.Stats.TracesConstructed);
            });
        Row.ColdDispatchRate = meanOver(Sessions, false, DispatchRate);
        Row.ColdSeconds = meanOver(Sessions, false, Seconds);
        Row.ColdSessions = Sessions.size();
      }
    }
    Rows.push_back(Row);
  }
  return Rows;
}

void printTables(const std::vector<ScalingRow> &Scaling,
                 const std::vector<WarmRow> &WarmCold) {
  std::cout << "\nThroughput scaling (warm sessions, compress):\n";
  TablePrinter T({"workers", "wall s", "req/s", "speedup"});
  for (const ScalingRow &R : Scaling)
    T.addRow({std::to_string(R.Workers), TablePrinter::fmt(R.WallSeconds, 3),
              TablePrinter::fmt(R.RequestsPerSecond, 1),
              TablePrinter::fmt(R.Speedup, 2) + "x"});
  T.print(std::cout);
  std::cout << "(hardware concurrency: " << std::thread::hardware_concurrency()
            << ")\n";

  std::cout << "\nWarm handoff vs cold start (per-session means, donor "
               "excluded):\n";
  TablePrinter U({"benchmark", "signals cold", "signals warm", "built cold",
                  "seeded warm", "disp/1k cold", "disp/1k warm", "ms cold",
                  "ms warm"});
  for (const WarmRow &R : WarmCold)
    U.addRow({R.Workload, TablePrinter::fmt(R.ColdSignals, 1),
              TablePrinter::fmt(R.WarmSignals, 1),
              TablePrinter::fmt(R.ColdConstructed, 1),
              TablePrinter::fmt(R.WarmSeeded, 1),
              TablePrinter::fmt(R.ColdDispatchRate, 2),
              TablePrinter::fmt(R.WarmDispatchRate, 2),
              TablePrinter::fmt(R.ColdSeconds * 1e3, 2),
              TablePrinter::fmt(R.WarmSeconds * 1e3, 2)});
  U.print(std::cout);
}

void writeJson(std::ostream &OS, const std::vector<ScalingRow> &Scaling,
               const std::vector<WarmRow> &WarmCold) {
  JsonWriter W(OS);
  W.beginObject();
  W.field("table", "throughput_scaling");
  W.key("scaling").beginArray();
  for (const ScalingRow &R : Scaling)
    W.beginObject()
        .fieldUInt("workers", R.Workers)
        .fieldReal("wall_seconds", R.WallSeconds)
        .fieldReal("requests_per_second", R.RequestsPerSecond)
        .fieldReal("speedup", R.Speedup)
        .endObject();
  W.endArray();
  W.key("warm_vs_cold").beginArray();
  for (const WarmRow &R : WarmCold)
    W.beginObject()
        .field("workload", R.Workload)
        .fieldReal("cold_signals", R.ColdSignals)
        .fieldReal("warm_signals", R.WarmSignals)
        .fieldReal("cold_traces_constructed", R.ColdConstructed)
        .fieldReal("warm_traces_seeded", R.WarmSeeded)
        .fieldReal("cold_dispatches_per_1k_blocks", R.ColdDispatchRate)
        .fieldReal("warm_dispatches_per_1k_blocks", R.WarmDispatchRate)
        .fieldReal("cold_seconds", R.ColdSeconds)
        .fieldReal("warm_seconds", R.WarmSeconds)
        .fieldUInt("warm_sessions", R.WarmSessions)
        .fieldUInt("cold_sessions", R.ColdSessions)
        .endObject();
  W.endArray();
  W.endObject();
  OS << "\n";
}

} // namespace

int main(int Argc, char **Argv) {
  std::string JsonPath;
  uint32_t Requests = 32;
  uint32_t Scale = 0;
  ArgParser P;
  P.strOpt("json", &JsonPath)
      .u32Opt("requests", &Requests)
      .u32Opt("scale", &Scale);
  if (!P.parse(Argc, Argv)) {
    std::cerr << "usage: throughput_scaling [--json=FILE] [--requests=N] "
                 "[--scale=N]\n";
    return 2;
  }

  std::cerr << "throughput_scaling: service scaling + warm handoff\n";
  std::vector<ScalingRow> Scaling = runScaling(Requests, Scale);
  std::vector<WarmRow> WarmCold = runWarmVsCold(std::min(Requests, 8u), Scale);
  printTables(Scaling, WarmCold);

  if (!JsonPath.empty()) {
    std::ofstream OS(JsonPath);
    if (!OS) {
      std::cerr << "cannot open '" << JsonPath << "' for writing\n";
      return 1;
    }
    writeJson(OS, Scaling, WarmCold);
    std::cerr << "wrote " << JsonPath << "\n";
  }
  return 0;
}
