//===- bench/table3_completion_rate.cpp - Paper Table III -----------------===//
///
/// Regenerates Table III: dynamic trace completion rate (completed /
/// entered) vs. threshold. Expected shape: completion stays at or above
/// the threshold almost everywhere, dipping only at the 95% threshold
/// where longer speculative traces are admitted.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace jtc;

int main(int argc, char **argv) {
  std::string JsonOut = parseBenchJsonArg(argc, argv, "table3_completion_rate");
  std::cout << "Table III: Trace Completion Rate vs. Threshold\n"
            << "(paper: >= ~95.5% everywhere, mostly 99%+)\n\n";
  bench::ThresholdSweep S = bench::runThresholdSweep();
  bench::printThresholdTable(
      S, "threshold", [](const VmStats &V) { return V.completionRate(); },
      [](double V) { return TablePrinter::fmtPercent(V, 2); });
  maybeWriteBenchJson(JsonOut, "table3_completion_rate",
                      bench::sweepRecords(S));
  return 0;
}
