//===- bench/ablation_microcosts.cpp - Component micro-costs --------------===//
///
/// Google-benchmark micro-costs for the mechanisms whose relative weights
/// the paper argues about in section 5.4: the per-dispatch profiler hook
/// (inline-cache hit vs. list search), the periodic decay pass, trace
/// construction, and the trace-cache entry lookup. Expected shape
/// (paper): hook << decay pass << trace construction, with the hook cost
/// dominating overall because it runs every dispatch.
///
//===----------------------------------------------------------------------===//

#include "profile/BranchCorrelationGraph.h"
#include "trace/TraceCache.h"

#include <benchmark/benchmark.h>

using namespace jtc;

namespace {

ProfilerConfig profConfig(uint32_t DecayInterval = 256) {
  ProfilerConfig C;
  C.StartStateDelay = 1;
  C.DecayInterval = DecayInterval;
  C.CompletionThreshold = 0.97;
  return C;
}

/// Per-dispatch hook cost when the inline cache hits (the steady state
/// the paper's "two comparisons, two pointer evaluations, one assignment"
/// refers to).
void BM_HookInlineCacheHit(benchmark::State &State) {
  BranchCorrelationGraph G(profConfig(/*DecayInterval=*/1u << 30));
  G.onBlockDispatch(1);
  G.onBlockDispatch(2);
  BlockId Next = 1;
  for (auto _ : State) {
    G.onBlockDispatch(Next);
    Next = Next == 1 ? 2 : 1;
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()));
}
BENCHMARK(BM_HookInlineCacheHit);

/// Hook cost when the prediction misses and the correlation list must be
/// searched (polymorphic sites). The fan-out is the parameter.
void BM_HookListSearch(benchmark::State &State) {
  auto Fanout = static_cast<BlockId>(State.range(0));
  BranchCorrelationGraph G(profConfig(/*DecayInterval=*/1u << 30));
  G.onBlockDispatch(1);
  BlockId Succ = 0;
  for (auto _ : State) {
    G.onBlockDispatch(2);
    G.onBlockDispatch(3 + (Succ++ % Fanout));
    G.onBlockDispatch(1);
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) * 3);
}
BENCHMARK(BM_HookListSearch)->Arg(2)->Arg(8)->Arg(32)->Arg(128);

/// Cost of one decay pass over a node (the periodic check the paper
/// estimates at ~25 dispatch costs).
void BM_DecayPass(benchmark::State &State) {
  BranchCorrelationGraph G(profConfig(/*DecayInterval=*/2));
  G.onBlockDispatch(1);
  G.onBlockDispatch(2);
  BlockId Next = 1;
  // Every second hook triggers a decay: the measured loop alternates
  // hook-only and hook+decay, so item throughput shows the blended cost.
  for (auto _ : State) {
    G.onBlockDispatch(Next);
    Next = Next == 1 ? 2 : 1;
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()));
}
BENCHMARK(BM_DecayPass);

/// Full trace construction from a signal over an 8-block loop.
void BM_TraceConstruction(benchmark::State &State) {
  BranchCorrelationGraph G(profConfig());
  for (unsigned I = 0; I < 2000; ++I)
    for (BlockId B = 1; B <= 8; ++B)
      G.onBlockDispatch(B);
  TraceConfig TC;
  TraceBuilder Builder(G, TC);
  NodeId Changed = G.findNode(1, 2);
  for (auto _ : State) {
    TraceBuilder::BuildResult R = Builder.build(Changed);
    benchmark::DoNotOptimize(R.Candidates.data());
  }
}
BENCHMARK(BM_TraceConstruction);

/// The per-dispatch trace-cache entry lookup (hit and miss).
void BM_TraceEntryLookup(benchmark::State &State) {
  BranchCorrelationGraph G(profConfig());
  TraceCache Cache(G, TraceConfig());
  G.setSink(&Cache);
  for (unsigned I = 0; I < 2000; ++I)
    for (BlockId B = 1; B <= 8; ++B)
      G.onBlockDispatch(B);
  bool Hit = true;
  for (auto _ : State) {
    const Trace *T = Hit ? Cache.findTrace(8, 1) : Cache.findTrace(77, 78);
    benchmark::DoNotOptimize(T);
    Hit = !Hit;
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()));
}
BENCHMARK(BM_TraceEntryLookup);

} // namespace

BENCHMARK_MAIN();
