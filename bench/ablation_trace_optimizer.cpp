//===- bench/ablation_trace_optimizer.cpp - Future-work measurement -------===//
///
/// The paper's closing future-work question: "what further improvement
/// can be achieved by applying optimizations to the traces". This bench
/// runs each workload at the recommended configuration, optimizes every
/// live trace, and weights the per-trace instruction reduction by how
/// often that trace completed -- i.e. the fraction of the trace-covered
/// instruction stream that trace-level optimization eliminates.
///
/// Expected shape: regular numeric benchmarks (scimark, mpegaudio) fold
/// more (constant-heavy kernels); branchy ones (javac, soot) keep more
/// guards and eliminate less.
///
//===----------------------------------------------------------------------===//

#include "analysis/Analysis.h"
#include "harness/Experiment.h"
#include "opt/TraceOptimizer.h"
#include "support/TablePrinter.h"

#include <iostream>

using namespace jtc;

namespace {

/// Runs one workload, optimizes every live trace in the given mode, and
/// adds a row to \p T. The baseline "before" is always the *uninlined,
/// unoptimized* linearization, so the inlined mode's reduction includes
/// what inlining itself exposes (call overhead becomes foldable data
/// flow). Every trace is optimized twice -- without and with static
/// analysis facts -- so the table shows what liveness buys at side
/// exits (guard materialization size, "exit locals/guard") and what
/// constant seeding buys in folds.
void reportMode(TablePrinter &T, const WorkloadInfo &W, bool Inline) {
  std::cerr << "  running " << W.Name << (Inline ? " (inlined)" : "")
            << "...\n";
  Module M = W.Build(W.DefaultScale / 2);
  PreparedModule PM(M);
  analysis::ModuleAnalysis Facts = analysis::ModuleAnalysis::compute(M);
  TraceVM VM(PM, VmOptions().completionThreshold(0.97).startStateDelay(64));
  VM.run();

  OptStats NoFacts, WithFacts;
  uint64_t WeightedBefore = 0, WeightedAfter = 0;
  size_t Live = 0;
  for (const Trace &Tr : VM.traceCache().traces()) {
    if (!Tr.Alive)
      continue;
    ++Live;
    // Baseline: uninlined, unoptimized.
    uint64_t Before = 0;
    for (const LinearSegment &Seg : linearizeTrace(PM, Tr, false))
      Before += Seg.numInstructions();
    optimizeTrace(PM, Tr, NoFacts, /*InlineStaticCalls=*/Inline);
    OptStats St;
    uint64_t After = 0;
    for (const LinearSegment &Seg :
         optimizeTrace(PM, Tr, St, /*InlineStaticCalls=*/Inline, &Facts))
      After += Seg.numInstructions();
    WeightedBefore += Before * Tr.Completed;
    WeightedAfter += After * Tr.Completed;
    WithFacts.InstructionsBefore += Before;
    WithFacts.InstructionsAfter += After;
    WithFacts.GuardsAfter += St.GuardsAfter;
    WithFacts.GuardsEliminated += St.GuardsEliminated;
    WithFacts.ConstantsFolded += St.ConstantsFolded;
    WithFacts.DeadStores += St.DeadStores;
    WithFacts.GuardExitLocalsFlushed += St.GuardExitLocalsFlushed;
    WithFacts.GuardExitLocalsSkipped += St.GuardExitLocalsSkipped;
  }
  double WeightedReduction =
      WeightedBefore == 0 ? 0.0
                          : 1.0 - static_cast<double>(WeightedAfter) /
                                      static_cast<double>(WeightedBefore);
  T.addRow({W.Name, Inline ? "inline" : "plain", std::to_string(Live),
            std::to_string(WithFacts.InstructionsBefore),
            std::to_string(WithFacts.InstructionsAfter),
            TablePrinter::fmtPercent(WeightedReduction, 1),
            std::to_string(WithFacts.GuardsAfter),
            std::to_string(WithFacts.GuardsEliminated),
            std::to_string(WithFacts.ConstantsFolded),
            std::to_string(WithFacts.DeadStores),
            TablePrinter::fmt(NoFacts.localsPerSideExit(), 2),
            TablePrinter::fmt(WithFacts.localsPerSideExit(), 2),
            std::to_string(WithFacts.GuardExitLocalsSkipped)});
}

} // namespace

int main() {
  std::cout << "Ablation: trace-level optimization (the paper's future "
               "work)\n\n";
  TablePrinter T({"benchmark", "mode", "live traces", "instrs before",
                  "instrs after", "weighted reduction", "guards kept",
                  "guards eliminated", "const folds", "dead stores",
                  "exit locals/guard", "exit locals/guard (live)",
                  "exit stores skipped"});
  for (const WorkloadInfo &W : allWorkloads()) {
    reportMode(T, W, /*Inline=*/false);
    reportMode(T, W, /*Inline=*/true);
  }
  T.print(std::cout);
  std::cout << "\n(weighted reduction = instruction savings relative to "
               "the uninlined, unoptimized trace,\n weighted by how often "
               "each trace completed; \"inline\" flattens static calls "
               "into the segment first;\n \"exit locals/guard\" = deferred "
               "stores materialized per surviving side exit, without and\n "
               "with liveness facts -- dead-at-exit locals are left stale)\n";
  return 0;
}
