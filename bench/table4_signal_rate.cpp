//===- bench/table4_signal_rate.cpp - Paper Table IV ----------------------===//
///
/// Regenerates Table IV: thousands of block dispatches per state-change
/// signal vs. threshold. Expected shape: the regular benchmarks
/// (compress, mpegaudio, scimark) see orders of magnitude more dispatches
/// per signal than the irregular ones (javac, soot), and every value sits
/// far above the 256-dispatch decay interval.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace jtc;

int main(int argc, char **argv) {
  std::string JsonOut = parseBenchJsonArg(argc, argv, "table4_signal_rate");
  std::cout << "Table IV: Thousands of Dispatches per State Change Signal\n"
            << "(paper: javac/soot ~10-11K, compress/raytrace ~37-43K, "
               "scimark up to 554K)\n\n";
  bench::ThresholdSweep S = bench::runThresholdSweep();
  bench::printThresholdTable(
      S, "threshold",
      [](const VmStats &V) { return V.dispatchesPerSignal() / 1000.0; },
      [](double V) { return TablePrinter::fmt(V, 1); });
  maybeWriteBenchJson(JsonOut, "table4_signal_rate", bench::sweepRecords(S));
  return 0;
}
