//===- bench/opt_memory.cpp - Memory-optimization check elision -----------===//
///
/// The Table VII workload set rerun with the alias-analysis-driven
/// dynamic-check elision off and on, on both trace-execution tiers.
/// Elision never changes what a trace computes -- it only skips
/// null/liveness/bounds checks the field-sensitive alias analysis proved
/// redundant on the trace path -- so the run is gated on the stats
/// digest: all four configurations (interp/jit x off/on) must fold to
/// the same digest or the numbers are meaningless and the bench aborts.
///
/// Columns: per tier, best-of-N wall seconds with elision off and on,
/// plus the elision-site count (static: annotated heap accesses across
/// installed traces) and the dynamic number of checks elided. The bench
/// exits non-zero when fewer than 4 of the 6 workloads show a measurable
/// reduction (elided checks > 0) on every tier -- the regression gate CI
/// relies on.
///
/// JSON artifact: one record per (workload, tier); "overhead" reuses the
/// OverheadSample shape with plain_seconds = elision-off wall time and
/// profiled_seconds = elision-on wall time, and "stats" is the
/// elision-on run's statistics block (whose mem_elision_sites and
/// mem_checks_elided counters carry the elision telemetry).
///
//===----------------------------------------------------------------------===//

#include "bytecode/Verifier.h"
#include "harness/Experiment.h"
#include "support/TablePrinter.h"
#include "support/Timer.h"

#include <cstdio>
#include <cstdlib>
#include <iostream>

using namespace jtc;

namespace {

VmOptions tierOptions(backend::BackendKind K, bool Elide) {
  // The recommended configuration of the Table VII experiment, with
  // immediate promotion so the jit tier serves every hot dispatch.
  return VmOptions()
      .completionThreshold(0.97)
      .startStateDelay(64)
      .backend(K)
      .jitPromoteAfter(0)
      .memElide(Elide);
}

/// Best-of-\p Repeats wall seconds for \p PM under \p Options; the stats
/// of the last run are returned through \p Stats.
double timeRuns(const PreparedModule &PM, const VmOptions &Options,
                int Repeats, VmStats &Stats) {
  double Best = 1e100;
  for (int Rep = 0; Rep < Repeats; ++Rep) {
    TraceVM VM(PM, Options);
    Timer T;
    RunResult R = VM.run();
    double Sec = T.seconds();
    if (R.Status == RunStatus::Trapped) {
      std::fprintf(stderr, "workload trapped: %s\n", trapName(R.Trap));
      std::abort();
    }
    if (Sec < Best)
      Best = Sec;
    Stats = VM.currentStats();
  }
  return Best;
}

} // namespace

int main(int argc, char **argv) {
  std::string JsonOut = parseBenchJsonArg(argc, argv, "opt_memory");
  std::cout << "Memory optimization: alias-analysis check elision off vs on, "
               "Table VII workloads\n\n";

  struct Tier {
    const char *Name;
    backend::BackendKind Kind;
  };
  std::vector<Tier> Tiers = {{"interp", backend::BackendKind::Interp}};
  if (backend::jitSupportedHost())
    Tiers.push_back({"jit", backend::BackendKind::Jit});
  else
    std::cout << "(no template-JIT support on this host; interp tier only)\n\n";

  TablePrinter T({"benchmark", "tier", "off (s)", "on (s)", "speedup",
                  "elision sites", "checks elided"});
  std::vector<BenchRecord> Records;
  // Reduced[tier] = workloads with a measurable reduction on that tier.
  std::vector<int> Reduced(Tiers.size(), 0);
  for (const WorkloadInfo &W : allWorkloads()) {
    std::cerr << "  timing " << W.Name << "...\n";
    Module M = W.Build(W.DefaultScale);
    std::vector<VerifyError> Errors = verifyModule(M);
    if (!Errors.empty()) {
      std::fprintf(stderr, "workload '%s' failed verification\n", W.Name);
      return 1;
    }
    PreparedModule PM(M);
    uint64_t RefDigest = 0;
    bool HaveRef = false;
    for (size_t Ti = 0; Ti < Tiers.size(); ++Ti) {
      VmStats Off, On;
      double OffSec = timeRuns(PM, tierOptions(Tiers[Ti].Kind, false), 3, Off);
      double OnSec = timeRuns(PM, tierOptions(Tiers[Ti].Kind, true), 3, On);
      // The digest gate: elision (and the tier) must be replay-neutral.
      if (!HaveRef) {
        RefDigest = Off.digest();
        HaveRef = true;
      }
      for (const VmStats *S : {&Off, &On}) {
        if (S->digest() != RefDigest) {
          std::fprintf(
              stderr, "stats digest mismatch on '%s' (%s): %llx vs %llx\n",
              W.Name, Tiers[Ti].Name,
              static_cast<unsigned long long>(S->digest()),
              static_cast<unsigned long long>(RefDigest));
          return 1;
        }
      }
      if (Off.MemChecksElided != 0) {
        std::fprintf(stderr, "'%s' (%s): elision-off run elided %llu checks\n",
                     W.Name, Tiers[Ti].Name,
                     static_cast<unsigned long long>(Off.MemChecksElided));
        return 1;
      }
      if (On.MemChecksElided > 0)
        ++Reduced[Ti];
      T.addRow({W.Name, Tiers[Ti].Name, TablePrinter::fmt(OffSec, 3),
                TablePrinter::fmt(OnSec, 3),
                TablePrinter::fmt(OffSec / OnSec, 2) + "x",
                std::to_string(On.MemElisionSites),
                std::to_string(On.MemChecksElided)});
      BenchRecord R = BenchRecord::forStats(
          std::string(W.Name) + "/" + Tiers[Ti].Name, 0.97, 64, On);
      R.HasOverhead = true;
      R.Overhead.PlainSeconds = OffSec;
      R.Overhead.ProfiledSeconds = OnSec;
      R.Overhead.Dispatches = On.TraceDispatches;
      R.Overhead.Instructions = On.Instructions;
      Records.push_back(std::move(R));
    }
  }
  T.print(std::cout);

  bool Ok = true;
  for (size_t Ti = 0; Ti < Tiers.size(); ++Ti) {
    std::cout << "\n" << Tiers[Ti].Name << ": measurable check reduction on "
              << Reduced[Ti] << "/" << allWorkloads().size() << " workloads";
    if (Reduced[Ti] < 4) {
      std::cout << " (expected >= 4)";
      Ok = false;
    }
  }
  std::cout << "\n";
  maybeWriteBenchJson(JsonOut, "opt_memory", Records);
  return Ok ? 0 : 1;
}
