//===- bench/fig1_fig2_dispatch_models.cpp - Paper Figures 1 and 2 --------===//
///
/// Quantifies the dispatch-model story of the paper's Figures 1 and 2
/// (and the trace extension of section 3.1): the same program run under
///
///   Fig. 1 - ordinary interpreter:          one dispatch per instruction
///   Fig. 2 - direct-threaded inlining:      one dispatch per basic block
///   Sec 3.1 - trace cache dispatch:         one dispatch per block *or*
///                                           whole trace
///
/// Expected shape: block dispatch cuts dispatches by the average block
/// size (~5-8x); trace dispatch cuts them several-fold further on the
/// regular benchmarks.
///
//===----------------------------------------------------------------------===//

#include "harness/Experiment.h"
#include "interp/InstructionInterpreter.h"
#include "support/TablePrinter.h"

#include <iostream>

using namespace jtc;

int main() {
  std::cout << "Figures 1 & 2: dispatches per model (millions)\n\n";
  TablePrinter T({"benchmark", "instructions (M)", "per-instr (M)",
                  "per-block (M)", "per-trace (M)", "block/instr",
                  "trace/block"});
  for (const WorkloadInfo &W : allWorkloads()) {
    std::cerr << "  running " << W.Name << "...\n";
    // Smaller scale: the per-instruction model is the slow one.
    uint32_t Scale = std::max(1u, W.DefaultScale / 4);
    Module M = W.Build(Scale);

    Machine M1(M);
    RunResult R1 = runInstructions(M1);

    PreparedModule PM(M);
    Machine M2(M);
    BlockStepper Stepper(PM, M2);
    RunResult R2 = runBlocks(Stepper);

    TraceVM VM(PM,
               VmOptions().completionThreshold(0.97).startStateDelay(64));
    RunResult R3 = VM.run();

    auto InM = [](uint64_t V) {
      return TablePrinter::fmt(static_cast<double>(V) / 1e6, 2);
    };
    T.addRow({W.Name, InM(R1.Instructions), InM(R1.Dispatches),
              InM(R2.Dispatches), InM(R3.Dispatches),
              TablePrinter::fmt(static_cast<double>(R1.Dispatches) /
                                    static_cast<double>(R2.Dispatches),
                                1) +
                  "x",
              TablePrinter::fmt(static_cast<double>(R2.Dispatches) /
                                    static_cast<double>(R3.Dispatches),
                                1) +
                  "x"});
  }
  T.print(std::cout);
  return 0;
}
