//===- bench/warm_start.cpp - Disk-warm vs cold time-to-coverage ----------===//
///
/// Quantifies what persistent checkpointing buys: for each workload, a
/// cold session is sampled every few thousand blocks to find how long it
/// takes trace coverage to reach 90% of its own steady-state value; its
/// profile is then checkpointed to a .jtcp file, reloaded into a fresh
/// session (the full disk round trip, decode + fingerprint gate +
/// re-validation included), and the warm session's time to the same
/// coverage target is measured the same way.
///
///   warm_start [--json=FILE]
///
/// The JSON artifact records, per workload: the coverage target, blocks
/// to target cold and disk-warm, traces seeded from disk, the snapshot
/// file size, and the cold/warm speedup.
///
//===----------------------------------------------------------------------===//

#include "harness/Experiment.h"
#include "persist/Snapshot.h"
#include "support/Json.h"
#include "support/TablePrinter.h"
#include "workloads/Workloads.h"

#include <filesystem>
#include <fstream>
#include <iostream>

using namespace jtc;

namespace {

/// Sampling grain for the time-to-coverage scan.
constexpr uint64_t SampleInterval = 5000;

struct WarmStartResult {
  std::string Workload;
  double TargetCoverage = 0;    ///< 90% of the cold steady-state coverage.
  uint64_t ColdBlocks = 0;      ///< Blocks to reach the target, cold.
  uint64_t WarmBlocks = 0;      ///< Blocks to reach the target, disk-warm.
  uint64_t TracesSeeded = 0;    ///< Traces installed from the .jtcp file.
  uint64_t SnapshotBytes = 0;   ///< On-disk snapshot size.
};

/// First sampled clock at which cumulative trace coverage reaches
/// \p Target; 0 when no sample does (the run never got there).
uint64_t blocksToCoverage(const PhaseSampler<VmStats> &Sampler,
                          double Target) {
  for (const PhaseSample<VmStats> &S : Sampler.samples())
    if (S.Cumulative.traceCoverage() >= Target)
      return S.Clock;
  return 0;
}

VmOptions sampledOptions() {
  return VmOptions().telemetry(true).sampleInterval(SampleInterval);
}

bool measureWorkload(const WorkloadInfo &W,
                     const std::filesystem::path &Scratch,
                     WarmStartResult &Out) {
  Out.Workload = W.Name;
  Module M = W.Build(W.DefaultScale);
  PreparedModule PM(M);

  // Cold: pay the full warmup; the steady-state coverage it eventually
  // reaches defines this workload's target.
  TraceVM Cold(PM, sampledOptions());
  if (Cold.run().Status != RunStatus::Finished)
    return false;
  double FinalCoverage = Cold.stats().traceCoverage();
  if (FinalCoverage <= 0)
    return false;
  Out.TargetCoverage = 0.9 * FinalCoverage;
  Out.ColdBlocks = blocksToCoverage(Cold.sampler(), Out.TargetCoverage);

  // Checkpoint to disk and warm-start a fresh session through the real
  // load pipeline.
  std::string Path = (Scratch / (std::string(W.Name) + ".jtcp")).string();
  persist::PersistError Err;
  if (!persist::saveProfile(Cold, Path, Err)) {
    std::cerr << "  save failed: " << Err.message() << "\n";
    return false;
  }
  std::error_code Ec;
  Out.SnapshotBytes = std::filesystem::file_size(Path, Ec);

  TraceVM Warm(PM, sampledOptions());
  persist::LoadReport Report;
  if (!persist::loadProfile(Warm, Path, Report, Err)) {
    std::cerr << "  load failed: " << Err.message() << "\n";
    return false;
  }
  Out.TracesSeeded = Report.Traces;
  if (Warm.run().Status != RunStatus::Finished)
    return false;
  Out.WarmBlocks = blocksToCoverage(Warm.sampler(), Out.TargetCoverage);
  return Out.ColdBlocks > 0 && Out.WarmBlocks > 0;
}

double speedup(const WarmStartResult &R) {
  return R.WarmBlocks == 0 ? 0.0
                           : static_cast<double>(R.ColdBlocks) /
                                 static_cast<double>(R.WarmBlocks);
}

void writeArtifact(const std::string &Path,
                   const std::vector<WarmStartResult> &Results) {
  if (Path.empty())
    return;
  std::ofstream OS(Path);
  if (!OS) {
    std::cerr << "cannot open '" << Path << "' for writing\n";
    exit(1);
  }
  JsonWriter W(OS);
  W.beginObject().field("table", "warm_start");
  W.fieldUInt("sample_interval", SampleInterval);
  W.key("records").beginArray();
  for (const WarmStartResult &R : Results) {
    W.beginObject()
        .field("workload", R.Workload)
        .fieldReal("target_coverage", R.TargetCoverage)
        .fieldUInt("cold_blocks_to_target", R.ColdBlocks)
        .fieldUInt("warm_blocks_to_target", R.WarmBlocks)
        .fieldUInt("traces_seeded", R.TracesSeeded)
        .fieldUInt("snapshot_bytes", R.SnapshotBytes)
        .fieldReal("speedup", speedup(R))
        .endObject();
  }
  W.endArray().endObject();
  OS << "\n";
  std::cerr << "wrote " << Path << "\n";
}

} // namespace

int main(int Argc, char **Argv) {
  std::string JsonPath = parseBenchJsonArg(Argc, Argv, "warm_start");
  if (!TelemetryCompiledIn) {
    std::cerr << "warm_start needs the phase sampler; rebuild with "
                 "-DJTC_TELEMETRY=ON\n";
    return 0; // Not a failure: the experiment just cannot run here.
  }

  std::filesystem::path Scratch =
      std::filesystem::temp_directory_path() / "jtc-warm-start-bench";
  std::filesystem::create_directories(Scratch);

  std::vector<WarmStartResult> Results;
  for (const WorkloadInfo &W : allWorkloads()) {
    std::cerr << "  measuring " << W.Name << "...\n";
    WarmStartResult R;
    if (measureWorkload(W, Scratch, R))
      Results.push_back(R);
    else
      std::cerr << "  " << W.Name << ": skipped (no usable coverage)\n";
  }

  TablePrinter T({"benchmark", "target cov", "cold blocks", "warm blocks",
                  "seeded", "snapshot KB", "speedup"});
  size_t WarmWins = 0;
  for (const WarmStartResult &R : Results) {
    if (R.WarmBlocks < R.ColdBlocks)
      ++WarmWins;
    T.addRow({R.Workload, TablePrinter::fmtPercent(R.TargetCoverage, 1),
              std::to_string(R.ColdBlocks), std::to_string(R.WarmBlocks),
              std::to_string(R.TracesSeeded),
              std::to_string(R.SnapshotBytes / 1024),
              TablePrinter::fmt(speedup(R), 2) + "x"});
  }
  std::cout << "\nWarm start from disk: blocks to reach 90% of steady-state "
               "trace coverage\n\n";
  T.print(std::cout);
  std::cout << "\ndisk-warm reached target first on " << WarmWins << " of "
            << Results.size() << " workloads\n";

  writeArtifact(JsonPath, Results);
  return 0;
}
