//===- bench/baseline_net_comparison.cpp - BCG vs. Dynamo-style NET -------===//
///
/// Quantifies the paper's comparative argument (sections 2-3): both
/// strategies run over the identical substrate and workloads, reporting
/// the paper's dependent values side by side.
///
/// Expected shape (the paper's claims):
///  - coverage: comparable -- NET's weakness is not selection reach;
///  - completion rate: BCG higher, especially on data-dependent code
///    (NET assumes the next-executing tail, BCG verifies correlations);
///  - stability: BCG constructs far fewer traces for the same coverage
///    and never flushes wholesale (targeted rebuilds instead).
///
//===----------------------------------------------------------------------===//

#include "baseline/NetTraceVm.h"
#include "harness/Experiment.h"
#include "support/TablePrinter.h"

#include <iostream>

using namespace jtc;

int main() {
  std::cout << "Baseline comparison: branch-correlation-graph traces vs. "
               "Dynamo-style NET\n(97% threshold / delay 64 vs. hot "
               "threshold 50; same VM, same workloads)\n\n";

  TablePrinter T({"benchmark", "strategy", "trace len", "coverage",
                  "completion", "traces built", "live traces",
                  "flushes", "dispatch reduction"});

  for (const WorkloadInfo &W : allWorkloads()) {
    std::cerr << "  running " << W.Name << "...\n";
    Module M = W.Build(W.DefaultScale / 2);
    PreparedModule PM(M);

    TraceVM Bcg(PM,
                VmOptions().completionThreshold(0.97).startStateDelay(64));
    Bcg.run();
    const VmStats &B = Bcg.stats();

    NetTraceVm Net(PM, NetConfig());
    Net.run();
    const VmStats &N = Net.stats();

    auto Row = [&](const char *Name, const VmStats &S, uint64_t Flushes) {
      T.addRow({W.Name, Name, TablePrinter::fmt(S.avgCompletedTraceLength(), 1),
                TablePrinter::fmtPercent(S.completedCoverage(), 1),
                TablePrinter::fmtPercent(S.completionRate(), 2),
                std::to_string(S.TracesConstructed),
                std::to_string(S.LiveTraces), std::to_string(Flushes),
                TablePrinter::fmt(
                    static_cast<double>(S.BlocksExecuted) /
                        static_cast<double>(S.totalDispatches()),
                    1) +
                    "x"});
    };
    Row("BCG", B, 0);
    Row("NET", N, Net.netStats().Flushes);
  }
  T.print(std::cout);
  std::cout << "\n(dispatch reduction = block executions per dispatch under "
               "each trace-dispatching model)\n";
  return 0;
}
