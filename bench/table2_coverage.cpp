//===- bench/table2_coverage.cpp - Paper Table II -------------------------===//
///
/// Regenerates Table II: instruction stream coverage by completed traces
/// vs. completion threshold, plus the all-trace coverage (the paper's
/// "including partially executed traces" figure, 90.7% at 97%). Expected
/// shape: scimark highest (~98%), javac lowest (~72-79%), average near
/// 87% at the 97% threshold.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace jtc;

int main(int argc, char **argv) {
  std::string JsonOut = parseBenchJsonArg(argc, argv, "table2_coverage");
  std::cout << "Table II: Instruction Stream Coverage vs. Threshold\n"
            << "(paper: javac 72-79%, scimark 98%, average 82.1-87.1%)\n\n";
  bench::ThresholdSweep S = bench::runThresholdSweep();
  std::cout << "Coverage by completed traces:\n";
  bench::printThresholdTable(
      S, "threshold",
      [](const VmStats &V) { return V.completedCoverage(); },
      [](double V) { return TablePrinter::fmtPercent(V, 1); });
  std::cout << "\nCoverage including partially executed traces (paper: "
               "90.7% average at 97%):\n";
  bench::printThresholdTable(
      S, "threshold", [](const VmStats &V) { return V.traceCoverage(); },
      [](double V) { return TablePrinter::fmtPercent(V, 1); });
  maybeWriteBenchJson(JsonOut, "table2_coverage", bench::sweepRecords(S));
  return 0;
}
