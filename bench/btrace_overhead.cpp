//===- bench/btrace_overhead.cpp - Branch-trace encoder overhead ----------===//
///
/// Extends the Table VI methodology to the btrace pipeline: each paper
/// workload runs under the default adaptive configuration twice -- once
/// bare and once with the compressed branch-trace encoder attached to
/// every block dispatch (writing to memory, so the measurement isolates
/// encoding cost from disk I/O). Each flavour is timed as the fastest of
/// N repeats to suppress scheduling noise, exactly as Table VI does.
///
/// Reported per workload: wall-clock overhead of tracing (%), stream
/// bytes per executed block (the compression figure of merit; hardware
/// branch tracing targets well under a byte per retired branch), and the
/// packet mix. The artifact for CI is --json=<file>.
///
//===----------------------------------------------------------------------===//

#include "btrace/BtraceEncoder.h"
#include "harness/Experiment.h"
#include "support/Json.h"
#include "support/TablePrinter.h"
#include "vm/ModuleFingerprint.h"

#include <chrono>
#include <fstream>
#include <iostream>

using namespace jtc;

namespace {

struct Sample {
  std::string Workload;
  double PlainSeconds = 0;
  double TracedSeconds = 0;
  btrace::EncoderStats Enc;

  double overheadPercent() const {
    return PlainSeconds > 0
               ? (TracedSeconds - PlainSeconds) / PlainSeconds * 100.0
               : 0.0;
  }
  double bytesPerBlock() const {
    return Enc.Blocks ? static_cast<double>(Enc.BytesWritten) /
                            static_cast<double>(Enc.Blocks)
                      : 0.0;
  }
};

double secondsOf(TraceVM &VM) {
  auto T0 = std::chrono::steady_clock::now();
  VM.run();
  auto T1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(T1 - T0).count();
}

Sample measure(const WorkloadInfo &W, int Repeats) {
  Sample S;
  S.Workload = W.Name;
  Module M = W.Build(W.DefaultScale);
  PreparedModule PM(M);
  VmOptions Opts; // Paper defaults, as in Table VI.

  S.PlainSeconds = 1e100;
  for (int I = 0; I < Repeats; ++I) {
    TraceVM VM(PM, Opts);
    S.PlainSeconds = std::min(S.PlainSeconds, secondsOf(VM));
  }

  S.TracedSeconds = 1e100;
  std::vector<uint8_t> Stream;
  for (int I = 0; I < Repeats; ++I) {
    btrace::BtraceHeader H = btrace::BtraceHeader::fromOptions(Opts);
    H.Fingerprint = moduleFingerprint(PM);
    H.Spec = std::string("workload:") + std::string(W.Name);
    H.Scale = W.DefaultScale;
    btrace::SuccessorTable ST(PM);
    Stream.clear();
    btrace::BtraceEncoder Enc(PM, ST, std::move(H),
                              [&Stream](const uint8_t *Data, size_t Size) {
                                Stream.insert(Stream.end(), Data,
                                              Data + Size);
                                return true;
                              });
    TraceVM VM(PM, Opts);
    VM.setTransitionSink(&Enc);
    S.TracedSeconds = std::min(S.TracedSeconds, secondsOf(VM));
    S.Enc = Enc.encoderStats();
  }
  return S;
}

void writeJson(std::ostream &OS, const std::vector<Sample> &Samples) {
  JsonWriter W(OS);
  W.beginObject().field("table", "btrace_overhead").key("records");
  W.beginArray();
  for (const Sample &S : Samples) {
    W.beginObject()
        .field("workload", S.Workload)
        .fieldReal("plain_seconds", S.PlainSeconds)
        .fieldReal("traced_seconds", S.TracedSeconds)
        .fieldReal("overhead_pct", S.overheadPercent())
        .fieldUInt("bytes", S.Enc.BytesWritten)
        .fieldUInt("blocks", S.Enc.Blocks)
        .fieldReal("bytes_per_block", S.bytesPerBlock())
        .fieldUInt("tnt_packets", S.Enc.TntPackets)
        .fieldUInt("tip_packets", S.Enc.TipPackets)
        .fieldUInt("sync_packets", S.Enc.SyncPackets)
        .endObject();
  }
  W.endArray().endObject();
  OS << "\n";
}

} // namespace

int main(int argc, char **argv) {
  std::string JsonOut = parseBenchJsonArg(argc, argv, "btrace_overhead");
  std::cout << "Branch-trace encoder overhead (Table VI methodology)\n"
            << "(every block dispatch also feeds the .btc encoder, "
               "writing to memory)\n\n";

  TablePrinter T({"benchmark", "plain (s)", "traced (s)", "overhead (%)",
                  "blocks (M)", "stream (KB)", "bytes/block"});
  std::vector<Sample> Samples;
  double TotalPlain = 0, TotalTraced = 0;
  uint64_t TotalBytes = 0, TotalBlocks = 0;
  for (const WorkloadInfo &W : allWorkloads()) {
    std::cerr << "  timing " << W.Name << "...\n";
    Sample S = measure(W, /*Repeats=*/3);
    T.addRow({S.Workload, TablePrinter::fmt(S.PlainSeconds, 3),
              TablePrinter::fmt(S.TracedSeconds, 3),
              TablePrinter::fmtPercent(
                  (S.TracedSeconds - S.PlainSeconds) / S.PlainSeconds, 1),
              TablePrinter::fmt(static_cast<double>(S.Enc.Blocks) / 1e6, 1),
              TablePrinter::fmt(
                  static_cast<double>(S.Enc.BytesWritten) / 1024.0, 1),
              TablePrinter::fmt(S.bytesPerBlock(), 4)});
    TotalPlain += S.PlainSeconds;
    TotalTraced += S.TracedSeconds;
    TotalBytes += S.Enc.BytesWritten;
    TotalBlocks += S.Enc.Blocks;
    Samples.push_back(std::move(S));
  }
  T.print(std::cout);
  std::cout << "\nacross all benchmarks: tracing adds "
            << TablePrinter::fmtPercent(
                   (TotalTraced - TotalPlain) / TotalPlain, 1)
            << " wall-clock at "
            << TablePrinter::fmt(static_cast<double>(TotalBytes) /
                                     static_cast<double>(TotalBlocks),
                                 4)
            << " bytes per executed block\n";

  if (!JsonOut.empty()) {
    std::ofstream OS(JsonOut);
    if (!OS) {
      std::cerr << "cannot open '" << JsonOut << "' for writing\n";
      return 1;
    }
    writeJson(OS, Samples);
    std::cerr << "wrote " << JsonOut << "\n";
  }
  return 0;
}
